//! Golden-report regression: the deterministic JSON of a fixed campaign
//! grid is pinned byte-for-byte to a committed artifact, so refactors of
//! the attacks, oracles, expansion, aggregation, or serialization cannot
//! silently shift campaign output. The grid deliberately crosses every
//! deterministic-report feature: two schemes, deterministic + stochastic
//! cells, a heterogeneous noise profile, a dynamic-camouflaging rotation
//! period — and, since the oracle-stack refactor opened the full
//! `rotation_periods × rates × profiles` cross product, **combined**
//! rotating + stochastic defense cells.
//!
//! Three artifacts are committed:
//!
//! * `tests/golden/small_grid.json` — the current full grid;
//! * `tests/golden/small_grid_pr3.json` — the same spec's output from
//!   before the oracle-stack refactor (when rotation collapsed the noise
//!   dimensions); every one of its cells must survive in the current
//!   grid, in order;
//! * `tests/golden/small_grid_pr6.json` — the full grid captured just
//!   before the modern-CDCL solver rewrite, pinning the whole grid
//!   row-for-row across solver-heuristic changes.
//!
//! Solver heuristics legitimately shift the *trajectory* of an attack —
//! how many DIPs it needs (`mean_queries`/`mean_iterations`), and, in
//! stochastic cells only, which noise draws it sees and therefore how the
//! defeated attack's failure is classified. The historical comparisons
//! mask exactly those fields; everything else — cell identity, trial
//! counts, and above all `key_recovery_rate` — must stay byte-stable.
//!
//! If a change *intentionally* alters report output, regenerate the
//! artifact with the ignored `regenerate_golden_file` test below — and
//! say so in the commit. Never regenerate the `_pr3`/`_pr6` snapshots.

use spin_hall_security::campaign::{Campaign, CampaignSpec, NoiseShape};
use spin_hall_security::prelude::{AttackKind, CamoScheme};
use std::time::Duration;

const GOLDEN: &str = include_str!("golden/small_grid.json");
const GOLDEN_PR3: &str = include_str!("golden/small_grid_pr3.json");
const GOLDEN_PR6: &str = include_str!("golden/small_grid_pr6.json");

/// Fields that are pure solver-trajectory op counts.
const OP_COUNT_FIELDS: &[&str] = &["mean_queries", "mean_iterations"];

/// Outcome-classification fields that may shift in *stochastic* cells
/// when the query trajectory (and so the noise stream) changes. The
/// key-recovery rate is deliberately not among them.
const NOISE_OUTCOME_FIELDS: &[&str] = &[
    "completed",
    "timed_out",
    "exhausted",
    "inconsistent",
    "failed",
    "mean_output_error",
];

fn golden_spec() -> CampaignSpec {
    CampaignSpec {
        name: "golden".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.15],
        schemes: vec![CamoScheme::InvBuf, CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.0, 0.25],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform, NoiseShape::OutputCone],
        rotation_periods: vec![0, 4],
        trials: 2,
        seed: 9,
        timeout: Duration::from_secs(60),
        threads: 2,
        topology: spin_hall_security::logic::Topology::Uniform,
        coi_mode: spin_hall_security::attacks::CoiMode::Auto,
        sat_simplify: spin_hall_security::attacks::SimplifyMode::Auto,
        memo_budget_mb: 0.0,
    }
}

/// Splits a deterministic report's `rows` array into its `{...}` row
/// objects, textually (the serializer emits no nested braces in rows).
fn row_objects(json: &str) -> Vec<&str> {
    let rows = json
        .split_once("\"rows\":[")
        .expect("rows array")
        .1
        .split_once("],\"device\":")
        .expect("device array")
        .0;
    rows.split_inclusive('}')
        .map(|r| r.trim_start_matches(',').trim())
        .filter(|r| !r.is_empty())
        .collect()
}

/// Replaces the values of `fields` in a flat `{...}` row object with `X`.
fn mask_fields(row: &str, fields: &[&str]) -> String {
    let inner = row.trim_start_matches('{').trim_end_matches('}');
    let masked: Vec<String> = inner
        .split(',')
        .map(|pair| {
            let (k, _) = pair.split_once(':').expect("key:value field");
            let name = k.trim_matches('"');
            if fields.contains(&name) {
                format!("{k}:X")
            } else {
                pair.to_string()
            }
        })
        .collect();
    format!("{{{}}}", masked.join(","))
}

/// The value of field `name` in a flat `{...}` row object.
fn field_value<'a>(row: &'a str, name: &str) -> &'a str {
    let key = format!("\"{name}\":");
    let rest = &row[row.find(&key).expect("field present") + key.len()..];
    rest.split([',', '}']).next().unwrap()
}

/// `true` if the row is a stochastic cell (nonzero oracle error rate).
fn is_stochastic(row: &str) -> bool {
    field_value(row, "error_rate") != "0"
}

#[test]
fn deterministic_json_matches_committed_golden_file() {
    let report = Campaign::run(&golden_spec()).expect("golden campaign");
    assert_eq!(
        report.deterministic_json(),
        GOLDEN,
        "deterministic report drifted from tests/golden/small_grid.json; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn auto_simplify_is_transparent_on_the_golden_grid() {
    // The default `sat_simplify = auto` only engages above the 100k
    // problem-clause threshold; every instance in this grid sits far
    // below it, so the default-settings run must be byte-identical to an
    // explicit `off` run — i.e. to the pre-simplification (PR 9) solver
    // trace the golden file pins.
    let mut spec = golden_spec();
    spec.sat_simplify = spin_hall_security::attacks::SimplifyMode::Off;
    let report = Campaign::run(&spec).expect("golden campaign, simplify off");
    assert_eq!(
        report.deterministic_json(),
        GOLDEN,
        "the auto threshold engaged on a golden-grid instance: defaults \
         no longer reproduce the historical solver trace"
    );
}

#[test]
fn every_pre_stack_cell_survives_in_the_new_golden() {
    // The stack refactor opened new (combined-defense) cells; every cell
    // that existed before it must survive, in order, modulo solver
    // op-count trajectory (the pr3 grid has no stochastic rows whose
    // outcome could shift, and these deterministic rows must not).
    let legacy: Vec<String> = row_objects(GOLDEN_PR3)
        .iter()
        .map(|r| mask_fields(r, OP_COUNT_FIELDS))
        .collect();
    let current: Vec<String> = row_objects(GOLDEN)
        .iter()
        .map(|r| mask_fields(r, OP_COUNT_FIELDS))
        .collect();
    assert!(!legacy.is_empty() && current.len() > legacy.len());
    let mut cursor = 0usize;
    for row in &legacy {
        let found = current[cursor..]
            .iter()
            .position(|r| r == row)
            .unwrap_or_else(|| panic!("pre-stack golden row missing or out of order: {row}"));
        cursor += found + 1;
    }
}

#[test]
fn pre_cdcl_rewrite_grid_survives_modulo_solver_trajectory() {
    // Same spec, same grid shape: the solver rewrite may only move op
    // counts everywhere, plus outcome classification in stochastic cells.
    // Key-recovery rates are byte-stable in every cell — the security
    // verdict must not depend on solver heuristics.
    let legacy = row_objects(GOLDEN_PR6);
    let current = row_objects(GOLDEN);
    assert_eq!(legacy.len(), current.len(), "grid shape changed");
    for (a, b) in legacy.iter().zip(&current) {
        assert_eq!(
            field_value(a, "key_recovery_rate"),
            field_value(b, "key_recovery_rate"),
            "key recovery drifted: {a} vs {b}"
        );
        let (ma, mb) = (
            mask_fields(a, OP_COUNT_FIELDS),
            mask_fields(b, OP_COUNT_FIELDS),
        );
        if is_stochastic(a) {
            assert_eq!(
                mask_fields(&ma, NOISE_OUTCOME_FIELDS),
                mask_fields(&mb, NOISE_OUTCOME_FIELDS),
                "stochastic cell drifted beyond trajectory fields"
            );
        } else {
            assert_eq!(ma, mb, "deterministic cell drifted beyond op counts");
        }
    }
}

#[test]
fn golden_file_carries_the_new_grid_dimensions() {
    // Self-check that the pinned artifact actually covers the features it
    // exists to guard (otherwise a regeneration could quietly drop them).
    assert!(GOLDEN.contains("\"profile\":\"output-cone\""));
    assert!(GOLDEN.contains("\"rotation_period\":4"));
    assert!(GOLDEN.contains("\"error_rate\":0.25"));
    // The combined rotating + stochastic cell: a row carrying both a
    // nonzero rate and a rotation period.
    assert!(
        row_objects(GOLDEN)
            .iter()
            .any(|r| r.contains("\"error_rate\":0.25") && r.contains("\"rotation_period\":4")),
        "no combined-defense cell in the golden grid"
    );
}

/// Regenerates `tests/golden/small_grid.json` from the current code.
/// Run explicitly when a change intentionally alters report output:
///
/// ```text
/// cargo test --test golden_report -- --ignored
/// ```
#[test]
#[ignore = "writes tests/golden/small_grid.json; run explicitly to regenerate"]
fn regenerate_golden_file() {
    let report = Campaign::run(&golden_spec()).expect("golden campaign");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/small_grid.json");
    std::fs::write(path, report.deterministic_json()).expect("write golden");
}
