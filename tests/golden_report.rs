//! Golden-report regression: the deterministic JSON of a fixed campaign
//! grid is pinned byte-for-byte to a committed artifact, so refactors of
//! the attacks, oracles, expansion, aggregation, or serialization cannot
//! silently shift campaign output. The grid deliberately crosses every
//! deterministic-report feature: two schemes, deterministic + stochastic
//! cells, a heterogeneous noise profile, a dynamic-camouflaging rotation
//! period — and, since the oracle-stack refactor opened the full
//! `rotation_periods × rates × profiles` cross product, **combined**
//! rotating + stochastic defense cells.
//!
//! Two artifacts are committed:
//!
//! * `tests/golden/small_grid.json` — the current full grid;
//! * `tests/golden/small_grid_pr3.json` — the same spec's output from
//!   before the stack refactor (when rotation collapsed the noise
//!   dimensions). Every row of the legacy artifact must appear verbatim,
//!   in order, in the current one: the refactor only *adds* cells, it
//!   never changes a pre-existing one.
//!
//! If a change *intentionally* alters report output, regenerate the
//! artifact with the ignored `regenerate_golden_file` test below — and
//! say so in the commit. Never regenerate `small_grid_pr3.json`.

use spin_hall_security::campaign::{Campaign, CampaignSpec, NoiseShape};
use spin_hall_security::prelude::{AttackKind, CamoScheme};
use std::time::Duration;

const GOLDEN: &str = include_str!("golden/small_grid.json");
const GOLDEN_PR3: &str = include_str!("golden/small_grid_pr3.json");

fn golden_spec() -> CampaignSpec {
    CampaignSpec {
        name: "golden".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.15],
        schemes: vec![CamoScheme::InvBuf, CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.0, 0.25],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform, NoiseShape::OutputCone],
        rotation_periods: vec![0, 4],
        trials: 2,
        seed: 9,
        timeout: Duration::from_secs(60),
        threads: 2,
    }
}

/// Splits a deterministic report's `rows` array into its `{...}` row
/// objects, textually (the serializer emits no nested braces in rows).
fn row_objects(json: &str) -> Vec<&str> {
    let rows = json
        .split_once("\"rows\":[")
        .expect("rows array")
        .1
        .split_once("],\"device\":")
        .expect("device array")
        .0;
    rows.split_inclusive('}')
        .map(|r| r.trim_start_matches(',').trim())
        .filter(|r| !r.is_empty())
        .collect()
}

#[test]
fn deterministic_json_matches_committed_golden_file() {
    let report = Campaign::run(&golden_spec()).expect("golden campaign");
    assert_eq!(
        report.deterministic_json(),
        GOLDEN,
        "deterministic report drifted from tests/golden/small_grid.json; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn every_pre_stack_cell_is_byte_identical_in_the_new_golden() {
    // The stack refactor opened new (combined-defense) cells; every cell
    // that existed before it must survive byte-for-byte, in order.
    let legacy = row_objects(GOLDEN_PR3);
    let current = row_objects(GOLDEN);
    assert!(!legacy.is_empty() && current.len() > legacy.len());
    let mut cursor = 0usize;
    for row in &legacy {
        let found = current[cursor..]
            .iter()
            .position(|r| r == row)
            .unwrap_or_else(|| panic!("pre-stack golden row missing or out of order: {row}"));
        cursor += found + 1;
    }
}

#[test]
fn golden_file_carries_the_new_grid_dimensions() {
    // Self-check that the pinned artifact actually covers the features it
    // exists to guard (otherwise a regeneration could quietly drop them).
    assert!(GOLDEN.contains("\"profile\":\"output-cone\""));
    assert!(GOLDEN.contains("\"rotation_period\":4"));
    assert!(GOLDEN.contains("\"error_rate\":0.25"));
    // The combined rotating + stochastic cell: a row carrying both a
    // nonzero rate and a rotation period.
    assert!(
        row_objects(GOLDEN)
            .iter()
            .any(|r| r.contains("\"error_rate\":0.25") && r.contains("\"rotation_period\":4")),
        "no combined-defense cell in the golden grid"
    );
}

/// Regenerates `tests/golden/small_grid.json` from the current code.
/// Run explicitly when a change intentionally alters report output:
///
/// ```text
/// cargo test --test golden_report -- --ignored
/// ```
#[test]
#[ignore = "writes tests/golden/small_grid.json; run explicitly to regenerate"]
fn regenerate_golden_file() {
    let report = Campaign::run(&golden_spec()).expect("golden campaign");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/small_grid.json");
    std::fs::write(path, report.deterministic_json()).expect("write golden");
}
