//! Golden-report regression: the deterministic JSON of a fixed campaign
//! grid is pinned byte-for-byte to a committed artifact, so refactors of
//! the attacks, oracles, expansion, aggregation, or serialization cannot
//! silently shift campaign output. The grid deliberately crosses every
//! deterministic-report feature: two schemes, deterministic + stochastic
//! cells, a heterogeneous noise profile, and a dynamic-camouflaging
//! rotation period.
//!
//! If a change *intentionally* alters report output, regenerate the
//! artifact by printing `Campaign::run(&golden_spec()).deterministic_json()`
//! into `tests/golden/small_grid.json` — and say so in the commit.

use spin_hall_security::campaign::{Campaign, CampaignSpec, NoiseShape};
use spin_hall_security::prelude::{AttackKind, CamoScheme};
use std::time::Duration;

const GOLDEN: &str = include_str!("golden/small_grid.json");

fn golden_spec() -> CampaignSpec {
    CampaignSpec {
        name: "golden".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.15],
        schemes: vec![CamoScheme::InvBuf, CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.0, 0.25],
        profiles: vec![NoiseShape::Uniform, NoiseShape::OutputCone],
        rotation_periods: vec![0, 4],
        trials: 2,
        seed: 9,
        timeout: Duration::from_secs(60),
        threads: 2,
    }
}

#[test]
fn deterministic_json_matches_committed_golden_file() {
    let report = Campaign::run(&golden_spec()).expect("golden campaign");
    assert_eq!(
        report.deterministic_json(),
        GOLDEN,
        "deterministic report drifted from tests/golden/small_grid.json; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn golden_file_carries_the_new_grid_dimensions() {
    // Self-check that the pinned artifact actually covers the features it
    // exists to guard (otherwise a regeneration could quietly drop them).
    assert!(GOLDEN.contains("\"profile\":\"output-cone\""));
    assert!(GOLDEN.contains("\"rotation_period\":4"));
    assert!(GOLDEN.contains("\"error_rate\":0.25"));
}
