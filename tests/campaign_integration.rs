//! End-to-end campaign-engine tests: a two-scheme × two-attack campaign
//! must (a) produce byte-identical deterministic reports across
//! `threads = 1` and `threads = 4` for the same seed, and (b) mark jobs
//! that exhaust their wall-clock budget `TimedOut` instead of hanging the
//! pool.

use spin_hall_security::campaign::{Campaign, CampaignSpec, JobStatus, NoiseShape};
use spin_hall_security::prelude::{AttackKind, CamoScheme};
use std::time::{Duration, Instant};

fn two_by_two_spec(threads: usize) -> CampaignSpec {
    CampaignSpec {
        name: "integration".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400, // floors to 64 gates / 32 inputs — tractable in seconds
        levels: vec![0.15],
        schemes: vec![CamoScheme::InvBuf, CamoScheme::FourFn],
        attacks: vec![AttackKind::Sat, AttackKind::DoubleDip],
        error_rates: vec![0.0],
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0],
        trials: 2,
        seed: 11,
        timeout: Duration::from_secs(60),
        threads,
    }
}

#[test]
fn results_are_identical_across_thread_counts() {
    let single = Campaign::run(&two_by_two_spec(1)).expect("1-thread campaign");
    let quad = Campaign::run(&two_by_two_spec(4)).expect("4-thread campaign");

    // 1 benchmark × 1 level × 2 schemes × 2 attacks × 2 trials.
    assert_eq!(single.results.len(), 8);
    assert_eq!(single.rows.len(), 4, "one row per (scheme, attack) cell");

    // The deterministic serialization must match byte-for-byte.
    assert_eq!(
        single.deterministic_json(),
        quad.deterministic_json(),
        "campaign results depend on thread count"
    );

    // These tiny instances must actually break: recovery everywhere.
    for row in &single.rows {
        assert_eq!(row.trials, 2);
        assert_eq!(
            row.key_recovery_rate, 1.0,
            "expected full recovery for {:?}",
            row.key
        );
    }

    // When real parallel hardware is available, more workers must not be
    // slower than one by more than scheduling noise; on a multi-core box
    // the suite-scale speedup claim is exercised by the `campaign` binary.
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if cores >= 4 {
        assert!(
            quad.wall_time.as_secs_f64() < single.wall_time.as_secs_f64() * 1.10,
            "4 threads ({:?}) should not lose to 1 thread ({:?}) on {cores} cores",
            quad.wall_time,
            single.wall_time,
        );
    }
}

#[test]
fn exhausted_budgets_mark_jobs_timed_out_without_hanging_the_pool() {
    // A near-zero budget on a hard instance: the attack must give up
    // quickly and report TimedOut — the pool keeps draining.
    let spec = CampaignSpec {
        name: "timeout".to_string(),
        benchmarks: vec!["c7552".to_string()],
        scale: 20,
        levels: vec![0.4],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat, AttackKind::DoubleDip],
        error_rates: vec![0.0],
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0],
        trials: 1,
        seed: 2,
        timeout: Duration::from_millis(0),
        threads: 4,
    };
    let start = Instant::now();
    let report = Campaign::run(&spec).expect("timeout campaign");
    assert_eq!(report.results.len(), 2);
    for result in &report.results {
        assert_eq!(
            result.status,
            JobStatus::TimedOut,
            "zero budget must time out: {result:?}"
        );
        assert!(!result.key_recovered);
    }
    // A wedged pool would sit at the 60 s default; generous bound for slow CI.
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "pool appears wedged"
    );

    // The aggregate row records the timeouts.
    assert_eq!(report.rows.len(), 2);
    for row in &report.rows {
        assert_eq!(row.status_counts[1], 1, "TimedOut count: {row:?}");
        assert_eq!(row.key_recovery_rate, 0.0);
    }
}

#[test]
fn rotation_period_sweep_shows_attack_collapse_end_to_end() {
    // The dynamic-camouflaging dimension (Sec. V-C / the rotation-period
    // follow-up): short periods starve the SAT attack of a consistent
    // solution space, while a period beyond the attack's total query need
    // behaves like the static chip.
    let spec = CampaignSpec {
        name: "rotation".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.15],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.0],
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0, 1, 4, 1_000_000],
        trials: 2,
        seed: 7,
        timeout: Duration::from_secs(30),
        threads: 2,
    };
    let report = Campaign::run(&spec).expect("rotation campaign");
    // One row per period, in sweep order, each carrying its period.
    assert_eq!(report.rows.len(), 4);
    let periods: Vec<u64> = report.rows.iter().map(|r| r.key.rotation_period).collect();
    assert_eq!(periods, [0, 1, 4, 1_000_000]);

    let recovery: Vec<f64> = report.rows.iter().map(|r| r.key_recovery_rate).collect();
    assert_eq!(recovery[0], 1.0, "static oracle must break");
    assert_eq!(recovery[1], 0.0, "period 1 must defeat the attack");
    assert_eq!(recovery[2], 0.0, "period 4 must defeat the attack");
    assert_eq!(
        recovery[3], 1.0,
        "a period beyond the query budget is effectively static"
    );

    // The deterministic JSON carries the period for rotating rows only.
    let json = report.deterministic_json();
    assert!(json.contains("\"rotation_period\":1"));
    assert!(json.contains("\"rotation_period\":1000000"));
}

#[test]
fn stochastic_cells_defeat_the_attack_in_campaign_form() {
    // Sec. V-B through the engine: a noisy oracle must not yield the key.
    let spec = CampaignSpec {
        name: "stochastic".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.3],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.25],
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0],
        trials: 3,
        seed: 4,
        timeout: Duration::from_secs(30),
        threads: 2,
    };
    let report = Campaign::run(&spec).expect("stochastic campaign");
    let row = &report.rows[0];
    assert_eq!(row.trials, 3);
    assert!(
        row.key_recovery_rate < 0.5,
        "noisy oracle should defeat the attack: {row:?}"
    );
}
