//! End-to-end campaign-engine tests: a two-scheme × two-attack campaign
//! must (a) produce byte-identical deterministic reports across
//! `threads = 1` and `threads = 4` for the same seed, and (b) mark jobs
//! that exhaust their wall-clock budget `TimedOut` instead of hanging the
//! pool.

use spin_hall_security::attacks::{CoiMode, SimplifyMode};
use spin_hall_security::campaign::{Campaign, CampaignSpec, JobStatus, NoiseShape};
use spin_hall_security::logic::Topology;
use spin_hall_security::prelude::{AttackKind, CamoScheme};
use std::time::{Duration, Instant};

fn two_by_two_spec(threads: usize) -> CampaignSpec {
    CampaignSpec {
        name: "integration".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400, // floors to 64 gates / 32 inputs — tractable in seconds
        levels: vec![0.15],
        schemes: vec![CamoScheme::InvBuf, CamoScheme::FourFn],
        attacks: vec![AttackKind::Sat, AttackKind::DoubleDip],
        error_rates: vec![0.0],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0],
        trials: 2,
        seed: 11,
        timeout: Duration::from_secs(60),
        threads,
        topology: Topology::Uniform,
        coi_mode: CoiMode::Auto,
        sat_simplify: SimplifyMode::Auto,
        memo_budget_mb: 0.0,
    }
}

#[test]
fn results_are_identical_across_thread_counts() {
    let single = Campaign::run(&two_by_two_spec(1)).expect("1-thread campaign");
    let quad = Campaign::run(&two_by_two_spec(4)).expect("4-thread campaign");

    // 1 benchmark × 1 level × 2 schemes × 2 attacks × 2 trials.
    assert_eq!(single.results.len(), 8);
    assert_eq!(single.rows.len(), 4, "one row per (scheme, attack) cell");

    // The deterministic serialization must match byte-for-byte.
    assert_eq!(
        single.deterministic_json(),
        quad.deterministic_json(),
        "campaign results depend on thread count"
    );

    // These tiny instances must actually break: recovery everywhere.
    for row in &single.rows {
        assert_eq!(row.trials, 2);
        assert_eq!(
            row.key_recovery_rate, 1.0,
            "expected full recovery for {:?}",
            row.key
        );
    }

    // When real parallel hardware is available, more workers must not be
    // slower than one by more than scheduling noise; on a multi-core box
    // the suite-scale speedup claim is exercised by the `campaign` binary.
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if cores >= 4 {
        assert!(
            quad.wall_time.as_secs_f64() < single.wall_time.as_secs_f64() * 1.10,
            "4 threads ({:?}) should not lose to 1 thread ({:?}) on {cores} cores",
            quad.wall_time,
            single.wall_time,
        );
    }
}

#[test]
fn exhausted_budgets_mark_jobs_timed_out_without_hanging_the_pool() {
    // A near-zero budget on a hard instance: the attack must give up
    // quickly and report TimedOut — the pool keeps draining.
    let spec = CampaignSpec {
        name: "timeout".to_string(),
        benchmarks: vec!["c7552".to_string()],
        scale: 20,
        levels: vec![0.4],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat, AttackKind::DoubleDip],
        error_rates: vec![0.0],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0],
        trials: 1,
        seed: 2,
        timeout: Duration::from_millis(0),
        threads: 4,
        topology: Topology::Uniform,
        coi_mode: CoiMode::Auto,
        sat_simplify: SimplifyMode::Auto,
        memo_budget_mb: 0.0,
    };
    let start = Instant::now();
    let report = Campaign::run(&spec).expect("timeout campaign");
    assert_eq!(report.results.len(), 2);
    for result in &report.results {
        assert_eq!(
            result.status,
            JobStatus::TimedOut,
            "zero budget must time out: {result:?}"
        );
        assert!(!result.key_recovered);
    }
    // A wedged pool would sit at the 60 s default; generous bound for slow CI.
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "pool appears wedged"
    );

    // The aggregate row records the timeouts.
    assert_eq!(report.rows.len(), 2);
    for row in &report.rows {
        assert_eq!(row.status_counts[1], 1, "TimedOut count: {row:?}");
        assert_eq!(row.key_recovery_rate, 0.0);
    }
}

#[test]
fn rotation_period_sweep_shows_attack_collapse_end_to_end() {
    // The dynamic-camouflaging dimension (Sec. V-C / the rotation-period
    // follow-up): short periods starve the SAT attack of a consistent
    // solution space, while a period beyond the attack's total query need
    // behaves like the static chip.
    let spec = CampaignSpec {
        name: "rotation".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.15],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.0],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0, 1, 4, 1_000_000],
        trials: 2,
        seed: 7,
        timeout: Duration::from_secs(30),
        threads: 2,
        topology: Topology::Uniform,
        coi_mode: CoiMode::Auto,
        sat_simplify: SimplifyMode::Auto,
        memo_budget_mb: 0.0,
    };
    let report = Campaign::run(&spec).expect("rotation campaign");
    // One row per period, in sweep order, each carrying its period.
    assert_eq!(report.rows.len(), 4);
    let periods: Vec<u64> = report.rows.iter().map(|r| r.key.rotation_period).collect();
    assert_eq!(periods, [0, 1, 4, 1_000_000]);

    let recovery: Vec<f64> = report.rows.iter().map(|r| r.key_recovery_rate).collect();
    assert_eq!(recovery[0], 1.0, "static oracle must break");
    assert_eq!(recovery[1], 0.0, "period 1 must defeat the attack");
    assert_eq!(recovery[2], 0.0, "period 4 must defeat the attack");
    assert_eq!(
        recovery[3], 1.0,
        "a period beyond the query budget is effectively static"
    );

    // The deterministic JSON carries the period for rotating rows only.
    let json = report.deterministic_json();
    assert!(json.contains("\"rotation_period\":1"));
    assert!(json.contains("\"rotation_period\":1000000"));
}

#[test]
fn combined_defense_grid_is_no_easier_than_either_defense_alone() {
    // The oracle-stack refactor's acceptance experiment: run the full
    // `rotation_periods × error_rates × profiles` cross product end to
    // end and pin the combined-defense trend — a rotating *and* noisy
    // chip must be no easier for the attacker than either defense alone
    // at matched budgets. Period 1_000_000 sits beyond the attack's
    // query budget (rotation effectively off), so its combined cell
    // isolates the noise layer inside the stacked oracle.
    let spec = CampaignSpec {
        name: "combined".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.15],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.0, 0.25],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform, NoiseShape::OutputCone],
        rotation_periods: vec![0, 4, 1_000_000],
        trials: 2,
        seed: 7,
        timeout: Duration::from_secs(30),
        threads: 2,
        topology: Topology::Uniform,
        coi_mode: CoiMode::Auto,
        sat_simplify: SimplifyMode::Auto,
        memo_budget_mb: 0.0,
    };
    let report = Campaign::run(&spec).expect("combined campaign");
    // 3 periods × (rate-0 collapses profiles → 1 cell, rate 0.25 → 2
    // profile cells) = 9 rows: the rotation dimension no longer collapses
    // the noise dimensions.
    assert_eq!(report.rows.len(), 9);

    let recovery = |period: u64, rate: f64, profile: NoiseShape| -> f64 {
        report
            .rows
            .iter()
            .find(|r| {
                r.key.rotation_period == period
                    && (r.key.error_rate - rate).abs() < 1e-12
                    && r.key.profile == profile
            })
            .unwrap_or_else(|| panic!("missing cell ({period}, {rate}, {profile})"))
            .key_recovery_rate
    };

    // Baselines: the undefended cell breaks; fast rotation alone defeats.
    assert_eq!(recovery(0, 0.0, NoiseShape::Uniform), 1.0);
    assert_eq!(recovery(4, 0.0, NoiseShape::Uniform), 0.0);
    // An over-long period alone is no defense.
    assert_eq!(recovery(1_000_000, 0.0, NoiseShape::Uniform), 1.0);

    // The combined trend, per profile shape and per period.
    for profile in [NoiseShape::Uniform, NoiseShape::OutputCone] {
        let noise_only = recovery(0, 0.25, profile);
        for period in [4u64, 1_000_000] {
            let rotation_only = recovery(period, 0.0, NoiseShape::Uniform);
            let combined = recovery(period, 0.25, profile);
            assert!(
                combined <= noise_only && combined <= rotation_only,
                "combined cell easier than a single defense: period {period} \
                 profile {profile} combined {combined} vs noise {noise_only} / \
                 rotation {rotation_only}"
            );
        }
    }

    // The deterministic JSON names the combined cells.
    let json = report.deterministic_json();
    assert!(json.contains("\"error_rate\":0.25,") && json.contains("\"rotation_period\":4"));
}

#[test]
fn clock_period_sweep_derives_physical_rates_end_to_end() {
    // Sec. V-B from the device Monte Carlo to the campaign table: clock
    // periods as rate sources. An aggressive 0.8 ns clock pushes every
    // cloaked switch deep into the stochastic regime (the attack must
    // collapse); a relaxed 6 ns clock is near-deterministic.
    let spec = CampaignSpec {
        name: "clocks".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.15],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![],
        clock_periods_ns: vec![0.8, 6.0],
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0],
        trials: 2,
        seed: 4,
        timeout: Duration::from_secs(30),
        threads: 2,
        topology: Topology::Uniform,
        coi_mode: CoiMode::Auto,
        sat_simplify: SimplifyMode::Auto,
        memo_budget_mb: 0.0,
    };
    let report = Campaign::run(&spec).expect("clock campaign");
    assert_eq!(report.rows.len(), 2);
    let row_for = |clock_ns: f64| {
        report
            .rows
            .iter()
            .find(|r| (r.key.clock_ns - clock_ns).abs() < 1e-12)
            .unwrap_or_else(|| panic!("missing clock cell {clock_ns}"))
    };
    let aggressive = row_for(0.8);
    let relaxed = row_for(6.0);
    assert!(
        aggressive.key.error_rate > 0.2,
        "0.8 ns derived rate: {}",
        aggressive.key.error_rate
    );
    assert!(
        relaxed.key.error_rate < 0.05,
        "6 ns derived rate: {}",
        relaxed.key.error_rate
    );
    assert_eq!(
        aggressive.key_recovery_rate, 0.0,
        "a deep-stochastic chip must defeat the attack"
    );
    assert!(relaxed.key_recovery_rate >= aggressive.key_recovery_rate);

    // The deterministic JSON tags physical cells with their clock period.
    let json = report.deterministic_json();
    assert!(json.contains("\"clock_ns\":0.8") && json.contains("\"clock_ns\":6"));
}

#[test]
fn aag_suite_runs_through_the_campaign_engine() {
    // The AIGER frontend as an ordinary benchmark source: `.aag` paths in
    // `benchmarks` pass straight through selector resolution, materialize
    // via `parse_aag` (the sequential file exercises latch cutting), and
    // attack like any generated netlist — deterministically across
    // thread counts.
    let data = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/");
    let spec_for = |threads: usize| CampaignSpec {
        name: "aag-suite".to_string(),
        benchmarks: vec![
            format!("{data}epfl_ctrl.aag"),
            format!("{data}epfl_mem_ctrl.aag"),
        ],
        scale: 20, // ignored by file-backed benchmarks
        levels: vec![0.5],
        schemes: vec![CamoScheme::InvBuf],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.0],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0],
        trials: 1,
        seed: 3,
        timeout: Duration::from_secs(30),
        threads,
        topology: Topology::Uniform,
        coi_mode: CoiMode::Auto,
        sat_simplify: SimplifyMode::Auto,
        memo_budget_mb: 0.0,
    };
    let report = Campaign::run(&spec_for(2)).expect("aag campaign");
    assert_eq!(report.results.len(), 2);
    for result in &report.results {
        assert_eq!(
            result.status,
            JobStatus::Completed,
            "aag job failed: {result:?}"
        );
        assert!(result.key_recovered, "tiny instances must break");
    }
    assert_eq!(
        report.deterministic_json(),
        Campaign::run(&spec_for(1)).unwrap().deterministic_json(),
        "aag-backed campaigns must stay thread-count deterministic"
    );

    // The sequential file's latches were cut: 3 inputs + 2 states in,
    // 2 outputs + 2 next-state functions out.
    let session = spin_hall_security::campaign::EvalSession::new(1);
    let nl = session
        .netlist(&format!("{data}epfl_mem_ctrl.aag"), 20, 3)
        .expect("mem_ctrl loads");
    assert_eq!(nl.inputs().len(), 5);
    assert_eq!(nl.outputs().len(), 4);
}

#[test]
fn stochastic_cells_defeat_the_attack_in_campaign_form() {
    // Sec. V-B through the engine: a noisy oracle must not yield the key.
    let spec = CampaignSpec {
        name: "stochastic".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.3],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.25],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0],
        trials: 3,
        seed: 4,
        timeout: Duration::from_secs(30),
        threads: 2,
        topology: Topology::Uniform,
        coi_mode: CoiMode::Auto,
        sat_simplify: SimplifyMode::Auto,
        memo_budget_mb: 0.0,
    };
    let report = Campaign::run(&spec).expect("stochastic campaign");
    let row = &report.rows[0];
    assert_eq!(row.trials, 3);
    assert!(
        row.key_recovery_rate < 0.5,
        "noisy oracle should defeat the attack: {row:?}"
    );
}
