//! End-to-end profile-search tests: the search must be replayable from
//! one seed at any thread count, its Pareto front must consist of
//! profiles that actually defeat the attack while a cheaper rejected
//! neighbor does not, and the `EvalSession` it runs on must leave
//! campaign output untouched (pinned against the committed PR 3 / PR 4
//! deterministic baselines by `tests/golden_report.rs`; re-checked here
//! through a *shared warm* session).

use spin_hall_security::campaign::search::{ProfileSearch, SearchSpec};
use spin_hall_security::campaign::{Campaign, CampaignSpec, EvalSession, NoiseShape};
use spin_hall_security::prelude::{AttackKind, CamoScheme};
use std::time::Duration;

fn smoke_search_spec(threads: usize) -> SearchSpec {
    SearchSpec {
        name: "search-int".to_string(),
        benchmark: "ex1010".to_string(),
        scale: 400, // floors to 64 gates / 32 inputs — tractable in seconds
        level: 0.15,
        scheme: CamoScheme::GsheAll16,
        attacks: vec![AttackKind::Sat],
        rotation_period: 0,
        clock_periods_ns: vec![0.8, 6.0],
        trials: 2,
        generations: 2,
        lambda: 3,
        target_success: 0.0,
        seed: 5,
        timeout: Duration::from_secs(20),
        threads,
        cache_cap: 1 << 16,
        dip_batch: 16,
    }
}

fn run_search(threads: usize) -> spin_hall_security::campaign::SearchReport {
    let spec = smoke_search_spec(threads);
    let session = EvalSession::with_cache_cap(spec.threads, spec.cache_cap);
    ProfileSearch::new(&session, spec)
        .expect("search setup")
        .run()
}

#[test]
fn search_is_byte_identical_across_thread_counts() {
    let single = run_search(1);
    let quad = run_search(4);
    assert_eq!(
        single.deterministic_json(),
        quad.deterministic_json(),
        "profile search depends on thread count"
    );
}

#[test]
fn front_profiles_win_while_a_cheaper_rejected_neighbor_loses() {
    // The acceptance experiment: every reported front profile defeats the
    // attack at the target confidence, and the search also scored (and
    // rejected) at least one strictly cheaper candidate that does NOT —
    // the front is genuinely the cheapest *winning* frontier, not just
    // the cheapest anything.
    let report = run_search(2);
    let front = report.front_rows();
    assert!(!front.is_empty(), "no winning profile found");
    for row in &front {
        assert!(row.wins, "front profile does not win: {row:?}");
        assert!(
            row.success_rate <= report.spec.target_success + 1e-12,
            "front profile misses the target confidence: {row:?}"
        );
        assert!(row.noisy_switches > 0, "a quiet chip cannot win");
    }
    // The cheapest front member must dominate some rejected candidate:
    // cheaper on both axes (the quiet baseline anchors this — it is
    // always scored and must lose on a sound instance).
    let cheapest = front[0];
    let cheaper_loser = report.evaluated.iter().find(|row| {
        !row.wins
            && row.noisy_switches <= cheapest.noisy_switches
            && row.mean_rate < cheapest.mean_rate
    });
    assert!(
        cheaper_loser.is_some(),
        "no cheaper rejected neighbor: front {cheapest:?}"
    );
    // The quiet baseline in particular must have been scored and rejected.
    let baseline = report
        .evaluated
        .iter()
        .find(|row| row.candidate.origin == "baseline:quiet")
        .expect("quiet baseline always scored");
    assert!(
        !baseline.wins,
        "a deterministic chip must lose: {baseline:?}"
    );

    // Mutations only ever explore cheaper neighbors of winners, so the
    // front must be at least as cheap as every physics seed that won.
    let cheapest_seed_mean = report
        .evaluated
        .iter()
        .filter(|row| row.generation == 0 && row.wins)
        .map(|row| row.mean_rate)
        .fold(f64::INFINITY, f64::min);
    assert!(
        cheapest.mean_rate <= cheapest_seed_mean,
        "search did not improve on its physics seeds"
    );
}

#[test]
fn combined_frontier_search_runs_under_a_rotation_budget() {
    // rotation_period > 0 scores every candidate against the combined
    // rotating + noisy stack. A fast rotation defeats the attack even for
    // the quiet profile, so the front collapses to zero noisy switches —
    // rotation alone is the cheapest winning defense under that budget.
    let spec = SearchSpec {
        rotation_period: 4,
        generations: 1,
        clock_periods_ns: vec![6.0],
        ..smoke_search_spec(2)
    };
    let session = EvalSession::with_cache_cap(spec.threads, spec.cache_cap);
    let report = ProfileSearch::new(&session, spec)
        .expect("search setup")
        .run();
    let front = report.front_rows();
    assert!(!front.is_empty());
    assert_eq!(
        front[0].noisy_switches, 0,
        "under a strong rotation budget the quiet profile should win: {front:?}"
    );
}

#[test]
fn warm_session_campaign_output_stays_byte_identical() {
    // The EvalSession equality pin: the same campaign spec run twice on
    // one warm session — with a profile search in between, growing the
    // session's memos and cache — must serialize byte-identically to a
    // fresh one-shot `Campaign::run` (which the golden tests pin against
    // the committed PR 3 / PR 4 baselines).
    let campaign_spec = CampaignSpec {
        name: "warm".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.15],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.0, 0.25],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0, 4],
        trials: 2,
        seed: 9,
        timeout: Duration::from_secs(30),
        threads: 2,
        topology: spin_hall_security::logic::Topology::Uniform,
        coi_mode: spin_hall_security::attacks::CoiMode::Auto,
        sat_simplify: spin_hall_security::attacks::SimplifyMode::Auto,
        memo_budget_mb: 0.0,
    };
    let fresh = Campaign::run(&campaign_spec).expect("fresh campaign");

    let session = EvalSession::new(2);
    let first = session.run(&campaign_spec).expect("first warm run");
    let _search = ProfileSearch::new(&session, smoke_search_spec(2))
        .expect("search setup")
        .run();
    let second = session.run(&campaign_spec).expect("second warm run");

    assert_eq!(fresh.deterministic_json(), first.deterministic_json());
    assert_eq!(fresh.deterministic_json(), second.deterministic_json());
}
