//! Cross-crate integration tests: the full defend→attack→verify pipeline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_hall_security::logic::bench_format::{parse_bench, write_bench, C17_BENCH};
use spin_hall_security::logic::suites::{benchmark_scaled, spec};
use spin_hall_security::prelude::*;
use spin_hall_security::{protect, protect_delay_aware, GsheConfig, RotatingOracle};

#[test]
fn full_pipeline_on_c17() {
    // Parse a real ISCAS benchmark, protect every gate with the all-16
    // primitive, break it with the SAT attack, and verify the recovered
    // key by exact SAT equivalence.
    let design = parse_bench(C17_BENCH).expect("c17 parses");
    let protected = protect(&design, 1.0, 1).expect("camouflage");
    assert_eq!(protected.keyed.key_len(), 24); // 6 gates x 4 bits

    let mut oracle = NetlistOracle::new(&design);
    let outcome = sat_attack(
        &protected.keyed,
        &mut oracle,
        &AttackConfig::with_timeout_secs(30),
    );
    assert_eq!(outcome.status, AttackStatus::Success);
    let key = outcome.key.expect("key on success");
    let verdict = verify_key(&design, &protected.keyed, &key).expect("verify");
    assert!(verdict.functionally_equivalent);
}

#[test]
fn scheme_ordering_on_shared_selection() {
    // The Table IV shape on one workload: solver effort (decisions) is
    // monotone-ish in the cloaked-function count; we check the endpoints.
    let design = benchmark_scaled(spec("c7552").expect("spec"), 40, 3);
    let picks = select_gates(&design, 0.2, 5);

    let mut effort = std::collections::HashMap::new();
    for scheme in [CamoScheme::InvBuf, CamoScheme::GsheAll16] {
        let mut rng = StdRng::seed_from_u64(5);
        let keyed = camouflage(&design, &picks, scheme, &mut rng).expect("camouflage");
        let mut oracle = NetlistOracle::new(&design);
        let out = sat_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(60));
        assert_eq!(out.status, AttackStatus::Success, "{scheme}");
        let key = out.key.expect("key");
        assert!(
            verify_key(&design, &keyed, &key)
                .expect("verify")
                .functionally_equivalent,
            "{scheme}"
        );
        effort.insert(format!("{scheme}"), out.solver_stats.decisions);
    }
    let small = effort["[24, c], [35] (2)"];
    let big = effort["Our (16)"];
    assert!(
        big >= small,
        "all-16 must need at least as much solver effort: {big} vs {small}"
    );
}

#[test]
fn bench_round_trip_then_protect_then_attack() {
    // write_bench → parse_bench → protect → attack: formats and flows
    // compose.
    let design = benchmark_scaled(spec("ex1010").expect("spec"), 40, 9);
    let text = write_bench(&design);
    let reparsed = parse_bench(&text).expect("round trip");
    let protected = protect(&reparsed, 0.25, 11).expect("camouflage");
    let mut oracle = NetlistOracle::new(&reparsed);
    let out = sat_attack(
        &protected.keyed,
        &mut oracle,
        &AttackConfig::with_timeout_secs(30),
    );
    assert_eq!(out.status, AttackStatus::Success);
    let v = verify_key(&reparsed, &protected.keyed, &out.key.expect("key")).expect("verify");
    assert!(v.functionally_equivalent);
}

#[test]
fn delay_aware_flow_end_to_end() {
    let design = benchmark_scaled(spec("sb18").expect("spec"), 400, 13);
    let model = DelayModel::cmos_45nm();
    let (protected, hybrid) = protect_delay_aware(&design, &model, 13).expect("flow");
    assert!(hybrid.hybrid_critical <= hybrid.baseline_critical + 1e-15);
    // The hybrid keyed design under its correct key equals the original.
    let resolved = protected
        .keyed
        .resolve(&protected.keyed.correct_key())
        .expect("resolve");
    let mut rng = StdRng::seed_from_u64(17);
    assert_eq!(
        spin_hall_security::logic::sim::random_equivalence_check(&design, &resolved, 4, &mut rng)
            .expect("same interface"),
        None
    );
}

#[test]
fn stochastic_oracle_breaks_attack_end_to_end() {
    let design = benchmark_scaled(spec("ex1010").expect("spec"), 80, 21);
    let protected = protect(&design, 0.4, 23).expect("camouflage");
    let mut broken = 0;
    for seed in 0..3 {
        let mut oracle = StochasticOracle::new(&protected.keyed, 0.2, seed);
        let out = sat_attack(
            &protected.keyed,
            &mut oracle,
            &AttackConfig::with_timeout_secs(15),
        );
        let failed = match out.status {
            AttackStatus::Success => {
                !verify_key(&design, &protected.keyed, &out.key.expect("key"))
                    .expect("verify")
                    .functionally_equivalent
            }
            _ => true,
        };
        broken += failed as usize;
    }
    assert!(
        broken >= 2,
        "stochastic defense failed in {broken}/3 trials"
    );
}

#[test]
fn rotating_key_oracle_breaks_attack_end_to_end() {
    let design = benchmark_scaled(spec("ex1010").expect("spec"), 80, 31);
    let protected = protect(&design, 0.4, 33).expect("camouflage");
    let mut oracle = RotatingOracle::new(&protected.keyed, 2, 1);
    let out = sat_attack(
        &protected.keyed,
        &mut oracle,
        &AttackConfig::with_timeout_secs(15),
    );
    let broken = match out.status {
        AttackStatus::Success => {
            !verify_key(&design, &protected.keyed, &out.key.expect("key"))
                .expect("verify")
                .functionally_equivalent
        }
        _ => true,
    };
    assert!(broken, "key rotation failed to stop the attack");
}

#[test]
fn primitive_gallery_is_consistent_with_logic_layer() {
    // The device-level primitive and the logic-level Bf2 agree — the glue
    // that lets camouflaged netlists stand in for GSHE hardware.
    for f in Bf2::ALL {
        let mut prim = GshePrimitive::new(GsheConfig::for_function(f));
        for row in 0..4u8 {
            let a = row & 1 == 1;
            let b = row & 2 == 2;
            assert_eq!(prim.evaluate_device(a, b), f.eval(a, b), "{f}");
        }
    }
}
