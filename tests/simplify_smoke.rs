//! The `sat_simplify` knob changes solver work, never answers: running
//! the CI smoke campaign with simplification forced on must produce the
//! same verdict (status, key recovered, functional correctness) for
//! every job as the same campaign with simplification off. Query and
//! iteration counts may differ — preprocessing reshapes the search and
//! therefore the DIP sequence — but an attack that breaks a cell
//! without simplification must break it with, and vice versa.
//!
//! Only exact-oracle cells are comparable this way: a noisy or rotating
//! oracle answers as a function of the query *sequence*, so two attacks
//! asking different (equally valid) DIP streams can legitimately reach
//! different outcomes. The exact cells are the equivalence check; the
//! noisy cells of the same spec are covered by the verdict-independent
//! assertions in the campaign integration tests.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_hall_security::attacks::{assert_valid_key_codes, encode_keyed, SimplifyMode};
use spin_hall_security::campaign::{Campaign, CampaignSpec};
use spin_hall_security::logic::suites;
use spin_hall_security::prelude::{camouflage, select_gates, CamoScheme};
use spin_hall_security::sat::{CircuitEncoder, Lit, Solver};

#[test]
fn smoke_verdicts_match_with_and_without_simplification() {
    let toml = std::fs::read_to_string("specs/smoke.toml").expect("smoke spec present");
    let mut spec = CampaignSpec::parse_toml(&toml).expect("smoke spec parses");
    // Exact oracles only (see module docs): drop the noise, clock-rate,
    // and rotation sweeps; keep the full trial grid.
    spec.error_rates = vec![0.0];
    spec.clock_periods_ns = Vec::new();
    spec.profiles.truncate(1);
    spec.rotation_periods = vec![0];

    spec.sat_simplify = SimplifyMode::Off;
    let off = Campaign::run(&spec).expect("smoke without simplification");
    spec.sat_simplify = SimplifyMode::On;
    let on = Campaign::run(&spec).expect("smoke with simplification");

    assert_eq!(off.results.len(), on.results.len());
    assert!(!off.results.is_empty());
    for (a, b) in off.results.iter().zip(&on.results) {
        assert_eq!(a.spec.kind, b.spec.kind, "job grids diverged");
        assert_eq!(
            a.status, b.status,
            "status flipped under simplification: {:?}",
            a.spec.kind
        );
        assert_eq!(
            a.key_recovered, b.key_recovered,
            "key verdict flipped under simplification: {:?}",
            a.spec.kind
        );
    }
    for (a, b) in off.rows.iter().zip(&on.rows) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.status_counts, b.status_counts);
        assert_eq!(a.key_recovery_rate, b.key_recovery_rate);
    }
}

/// The preprocessing payoff on the attack's real workload, pinned: on
/// the s38584 two-copy key-search miter (the instance the width-16
/// batched attack iterates on), subsumption + bounded variable
/// elimination must shave at least 30% of the problem clauses or 30% of
/// the variables. The construction mirrors `dip_engine::refine` exactly —
/// key codes, two circuit copies over shared inputs, output miter — with
/// the same interface freezing (key and input literals).
#[test]
fn preprocessing_reduces_the_s38584_miter_by_30_percent() {
    let spec = suites::spec("s38584").expect("s-suite benchmark present");
    let nl = suites::benchmark_scaled(spec, 40, 1);
    let picks = select_gates(&nl, 0.1, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).expect("camouflage");

    let mut solver = Solver::new();
    let keys: Vec<Vec<Lit>> = (0..2)
        .map(|_| {
            (0..keyed.key_len())
                .map(|_| Lit::pos(solver.new_var()))
                .collect()
        })
        .collect();
    let input_lits = {
        let mut enc = CircuitEncoder::new(&mut solver);
        for k in &keys {
            assert_valid_key_codes(&mut enc, &keyed, k);
        }
        let copies: Vec<_> = keys
            .iter()
            .map(|k| encode_keyed(&mut enc, &keyed, k))
            .collect();
        for (a, b) in copies[0].inputs.iter().zip(&copies[1].inputs) {
            enc.equal(*a, *b);
        }
        let d = enc.miter(&copies[0].outputs, &copies[1].outputs);
        enc.clause(&[d]);
        copies[0].inputs.clone()
    };
    for l in keys.iter().flatten().chain(&input_lits) {
        solver.freeze(l.var());
    }

    let vars_before = solver.num_vars();
    let clauses_before = solver.num_problem_clauses();
    assert!(solver.preprocess(), "the miter alone must stay satisfiable");
    let clauses_after = solver.num_problem_clauses();
    let elim = solver.stats().elim_vars as usize;

    let clause_cut = 1.0 - clauses_after as f64 / clauses_before as f64;
    let var_cut = elim as f64 / vars_before as f64;
    println!(
        "s38584 miter: {clauses_before} -> {clauses_after} clauses ({:.1}%), \
         {elim}/{vars_before} vars eliminated ({:.1}%)",
        clause_cut * 100.0,
        var_cut * 100.0
    );
    assert!(
        clause_cut >= 0.30 || var_cut >= 0.30,
        "preprocessing shaved only {:.1}% clauses / {:.1}% vars",
        clause_cut * 100.0,
        var_cut * 100.0
    );
}
