//! Superblue as an ordinary grid cell: a ≥3-cell campaign over scaled
//! IBM superblue instances must stream through a memory-bounded memo
//! (peak resident netlist arenas under the byte budget, everything
//! evicted afterwards), engage the cone-keyed oracle cache, and still
//! serialize byte-identically to the unbounded scheduler. A direct
//! warm-vs-cold measurement on the cone-keyed cache pins the ≥5×
//! replay win the caching layer exists for.
//!
//! Ignored by default; CI runs it explicitly in release:
//!
//! ```text
//! cargo test -q --release -- --ignored superblue_stream
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_hall_security::attacks::{CoiMode, SimplifyMode};
use spin_hall_security::campaign::{
    CachedOracle, Campaign, CampaignSpec, EvalSession, JobStatus, NoiseShape, OracleCache,
};
use spin_hall_security::logic::{suites, PatternBlock, Topology};
use spin_hall_security::prelude::{AttackKind, CamoScheme, Oracle};
use std::time::{Duration, Instant};

const BENCHES: [&str; 3] = ["sb1", "sb10", "sb18"];
const SCALE: usize = 64;
const SEED: u64 = 1;

fn superblue_spec(memo_budget_mb: f64) -> CampaignSpec {
    CampaignSpec {
        name: "superblue-stream".to_string(),
        benchmarks: BENCHES.iter().map(|n| n.to_string()).collect(),
        scale: SCALE,
        topology: Topology::Local,
        // A handful of cloaked gates per instance: with tile-local
        // wiring their affected-output cones stay a thin slice, so the
        // forced COI threshold below engages cone-keyed caching.
        levels: vec![0.0005],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        coi_mode: CoiMode::AutoAt(3_000),
        sat_simplify: SimplifyMode::Auto,
        error_rates: vec![0.0],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0],
        trials: 1,
        seed: SEED,
        timeout: Duration::from_secs(300),
        threads: 2,
        memo_budget_mb,
    }
}

#[test]
#[ignore = "superblue-scale; CI runs `cargo test -q --release -- --ignored superblue_stream`"]
fn superblue_stream() {
    let started = Instant::now();
    let wall_budget = Duration::from_secs(600);

    // Size the byte budget from the actual arenas (the same
    // materializations the campaign performs): a quarter above the
    // largest single instance, well under the whole suite — the
    // scheduler must chunk.
    let arenas: Vec<u64> = BENCHES
        .iter()
        .map(|name| {
            let spec = suites::spec(name).expect("superblue suite present");
            suites::benchmark_scaled_with(spec, SCALE, SEED, Topology::Local).arena_bytes() as u64
        })
        .collect();
    let largest = *arenas.iter().max().unwrap();
    let total: u64 = arenas.iter().sum();
    let budget_bytes = largest + largest / 4;
    assert!(
        budget_bytes < total,
        "budget must force chunking: {arenas:?}"
    );
    let spec = superblue_spec(budget_bytes as f64 / (1024.0 * 1024.0));

    // Cold streamed run: all three cells complete and break (tiny key
    // space; the work is the superblue-wide oracle simulations).
    let session = EvalSession::new(2);
    let cold = session.run(&spec).expect("cold streamed run");
    assert_eq!(cold.rows.len(), 3, "one row per superblue instance");
    for result in &cold.results {
        assert_eq!(result.status, JobStatus::Completed, "{result:?}");
        assert!(result.key_recovered);
    }

    // Memory bound: the peak resident netlist-memo footprint never
    // exceeded the budget, and everything was evicted afterwards.
    let effective_budget = (spec.memo_budget_mb * 1024.0 * 1024.0) as u64;
    let peak = session.peak_memo_bytes();
    assert!(peak > 0);
    assert!(
        peak <= effective_budget,
        "peak {peak} bytes over budget {effective_budget}"
    );
    assert!(peak < total, "whole suite was resident at once");
    assert_eq!(session.cached_netlists(), 0, "chunks must be evicted");
    assert_eq!(session.cached_keyed(), 0, "keyed memo must be evicted");

    // Warm streamed run on the same session: the oracle cache survives
    // eviction (entries key on netlist fingerprint + cone sub-pattern,
    // not on the Arc), so the deterministic replay answers entirely
    // from cone-keyed entries.
    let warm = session.run(&spec).expect("warm streamed run");
    assert_eq!(warm.deterministic_json(), cold.deterministic_json());
    assert_eq!(warm.cache_misses, 0, "warm replay must not re-simulate");
    assert!(
        warm.cone_hits > 0,
        "cone-keyed caching never engaged: {warm:?}"
    );

    // Scheduler equivalence: the unbounded path (fresh session, budget
    // 0) produces byte-identical deterministic output.
    let mut unbounded_spec = spec.clone();
    unbounded_spec.memo_budget_mb = 0.0;
    let unbounded = Campaign::run(&unbounded_spec).expect("unbounded run");
    assert_eq!(unbounded.deterministic_json(), cold.deterministic_json());

    // The cone-keyed cache's reason to exist, measured directly: warm
    // replay of superblue-wide blocks must beat cold simulation by ≥5×
    // (in practice orders of magnitude — a hash probe on cone-width
    // keys vs a 13k-node bit-parallel sweep per block).
    let sb1 =
        suites::benchmark_scaled_with(suites::spec("sb1").unwrap(), SCALE, SEED, Topology::Local);
    let cone: Vec<usize> = (0..64).collect();
    let cache = OracleCache::shared_with_cap(0);
    let mut oracle = CachedOracle::over_cone(&sb1, cache, cone);
    let mut rng = StdRng::seed_from_u64(17);
    let blocks: Vec<PatternBlock> = (0..32)
        .map(|_| PatternBlock::random(sb1.inputs().len(), &mut rng))
        .collect();
    let cold_t = Instant::now();
    for block in &blocks {
        oracle.query_block(block);
    }
    let cold_elapsed = cold_t.elapsed();
    let warm_t = Instant::now();
    for block in &blocks {
        oracle.query_block(block);
    }
    let warm_elapsed = warm_t.elapsed();
    assert!(
        cold_elapsed >= warm_elapsed * 5,
        "cone-keyed replay won only {cold_elapsed:?} vs {warm_elapsed:?}"
    );

    let elapsed = started.elapsed();
    assert!(
        elapsed < wall_budget,
        "superblue stream took {elapsed:?} (budget {wall_budget:?})"
    );
}
