//! Observability must be a pure observer: enabling the full
//! instrumentation stack (metrics *and* trace buffering) cannot move a
//! single byte of the deterministic campaign report. Spans only read
//! clocks and counters only increment atomics — if instrumentation ever
//! perturbed an RNG stream, an oracle query count, or serialization,
//! this test catches it.

use spin_hall_security::campaign::{Campaign, CampaignSpec, NoiseShape};
use spin_hall_security::obs;
use spin_hall_security::prelude::{AttackKind, CamoScheme};
use std::time::Duration;

/// A small grid that still crosses the instrumented layers: cached exact
/// oracle (rotation 0, rate 0), noisy stack, and a rotating stack.
fn small_spec() -> CampaignSpec {
    CampaignSpec {
        name: "obs-golden".to_string(),
        benchmarks: vec!["ex1010".to_string()],
        scale: 400,
        levels: vec![0.15],
        schemes: vec![CamoScheme::GsheAll16],
        attacks: vec![AttackKind::Sat],
        error_rates: vec![0.0, 0.25],
        clock_periods_ns: Vec::new(),
        profiles: vec![NoiseShape::Uniform],
        rotation_periods: vec![0, 4],
        trials: 1,
        seed: 9,
        timeout: Duration::from_secs(60),
        threads: 2,
        topology: spin_hall_security::logic::Topology::Uniform,
        coi_mode: spin_hall_security::attacks::CoiMode::Auto,
        sat_simplify: spin_hall_security::attacks::SimplifyMode::Auto,
        memo_budget_mb: 0.0,
    }
}

#[test]
fn deterministic_json_is_byte_identical_with_obs_enabled_and_disabled() {
    let spec = small_spec();

    obs::disable();
    let baseline = Campaign::run(&spec)
        .expect("campaign with obs disabled")
        .deterministic_json();

    obs::enable_tracing();
    obs::reset();
    let instrumented = Campaign::run(&spec)
        .expect("campaign with obs enabled")
        .deterministic_json();

    // Grab the artifacts before flipping the switch back off.
    let trace = obs::trace_json();
    let metrics = obs::metrics_json();
    obs::disable();

    assert_eq!(
        baseline, instrumented,
        "instrumentation changed the deterministic report"
    );

    // The instrumented run actually observed the hot layers.
    for span in ["pool.task", "job.attack", "attack.solve", "attack.oracle"] {
        assert!(
            trace.contains(&format!("\"name\":\"{span}\"")),
            "trace is missing `{span}` events"
        );
    }
    // (`cache.hits` registers only on a hit; a single-trial SAT attack
    // never re-queries a block, so the guaranteed cache signal is misses.)
    for metric in [
        "\"cache.misses\"",
        "\"sat.decisions\"",
        "\"attack.dip_batch_fill\"",
    ] {
        assert!(metrics.contains(metric), "metrics missing {metric}");
    }
}
