//! The CDCL-rewrite equivalence pin on a real benchmark: the seeded SAT
//! attack on s38584 (scaled, 5% protection — the batched-DIP benchmark
//! instance) must recover a functionally correct key under **both**
//! restart pacers. The solver rewrite may change the search trajectory
//! (query and conflict counts), but never the attack's semantic outcome.
//!
//! CI runs this as the solver smoke test alongside the `gshe-sat`
//! property suite.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_hall_security::logic::suites::{benchmark_scaled, spec};
use spin_hall_security::prelude::*;

#[test]
fn restart_modes_recover_correct_keys_on_s38584() {
    let suite = spec("s38584").expect("s-suite benchmark present");
    let nl = benchmark_scaled(suite, 40, 1);
    let picks = select_gates(&nl, 0.05, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).expect("camouflage");

    let mut outcomes = Vec::new();
    for mode in [RestartMode::LbdEma, RestartMode::Luby] {
        let config = AttackConfig::with_timeout_secs(120)
            .with_dip_batch(16)
            .with_restart_mode(mode);
        let mut oracle = NetlistOracle::new(&nl);
        let out = sat_attack(&keyed, &mut oracle, &config);
        assert_eq!(out.status, AttackStatus::Success, "mode {mode:?}");
        let key = out.key.as_ref().expect("successful attack returns a key");
        let check = verify_key(&nl, &keyed, key).expect("verification runs");
        assert!(
            check.functionally_equivalent,
            "mode {mode:?} recovered a wrong key"
        );
        outcomes.push(out.status);
    }
    // Both pacers agree on the attack verdict, not just on succeeding
    // here — the rewrite contract is identical semantic outcomes.
    assert_eq!(outcomes[0], outcomes[1]);
}
