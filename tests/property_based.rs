//! Property-based tests (proptest) on the core data structures and
//! invariants: Boolean-function algebra, solver vs. brute force, Tseitin
//! encodings, netlist generation, camouflaging key semantics, and STA.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_hall_security::camo::{camouflage, select_gates_count, CamoScheme};
use spin_hall_security::logic::bench_format::{parse_bench, write_bench};
use spin_hall_security::logic::sim::random_equivalence_check;
use spin_hall_security::logic::{Bf2, GeneratorConfig, NetlistGenerator, Topology};
use spin_hall_security::sat::{CircuitEncoder, Lit, SolveResult, Solver};
use spin_hall_security::timing::{DelayModel, TimingAnalysis};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// De Morgan over the whole Bf2 algebra: ¬f(a,b) = f'(a,b) where f' is
    /// the complement table, under both input swaps and negations.
    #[test]
    fn bf2_algebra_closure(tt in 0u8..16, a: bool, b: bool) {
        let f = Bf2::from_truth_table(tt);
        prop_assert_eq!(f.complement().eval(a, b), !f.eval(a, b));
        prop_assert_eq!(f.swap_inputs().eval(a, b), f.eval(b, a));
        prop_assert_eq!(f.negate_a().eval(a, b), f.eval(!a, b));
        prop_assert_eq!(f.negate_b().eval(a, b), f.eval(a, !b));
        // Double complement/swap are identities.
        prop_assert_eq!(f.complement().complement(), f);
        prop_assert_eq!(f.swap_inputs().swap_inputs(), f);
    }

    /// The CDCL solver agrees with brute force on random small CNFs.
    #[test]
    fn solver_matches_brute_force(
        n in 2usize..8,
        clauses in prop::collection::vec(
            prop::collection::vec((1i64..8, any::<bool>()), 1..4),
            1..20,
        ),
    ) {
        let clamped: Vec<Vec<i64>> = clauses
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&(v, neg)| {
                        let v = ((v - 1) % n as i64) + 1;
                        if neg { -v } else { v }
                    })
                    .collect()
            })
            .collect();
        // Brute force.
        let mut brute_sat = false;
        'outer: for m in 0..(1u32 << n) {
            for c in &clamped {
                let ok = c.iter().any(|&l| {
                    let val = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                    if l > 0 { val } else { !val }
                });
                if !ok {
                    continue 'outer;
                }
            }
            brute_sat = true;
            break;
        }
        // CDCL.
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        for c in &clamped {
            let lits: Vec<Lit> = c.iter().map(|&l| Lit::from_dimacs(l)).collect();
            s.add_clause(&lits);
        }
        let result = s.solve();
        if brute_sat {
            prop_assert_eq!(result, SolveResult::Sat);
            for c in &clamped {
                prop_assert!(c.iter().any(|&l| s.model_lit(Lit::from_dimacs(l))));
            }
        } else {
            prop_assert_eq!(result, SolveResult::Unsat);
        }
    }

    /// Tseitin-encoded gates match their truth tables under forced inputs.
    #[test]
    fn tseitin_gate_is_faithful(tt in 0u8..16, va: bool, vb: bool) {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        let z = CircuitEncoder::new(&mut s).gate_tt(tt, a, b);
        let asm = [if va { a } else { !a }, if vb { b } else { !b }];
        prop_assert_eq!(s.solve_with(&asm), SolveResult::Sat);
        let expect = (tt >> ((va as u8) | ((vb as u8) << 1))) & 1 == 1;
        prop_assert_eq!(s.model_lit(z), expect);
    }

    /// Generated netlists always respect their configured shape and pass
    /// structural validation.
    #[test]
    fn generator_invariants(
        inputs in 2usize..20,
        outputs in 1usize..10,
        extra_gates in 0usize..150,
        seed in 0u64..1000,
    ) {
        let gates = outputs + extra_gates.max(1);
        let cfg = GeneratorConfig::new("prop", inputs, outputs, gates).with_seed(seed);
        let nl = NetlistGenerator::new(cfg).unwrap().generate();
        prop_assert!(nl.check().is_ok());
        prop_assert_eq!(nl.inputs().len(), inputs);
        prop_assert_eq!(nl.outputs().len(), outputs);
        prop_assert_eq!(nl.gate_count(), gates);
    }

    /// Locality-biased generation is still a DAG in topological order:
    /// every fanin edge points strictly backwards (so tile-local wiring
    /// and the rare cross-tile escapes can never close a cycle), and the
    /// configured shape survives the tiled construction.
    #[test]
    fn local_topology_generation_is_acyclic_and_ordered(
        inputs in 2usize..20,
        outputs in 1usize..10,
        extra_gates in 0usize..2000,
        seed in 0u64..1000,
    ) {
        let gates = outputs + extra_gates.max(1);
        let cfg = GeneratorConfig::new("loc", inputs, outputs, gates)
            .with_seed(seed)
            .with_topology(Topology::Local);
        let nl = NetlistGenerator::new(cfg).unwrap().generate();
        prop_assert!(nl.check().is_ok());
        prop_assert_eq!(nl.inputs().len(), inputs);
        prop_assert_eq!(nl.outputs().len(), outputs);
        prop_assert_eq!(nl.gate_count(), gates);
        for (i, node) in nl.nodes().enumerate() {
            for f in node.kind.fanins() {
                prop_assert!(
                    f.index() < i,
                    "fanin {} of node {} breaks topological order",
                    f.index(),
                    i
                );
            }
        }
    }

    /// `.bench` round trips preserve function on random netlists.
    #[test]
    fn bench_format_round_trip(seed in 0u64..500) {
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("rt", 6, 3, 40).with_seed(seed),
        )
        .unwrap()
        .generate();
        let back = parse_bench(&write_bench(&nl)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(random_equivalence_check(&nl, &back, 2, &mut rng).unwrap(), None);
    }

    /// For every scheme: the correct key restores the original function on
    /// random netlists and random cell subsets (sampled functionally).
    #[test]
    fn camouflage_correct_key_invariant(
        seed in 0u64..200,
        scheme_idx in 0usize..7,
        cells in 1usize..12,
    ) {
        let scheme = CamoScheme::ALL[scheme_idx];
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("ck", 8, 4, 60).with_seed(seed),
        )
        .unwrap()
        .generate();
        let picks = select_gates_count(&nl, cells, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let keyed = camouflage(&nl, &picks, scheme, &mut rng).unwrap();
        let resolved = keyed.resolve(&keyed.correct_key()).unwrap();
        let mut rng2 = StdRng::seed_from_u64(seed ^ 1);
        prop_assert_eq!(
            random_equivalence_check(&nl, &resolved, 2, &mut rng2).unwrap(),
            None
        );
    }

    /// STA invariants: arrival monotone along edges, slack non-negative off
    /// dead logic, critical equals max output arrival.
    #[test]
    fn sta_invariants(seed in 0u64..300, bias in 0.0f64..0.5) {
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("sta", 8, 4, 80).with_seed(seed).with_chain_bias(bias),
        )
        .unwrap()
        .generate();
        let model = DelayModel::cmos_45nm();
        let delays = model.node_delays(&nl);
        let sta = TimingAnalysis::analyze(&nl, &delays);
        for (i, node) in nl.nodes().enumerate() {
            for f in node.kind.fanins() {
                prop_assert!(sta.arrivals()[i] >= sta.arrivals()[f.index()]);
            }
            if sta.required()[i].is_finite() {
                prop_assert!(sta.slack(i) >= -1e-12, "negative slack at {i}");
            }
        }
        let max_out = nl
            .outputs()
            .iter()
            .map(|o| sta.arrivals()[o.index()])
            .fold(0.0f64, f64::max);
        prop_assert!((sta.critical_delay() - max_out).abs() < 1e-15);
    }
}
