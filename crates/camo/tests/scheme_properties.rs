//! Property-style integration tests for the camouflaging transforms: key
//! semantics, wrong-key corruption rates, and cross-scheme fairness.

use gshe_camo::{camouflage, camouflage_with_report, select_gates, CamoScheme};
use gshe_logic::sim::random_equivalence_check;
use gshe_logic::{GeneratorConfig, Netlist, NetlistGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(seed: u64) -> Netlist {
    NetlistGenerator::new(GeneratorConfig::new("w", 10, 5, 100).with_seed(seed))
        .unwrap()
        .generate()
}

#[test]
fn same_selection_yields_same_key_length_ratio() {
    // The paper's fairness protocol: with the same picks, key length is
    // exactly (#picks × bits-per-cell) for every scheme.
    let nl = workload(1);
    let picks = select_gates(&nl, 0.3, 2);
    for scheme in CamoScheme::ALL {
        let mut rng = StdRng::seed_from_u64(3);
        let keyed = camouflage(&nl, &picks, scheme, &mut rng).unwrap();
        assert_eq!(
            keyed.key_len(),
            picks.len() * scheme.key_bits_per_gate(),
            "{scheme}"
        );
        assert_eq!(keyed.camo_gates().len(), picks.len(), "{scheme}");
    }
}

#[test]
fn random_wrong_keys_usually_corrupt_the_function() {
    // Cloaking is pointless if random keys accidentally work: measure the
    // fraction of random keys that leave the function intact (should be
    // small for the all-16 scheme at a healthy protection level).
    let nl = workload(5);
    let picks = select_gates(&nl, 0.3, 7);
    let mut rng = StdRng::seed_from_u64(7);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
    let mut intact = 0;
    let trials = 40;
    for t in 0..trials {
        let mut krng = StdRng::seed_from_u64(t);
        let key: Vec<bool> = (0..keyed.key_len()).map(|_| krng.gen_bool(0.5)).collect();
        let resolved = keyed.resolve(&key).unwrap();
        let mut erng = StdRng::seed_from_u64(t ^ 99);
        if random_equivalence_check(&nl, &resolved, 4, &mut erng)
            .unwrap()
            .is_none()
        {
            intact += 1;
        }
    }
    assert!(
        intact <= 2,
        "{intact}/{trials} random keys left the function intact"
    );
}

#[test]
fn single_bit_flips_are_detectable() {
    // Flipping any single key bit of the correct key must change the
    // function of some cell (candidate sets have no duplicate functions),
    // though the netlist-level effect may be masked.
    let nl = workload(9);
    let picks = select_gates(&nl, 0.2, 11);
    let mut rng = StdRng::seed_from_u64(11);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
    let correct = keyed.correct_key();
    for bit in 0..keyed.key_len() {
        let mut key = correct.clone();
        key[bit] = !key[bit];
        assert!(!keyed.key_is_structurally_correct(&key), "bit {bit}");
        // All-16: every code is valid, so resolution always succeeds.
        let resolved = keyed.resolve(&key).unwrap();
        assert_eq!(resolved.gate_count(), keyed.netlist().gate_count());
    }
}

#[test]
fn report_extra_gates_bounded_by_rules() {
    // Complement rule adds ≤1 gate per cell; decomposition ≤4.
    let nl = workload(13);
    let picks = select_gates(&nl, 0.5, 13);
    for scheme in CamoScheme::ALL {
        let mut rng = StdRng::seed_from_u64(17);
        let (_, report) = camouflage_with_report(&nl, &picks, scheme, &mut rng).unwrap();
        assert!(
            report.extra_gates <= report.complemented + 4 * report.decomposed + report.protected(),
            "{scheme}: {report:?}"
        );
    }
}

#[test]
fn camo_netlists_remain_structurally_valid() {
    for (seed, scheme) in [
        (1u64, CamoScheme::LookAlike),
        (2, CamoScheme::FourFn),
        (3, CamoScheme::InvBuf),
        (4, CamoScheme::DwmPolymorphic),
    ] {
        let nl = workload(seed);
        let picks = select_gates(&nl, 0.4, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let keyed = camouflage(&nl, &picks, scheme, &mut rng).unwrap();
        keyed.netlist().check().unwrap();
        // Interface preserved.
        assert_eq!(keyed.netlist().inputs().len(), nl.inputs().len());
        assert_eq!(keyed.netlist().outputs().len(), nl.outputs().len());
    }
}
