//! The camouflaging transform: netlist + memorized selection + scheme →
//! [`KeyedNetlist`].
//!
//! Schemes with small candidate sets cannot directly cloak every function a
//! synthesized netlist contains. The transform absorbs the mismatch the way
//! a real camouflaging flow (resynthesis) would:
//!
//! 1. function ∈ set → cloak in place;
//! 2. ¬function ∈ set → cloak the complement and emit a *visible* inverter;
//! 3. XOR/XNOR with a NAND-capable set → rewrite as the 4-NAND tree and
//!    cloak the output NAND (+ visible inverter for XNOR);
//! 4. one-input gates → cloak as a degenerate two-input cell `f₂(a, a)`;
//! 5. otherwise the gate is uncloakable under that scheme
//!    ([`CamoError::Uncloakable`]).
//!
//! The INV/BUF scheme (\[24, c\], \[35\]) instead *inserts* a cloaked
//! inverter-or-buffer cell behind the selected gate, randomly complementing
//! the gate so that both candidate functions genuinely occur on chip.

use crate::error::CamoError;
use crate::keyed::{CamoGate, Candidates, KeyedNetlist};
use crate::scheme::CamoScheme;
use gshe_logic::{Bf1, Bf2, Netlist, NetlistBuilder, NodeId, NodeKind};
use rand::Rng;

/// Statistics of one camouflaging run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CamoReport {
    /// Cells cloaked in place (rule 1).
    pub direct: usize,
    /// Cells cloaked via the complement rule (rule 2).
    pub complemented: usize,
    /// Cells cloaked via NAND-tree decomposition (rule 3).
    pub decomposed: usize,
    /// One-input gates cloaked as degenerate two-input cells (rule 4).
    pub degenerate: usize,
    /// Extra visible gates added by rules 2–3.
    pub extra_gates: usize,
    /// Total key bits.
    pub key_bits: usize,
}

impl CamoReport {
    /// Total cloaked cells.
    pub fn protected(&self) -> usize {
        self.direct + self.complemented + self.decomposed + self.degenerate
    }
}

/// Camouflages `picks` (a memorized selection from
/// [`crate::selection::select_gates`]) in `netlist` under `scheme`.
///
/// # Errors
///
/// Returns [`CamoError::NotAGate`] if a pick is not a gate and
/// [`CamoError::Uncloakable`] if the scheme cannot absorb a picked gate's
/// function.
pub fn camouflage<R: Rng + ?Sized>(
    netlist: &Netlist,
    picks: &[NodeId],
    scheme: CamoScheme,
    rng: &mut R,
) -> Result<KeyedNetlist, CamoError> {
    camouflage_with_report(netlist, picks, scheme, rng).map(|(k, _)| k)
}

/// Like [`camouflage`], also returning the transform statistics.
///
/// # Errors
///
/// See [`camouflage`].
pub fn camouflage_with_report<R: Rng + ?Sized>(
    netlist: &Netlist,
    picks: &[NodeId],
    scheme: CamoScheme,
    rng: &mut R,
) -> Result<(KeyedNetlist, CamoReport), CamoError> {
    let mut picked = vec![false; netlist.len()];
    for &p in picks {
        if !netlist.node(p).kind.is_gate() {
            return Err(CamoError::NotAGate(p));
        }
        picked[p.index()] = true;
    }

    let mut b = NetlistBuilder::new(format!("{}_camo", netlist.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.len()];
    let mut camo_gates: Vec<CamoGate> = Vec::with_capacity(picks.len());
    let mut key_offset = 0usize;
    let mut report = CamoReport::default();

    let remap = |map: &[Option<NodeId>], id: NodeId| -> NodeId {
        map[id.index()].expect("topological order guarantees the fanin exists")
    };

    for (i, node) in netlist.nodes().enumerate() {
        let old = NodeId(i as u32);
        if !picked[i] {
            let new_id = match node.kind {
                NodeKind::Input => b.input(node.name),
                NodeKind::Const(c) => b.constant(c),
                NodeKind::Gate1 { f, a } => b.gate1(node.name, f, remap(&map, a)),
                NodeKind::Gate2 { f, a, b: bb } => {
                    b.gate2(node.name, f, remap(&map, a), remap(&map, bb))
                }
            };
            map[i] = Some(new_id);
            continue;
        }

        // Picked: emit the cloaked cell(s).
        let candidates = scheme.candidates();
        let (cell_node, correct_index, mapped) = match (&candidates, node.kind) {
            (Candidates::OneInput(fs), kind) => {
                // INV/BUF insertion behind the gate.
                let invert = rng.gen_bool(0.5);
                let pre = match kind {
                    NodeKind::Gate1 { f, a } => {
                        let f = if invert { f.complement() } else { f };
                        b.gate1(format!("{}__camopre", node.name), f, remap(&map, a))
                    }
                    NodeKind::Gate2 { f, a, b: bb } => {
                        let f = if invert { f.complement() } else { f };
                        b.gate2(
                            format!("{}__camopre", node.name),
                            f,
                            remap(&map, a),
                            remap(&map, bb),
                        )
                    }
                    _ => return Err(CamoError::NotAGate(old)),
                };
                let cell_fn = if invert { Bf1::Inv } else { Bf1::Buf };
                let cell = b.gate1(node.name, cell_fn, pre);
                let correct = fs
                    .iter()
                    .position(|&f| f == cell_fn)
                    .expect("InvBuf candidates contain both functions");
                report.degenerate += matches!(kind, NodeKind::Gate1 { .. }) as usize;
                report.direct += matches!(kind, NodeKind::Gate2 { .. }) as usize;
                report.extra_gates += 1;
                (cell, correct, cell)
            }
            (Candidates::TwoInput(fs), NodeKind::Gate2 { f, a, b: bb }) => {
                let (na, nb) = (remap(&map, a), remap(&map, bb));
                if let Some(pos) = fs.iter().position(|&g| g == f) {
                    let cell = b.gate2(node.name, f, na, nb);
                    report.direct += 1;
                    (cell, pos, cell)
                } else if let Some(pos) = fs.iter().position(|&g| g == f.complement()) {
                    let cell = b.gate2(format!("{}__camocell", node.name), f.complement(), na, nb);
                    let inv = b.gate1(node.name, Bf1::Inv, cell);
                    report.complemented += 1;
                    report.extra_gates += 1;
                    (cell, pos, inv)
                } else if (f == Bf2::XOR || f == Bf2::XNOR) && fs.contains(&Bf2::NAND) {
                    // 4-NAND tree; cloak the output NAND.
                    let t1 = b.gate2(format!("{}__t1", node.name), Bf2::NAND, na, nb);
                    let t2 = b.gate2(format!("{}__t2", node.name), Bf2::NAND, na, t1);
                    let t3 = b.gate2(format!("{}__t3", node.name), Bf2::NAND, nb, t1);
                    let pos = fs.iter().position(|&g| g == Bf2::NAND).expect("checked");
                    report.decomposed += 1;
                    if f == Bf2::XOR {
                        let cell = b.gate2(node.name, Bf2::NAND, t2, t3);
                        report.extra_gates += 3;
                        (cell, pos, cell)
                    } else {
                        let cell = b.gate2(format!("{}__camocell", node.name), Bf2::NAND, t2, t3);
                        let inv = b.gate1(node.name, Bf1::Inv, cell);
                        report.extra_gates += 4;
                        (cell, pos, inv)
                    }
                } else {
                    return Err(CamoError::Uncloakable {
                        node: old,
                        function: f.name(),
                    });
                }
            }
            (Candidates::TwoInput(fs), NodeKind::Gate1 { f, a }) => {
                // Degenerate cell f₂(a, a) with f₂(v, v) = f(v).
                let na = remap(&map, a);
                let matches_direct =
                    |g: &Bf2| (0..2).all(|v| g.eval(v == 1, v == 1) == f.eval(v == 1));
                let matches_compl =
                    |g: &Bf2| (0..2).all(|v| g.eval(v == 1, v == 1) != f.eval(v == 1));
                if let Some(pos) = fs.iter().position(matches_direct) {
                    let cell = b.gate2(node.name, fs[pos], na, na);
                    report.degenerate += 1;
                    (cell, pos, cell)
                } else if let Some(pos) = fs.iter().position(matches_compl) {
                    let cell = b.gate2(format!("{}__camocell", node.name), fs[pos], na, na);
                    let inv = b.gate1(node.name, Bf1::Inv, cell);
                    report.degenerate += 1;
                    report.extra_gates += 1;
                    (cell, pos, inv)
                } else {
                    return Err(CamoError::Uncloakable {
                        node: old,
                        function: f.name(),
                    });
                }
            }
            (_, NodeKind::Input | NodeKind::Const(_)) => return Err(CamoError::NotAGate(old)),
        };

        let bits = candidates.key_bits();
        camo_gates.push(CamoGate {
            node: cell_node,
            candidates,
            key_offset,
            correct_index,
        });
        key_offset += bits;
        map[i] = Some(mapped);
    }

    for &o in netlist.outputs() {
        b.output(remap(&map, o));
    }
    report.key_bits = key_offset;
    let nl = b.finish().expect("transform preserves invariants");
    Ok((KeyedNetlist::new(nl, camo_gates, key_offset), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::select_gates;
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use gshe_logic::sim::random_equivalence_check;
    use gshe_logic::{GeneratorConfig, NetlistGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Netlist {
        NetlistGenerator::new(GeneratorConfig::new("t", 10, 5, 120).with_seed(21))
            .unwrap()
            .generate()
    }

    fn check_correct_key_preserves_function(scheme: CamoScheme) {
        let nl = sample();
        let picks = select_gates(&nl, 0.25, 77);
        let mut rng = StdRng::seed_from_u64(1);
        let keyed = camouflage(&nl, &picks, scheme, &mut rng).unwrap();
        let resolved = keyed.resolve(&keyed.correct_key()).unwrap();
        let mut rng2 = StdRng::seed_from_u64(2);
        assert_eq!(
            random_equivalence_check(&nl, &resolved, 6, &mut rng2).unwrap(),
            None,
            "{scheme}: correct key must restore the original function"
        );
    }

    #[test]
    fn every_scheme_preserves_function_under_correct_key() {
        for scheme in CamoScheme::ALL {
            check_correct_key_preserves_function(scheme);
        }
    }

    #[test]
    fn key_bits_scale_with_scheme() {
        let nl = sample();
        let picks = select_gates(&nl, 0.25, 77);
        let mut rng = StdRng::seed_from_u64(1);
        let small = camouflage(&nl, &picks, CamoScheme::InvBuf, &mut rng).unwrap();
        let big = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        assert_eq!(small.key_len(), picks.len());
        assert_eq!(big.key_len(), 4 * picks.len());
    }

    #[test]
    fn report_accounts_for_every_pick() {
        let nl = sample();
        let picks = select_gates(&nl, 0.3, 5);
        let mut rng = StdRng::seed_from_u64(3);
        for scheme in CamoScheme::ALL {
            let (_, report) = camouflage_with_report(&nl, &picks, scheme, &mut rng).unwrap();
            assert_eq!(report.protected(), picks.len(), "{scheme}");
        }
    }

    #[test]
    fn lookalike_uses_complement_rule_for_and_or() {
        // Generator netlists contain AND/OR which LookAlike {NAND,NOR,XOR}
        // must absorb by complementing.
        let nl = sample();
        let picks = select_gates(&nl, 0.5, 6);
        let mut rng = StdRng::seed_from_u64(4);
        let (_, report) =
            camouflage_with_report(&nl, &picks, CamoScheme::LookAlike, &mut rng).unwrap();
        assert!(report.complemented > 0);
        assert!(report.extra_gates > 0);
    }

    #[test]
    fn fourfn_decomposes_xor() {
        let nl = sample();
        let picks = select_gates(&nl, 0.6, 8);
        let mut rng = StdRng::seed_from_u64(5);
        let (keyed, report) =
            camouflage_with_report(&nl, &picks, CamoScheme::FourFn, &mut rng).unwrap();
        assert!(report.decomposed > 0, "sample contains XOR/XNOR gates");
        // Decomposition inflates the gate count.
        assert!(keyed.netlist().gate_count() > nl.gate_count());
    }

    #[test]
    fn c17_full_protection_all_schemes() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = nl.gate_ids();
        for scheme in CamoScheme::ALL {
            let mut rng = StdRng::seed_from_u64(9);
            let keyed = camouflage(&nl, &picks, scheme, &mut rng).unwrap();
            let resolved = keyed.resolve(&keyed.correct_key()).unwrap();
            // c17 is tiny: exhaustively verify.
            for p in 0..32u32 {
                let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
                assert_eq!(nl.evaluate(&v), resolved.evaluate(&v), "{scheme} p={p}");
            }
        }
    }

    #[test]
    fn wrong_key_usually_breaks_function() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = nl.gate_ids();
        let mut rng = StdRng::seed_from_u64(10);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut wrong = keyed.correct_key();
        for b in wrong.iter_mut() {
            *b = !*b;
        }
        let resolved = keyed.resolve(&wrong).unwrap();
        let mut differs = false;
        for p in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            if nl.evaluate(&v) != resolved.evaluate(&v) {
                differs = true;
                break;
            }
        }
        assert!(differs, "all-bits-flipped key should change c17's function");
    }

    #[test]
    fn picking_an_input_is_rejected() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let input = nl.inputs()[0];
        let mut rng = StdRng::seed_from_u64(11);
        assert!(matches!(
            camouflage(&nl, &[input], CamoScheme::GsheAll16, &mut rng),
            Err(CamoError::NotAGate(_))
        ));
    }

    #[test]
    fn invbuf_produces_both_variants() {
        let nl = sample();
        let picks = select_gates(&nl, 0.5, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let keyed = camouflage(&nl, &picks, CamoScheme::InvBuf, &mut rng).unwrap();
        let key = keyed.correct_key();
        let bufs = key.iter().filter(|&&b| !b).count();
        let invs = key.iter().filter(|&&b| b).count();
        assert!(bufs > 0 && invs > 0, "both BUF and INV cells must occur");
    }
}
