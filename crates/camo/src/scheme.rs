//! The camouflaging schemes compared in Table IV.

use crate::keyed::Candidates;
use gshe_logic::{Bf1, Bf2};
use std::fmt;

/// A camouflaging primitive: which Boolean functions one cloaked cell can
/// hide among. Columns of Table IV, left to right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CamoScheme {
    /// Rajendran et al. \[2\]: look-alike NAND/NOR/XOR cell (3 functions).
    LookAlike,
    /// Nirmala et al. \[3\] / Winograd et al. \[25\]: threshold-defined /
    /// STT-LUT cell with NAND/NOR/XOR/XNOR/AND/OR (6 functions).
    ThresholdSttLut,
    /// Bi et al. \[19\]: SiNW camouflaging primitive (4 functions).
    SiNw,
    /// Alasad et al. \[24, c\] / Zhang \[35\]: camouflaged INV/BUF cell
    /// (2 functions, one-input).
    InvBuf,
    /// Zhang et al. \[23\] / Alasad et al. \[24, a\]: AND/OR/NAND/NOR
    /// (4 functions).
    FourFn,
    /// Parveen et al. \[20\]: DWM polymorphic gate,
    /// NAND/NOR/XOR/XNOR/AND/OR/INV plus BUF (7+1 functions).
    DwmPolymorphic,
    /// **This work**: the GSHE primitive cloaking all 16 two-input Boolean
    /// functions.
    GsheAll16,
}

impl CamoScheme {
    /// All schemes in the paper's Table IV column order.
    pub const ALL: [CamoScheme; 7] = [
        CamoScheme::LookAlike,
        CamoScheme::ThresholdSttLut,
        CamoScheme::SiNw,
        CamoScheme::InvBuf,
        CamoScheme::FourFn,
        CamoScheme::DwmPolymorphic,
        CamoScheme::GsheAll16,
    ];

    /// The candidate function set one cloaked cell hides among.
    pub fn candidates(self) -> Candidates {
        match self {
            CamoScheme::LookAlike => Candidates::TwoInput(vec![Bf2::NAND, Bf2::NOR, Bf2::XOR]),
            CamoScheme::ThresholdSttLut => Candidates::TwoInput(vec![
                Bf2::NAND,
                Bf2::NOR,
                Bf2::XOR,
                Bf2::XNOR,
                Bf2::AND,
                Bf2::OR,
            ]),
            CamoScheme::SiNw => {
                Candidates::TwoInput(vec![Bf2::NAND, Bf2::NOR, Bf2::XOR, Bf2::XNOR])
            }
            CamoScheme::InvBuf => Candidates::OneInput(vec![Bf1::Buf, Bf1::Inv]),
            CamoScheme::FourFn => {
                Candidates::TwoInput(vec![Bf2::AND, Bf2::OR, Bf2::NAND, Bf2::NOR])
            }
            CamoScheme::DwmPolymorphic => Candidates::TwoInput(vec![
                Bf2::NAND,
                Bf2::NOR,
                Bf2::XOR,
                Bf2::XNOR,
                Bf2::AND,
                Bf2::OR,
                Bf2::NOT_A,
                Bf2::BUF_A,
            ]),
            CamoScheme::GsheAll16 => Candidates::TwoInput(Bf2::ALL.to_vec()),
        }
    }

    /// Number of cloaked functions (the `(n)*` annotation in Table IV).
    pub fn cloaked_functions(self) -> usize {
        match self.candidates() {
            Candidates::TwoInput(v) => v.len(),
            Candidates::OneInput(v) => v.len(),
        }
    }

    /// Key bits per cloaked cell: ⌈log₂(candidates)⌉.
    pub fn key_bits_per_gate(self) -> usize {
        let n = self.cloaked_functions();
        usize::BITS as usize - (n - 1).leading_zeros() as usize
    }

    /// The paper's column label (publication references).
    pub const fn paper_column(self) -> &'static str {
        match self {
            CamoScheme::LookAlike => "[2]",
            CamoScheme::ThresholdSttLut => "[3], [25]",
            CamoScheme::SiNw => "[19]",
            CamoScheme::InvBuf => "[24, c], [35]",
            CamoScheme::FourFn => "[23], [24, a]",
            CamoScheme::DwmPolymorphic => "[20]",
            CamoScheme::GsheAll16 => "Our",
        }
    }
}

impl fmt::Display for CamoScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.paper_column(), self.cloaked_functions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloaked_counts_match_table_iv() {
        assert_eq!(CamoScheme::LookAlike.cloaked_functions(), 3);
        assert_eq!(CamoScheme::ThresholdSttLut.cloaked_functions(), 6);
        assert_eq!(CamoScheme::SiNw.cloaked_functions(), 4);
        assert_eq!(CamoScheme::InvBuf.cloaked_functions(), 2);
        assert_eq!(CamoScheme::FourFn.cloaked_functions(), 4);
        assert_eq!(CamoScheme::DwmPolymorphic.cloaked_functions(), 8); // 7+1
        assert_eq!(CamoScheme::GsheAll16.cloaked_functions(), 16);
    }

    #[test]
    fn key_bits_are_ceil_log2() {
        assert_eq!(CamoScheme::LookAlike.key_bits_per_gate(), 2);
        assert_eq!(CamoScheme::ThresholdSttLut.key_bits_per_gate(), 3);
        assert_eq!(CamoScheme::SiNw.key_bits_per_gate(), 2);
        assert_eq!(CamoScheme::InvBuf.key_bits_per_gate(), 1);
        assert_eq!(CamoScheme::FourFn.key_bits_per_gate(), 2);
        assert_eq!(CamoScheme::DwmPolymorphic.key_bits_per_gate(), 3);
        assert_eq!(CamoScheme::GsheAll16.key_bits_per_gate(), 4);
    }

    #[test]
    fn candidate_sets_are_distinct_functions() {
        for s in CamoScheme::ALL {
            if let Candidates::TwoInput(mut v) = s.candidates() {
                let before = v.len();
                v.sort_unstable();
                v.dedup();
                assert_eq!(v.len(), before, "{s} has duplicate candidates");
            }
        }
    }

    #[test]
    fn ours_cloaks_everything() {
        let Candidates::TwoInput(v) = CamoScheme::GsheAll16.candidates() else {
            panic!("GSHE is a two-input scheme");
        };
        assert_eq!(v.len(), 16);
        for f in Bf2::ALL {
            assert!(v.contains(&f));
        }
    }

    #[test]
    fn display_mentions_citation() {
        assert!(CamoScheme::GsheAll16.to_string().contains("Our"));
        assert!(CamoScheme::LookAlike.to_string().contains("[2]"));
    }
}
