//! The keyed (locked/camouflaged) netlist model.

use crate::error::CamoError;
use gshe_logic::{Bf1, Bf2, Netlist, NodeId, NodeKind};

/// Candidate function set of one cloaked cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Candidates {
    /// Two-input candidates (most schemes).
    TwoInput(Vec<Bf2>),
    /// One-input candidates (the INV/BUF scheme).
    OneInput(Vec<Bf1>),
}

impl Candidates {
    /// Number of candidate functions.
    pub fn len(&self) -> usize {
        match self {
            Candidates::TwoInput(v) => v.len(),
            Candidates::OneInput(v) => v.len(),
        }
    }

    /// `true` if the set is empty (never produced by the transforms).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Key bits needed: ⌈log₂ len⌉ (minimum 1).
    pub fn key_bits(&self) -> usize {
        let n = self.len().max(2);
        usize::BITS as usize - (n - 1).leading_zeros() as usize
    }
}

/// One cloaked cell inside a [`KeyedNetlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CamoGate {
    /// The netlist node occupied by the cell.
    pub node: NodeId,
    /// The functions the cell hides among.
    pub candidates: Candidates,
    /// Index of the first key bit controlling this cell.
    pub key_offset: usize,
    /// Index (within `candidates`) of the true function — the secret.
    pub correct_index: usize,
}

impl CamoGate {
    /// Key bits consumed by this cell.
    pub fn key_bits(&self) -> usize {
        self.candidates.key_bits()
    }

    /// Decodes this cell's candidate index from a full key.
    ///
    /// Returns `None` when the key bits encode an invalid (≥ len) index.
    pub fn decode(&self, key: &[bool]) -> Option<usize> {
        let mut idx = 0usize;
        for b in 0..self.key_bits() {
            if key[self.key_offset + b] {
                idx |= 1 << b;
            }
        }
        (idx < self.candidates.len()).then_some(idx)
    }

    /// Encodes candidate `index` into `key` at this cell's offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn encode(&self, index: usize, key: &mut [bool]) {
        assert!(
            index < self.candidates.len(),
            "candidate index out of range"
        );
        for b in 0..self.key_bits() {
            key[self.key_offset + b] = (index >> b) & 1 == 1;
        }
    }
}

/// A camouflaged netlist with key-controlled cloaked cells.
///
/// The embedded [`Netlist`] holds the *correct* functions at the cloaked
/// nodes (so the defender can simulate the real chip); an attacker is given
/// only the structure plus each cell's candidate set — which is what the
/// SAT encoding in `gshe-attacks` consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedNetlist {
    netlist: Netlist,
    camo_gates: Vec<CamoGate>,
    key_len: usize,
}

impl KeyedNetlist {
    /// Assembles a keyed netlist (used by [`crate::transform::camouflage`]).
    ///
    /// # Panics
    ///
    /// Panics if key offsets are inconsistent with `key_len`.
    pub fn new(netlist: Netlist, camo_gates: Vec<CamoGate>, key_len: usize) -> Self {
        let total: usize = camo_gates.iter().map(|g| g.key_bits()).sum();
        assert_eq!(total, key_len, "key offsets inconsistent with key length");
        KeyedNetlist {
            netlist,
            camo_gates,
            key_len,
        }
    }

    /// The underlying structure **with correct functions installed**
    /// (defender's view).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The cloaked cells.
    pub fn camo_gates(&self) -> &[CamoGate] {
        &self.camo_gates
    }

    /// Total key bits.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// The correct key (defender's secret).
    pub fn correct_key(&self) -> Vec<bool> {
        let mut key = vec![false; self.key_len];
        for g in &self.camo_gates {
            g.encode(g.correct_index, &mut key);
        }
        key
    }

    /// Resolves the design under `key` into a plain netlist.
    ///
    /// Invalid key codes (possible when a cell's candidate count is not a
    /// power of two) select candidate `code mod len`, mirroring a chip whose
    /// undocumented configurations alias onto documented ones.
    ///
    /// # Errors
    ///
    /// Returns [`CamoError::KeyLengthMismatch`] on key-length mismatch.
    pub fn resolve(&self, key: &[bool]) -> Result<Netlist, CamoError> {
        if key.len() != self.key_len {
            return Err(CamoError::KeyLengthMismatch {
                expected: self.key_len,
                got: key.len(),
            });
        }
        let mut nl = self.netlist.clone();
        for g in &self.camo_gates {
            let idx = match g.decode(key) {
                Some(i) => i,
                None => {
                    let mut raw = 0usize;
                    for b in 0..g.key_bits() {
                        if key[g.key_offset + b] {
                            raw |= 1 << b;
                        }
                    }
                    raw % g.candidates.len()
                }
            };
            match &g.candidates {
                Candidates::TwoInput(fs) => {
                    nl.set_gate2_function(g.node, fs[idx])
                        .map_err(|_| CamoError::NotAGate(g.node))?;
                }
                Candidates::OneInput(fs) => {
                    set_gate1_function(&mut nl, g.node, fs[idx])?;
                }
            }
        }
        Ok(nl)
    }

    /// Evaluates the design on `inputs` under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`CamoError::KeyLengthMismatch`] or
    /// [`CamoError::InputCountMismatch`].
    pub fn evaluate_with_key(&self, inputs: &[bool], key: &[bool]) -> Result<Vec<bool>, CamoError> {
        let resolved = self.resolve(key)?;
        resolved
            .try_evaluate(inputs)
            .map_err(|_| CamoError::InputCountMismatch {
                expected: self.netlist.inputs().len(),
                got: inputs.len(),
            })
    }

    /// `true` if `key` selects the correct function at every cell
    /// (*structurally* correct; functionally equivalent wrong keys can
    /// exist and are exactly what SAT attacks may legitimately return).
    pub fn key_is_structurally_correct(&self, key: &[bool]) -> bool {
        key.len() == self.key_len
            && self
                .camo_gates
                .iter()
                .all(|g| g.decode(key) == Some(g.correct_index))
    }
}

fn set_gate1_function(nl: &mut Netlist, node: NodeId, f: Bf1) -> Result<(), CamoError> {
    // Netlist has no public Gate1 mutator; emulate via kind inspection and
    // a rebuild-free in-place update through set_gate2_function's sibling.
    // We rely on the transform having installed a Gate1 at `node`.
    match nl.node(node).kind {
        NodeKind::Gate1 { a, .. } => {
            // Replace by rebuilding just this node's kind.
            nl.set_gate1_function(node, f, a)
                .map_err(|_| CamoError::NotAGate(node))
        }
        _ => Err(CamoError::NotAGate(node)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_logic::{Bf2, NetlistBuilder};

    fn tiny_keyed() -> KeyedNetlist {
        // y = AND(a, b), camouflaged among all 16.
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate2("y", Bf2::AND, a, c);
        b.output(y);
        let nl = b.finish().unwrap();
        let gate = CamoGate {
            node: y,
            candidates: Candidates::TwoInput(Bf2::ALL.to_vec()),
            key_offset: 0,
            correct_index: Bf2::AND.truth_table() as usize,
        };
        KeyedNetlist::new(nl, vec![gate], 4)
    }

    #[test]
    fn correct_key_round_trips() {
        let k = tiny_keyed();
        let key = k.correct_key();
        assert!(k.key_is_structurally_correct(&key));
        assert_eq!(
            k.evaluate_with_key(&[true, true], &key).unwrap(),
            vec![true]
        );
        assert_eq!(
            k.evaluate_with_key(&[true, false], &key).unwrap(),
            vec![false]
        );
    }

    #[test]
    fn wrong_key_changes_function() {
        let k = tiny_keyed();
        let mut key = k.correct_key();
        // Select OR instead of AND.
        key.copy_from_slice(&[false, true, true, true]);
        assert_eq!(
            k.evaluate_with_key(&[true, false], &key).unwrap(),
            vec![true]
        );
        assert!(!k.key_is_structurally_correct(&key));
    }

    #[test]
    fn key_length_is_enforced() {
        let k = tiny_keyed();
        assert!(matches!(
            k.evaluate_with_key(&[true, true], &[true]),
            Err(CamoError::KeyLengthMismatch {
                expected: 4,
                got: 1
            })
        ));
    }

    #[test]
    fn decode_encode_round_trip() {
        let k = tiny_keyed();
        let g = &k.camo_gates()[0];
        let mut key = vec![false; 4];
        for idx in 0..16 {
            g.encode(idx, &mut key);
            assert_eq!(g.decode(&key), Some(idx));
        }
    }

    #[test]
    fn invalid_code_aliases_modulo() {
        // 3 candidates on 2 key bits: code 3 aliases onto candidate 0.
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate2("y", Bf2::NAND, a, c);
        b.output(y);
        let nl = b.finish().unwrap();
        let gate = CamoGate {
            node: y,
            candidates: Candidates::TwoInput(vec![Bf2::NAND, Bf2::NOR, Bf2::XOR]),
            key_offset: 0,
            correct_index: 0,
        };
        let k = KeyedNetlist::new(nl, vec![gate], 2);
        let out = k.evaluate_with_key(&[true, true], &[true, true]).unwrap();
        // code 3 % 3 = 0 → NAND(1,1) = 0.
        assert_eq!(out, vec![false]);
    }
}
