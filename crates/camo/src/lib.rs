//! # gshe-camo
//!
//! IC camouflaging / logic-locking transforms for the GSHE primitive and
//! every prior-art scheme the paper benchmarks against in Table IV.
//!
//! Camouflaging and locking are *transformable notions* (paper Sec. V-A,
//! ref. \[36\]): a camouflaged gate with `k` candidate functions is modeled
//! as a key-controlled selection among those candidates, which is exactly
//! what a SAT attacker reasons about. [`KeyedNetlist`] is that model;
//! [`camouflage`] produces it from a plain netlist, a memorized gate
//! selection, and a [`CamoScheme`].
//!
//! ```
//! use gshe_camo::{camouflage, select_gates, CamoScheme};
//! use gshe_logic::{parse_bench, bench_format::C17_BENCH};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let nl = parse_bench(C17_BENCH).unwrap();
//! let picks = select_gates(&nl, 0.5, 7);
//! let mut rng = StdRng::seed_from_u64(7);
//! let locked = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
//! // The correct key restores the original function.
//! let key = locked.correct_key();
//! assert_eq!(
//!     locked.evaluate_with_key(&[true, false, true, false, true], &key).unwrap(),
//!     nl.evaluate(&[true, false, true, false, true]),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod keyed;
pub mod scheme;
pub mod selection;
pub mod transform;

pub use error::CamoError;
pub use keyed::{CamoGate, Candidates, KeyedNetlist};
pub use scheme::CamoScheme;
pub use selection::{select_gates, select_gates_count};
pub use transform::{camouflage, camouflage_with_report, CamoReport};
