//! Error type for the camouflaging crate.

use gshe_logic::NodeId;
use std::error::Error;
use std::fmt;

/// Errors from camouflaging transforms and keyed evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CamoError {
    /// A selected node is not a gate (inputs/constants cannot be cloaked).
    NotAGate(NodeId),
    /// A key of the wrong length was supplied.
    KeyLengthMismatch {
        /// Bits the keyed netlist expects.
        expected: usize,
        /// Bits supplied.
        got: usize,
    },
    /// The scheme cannot cloak the gate's function, even via the
    /// complement/decomposition rules.
    Uncloakable {
        /// The offending node.
        node: NodeId,
        /// The function that could not be absorbed.
        function: &'static str,
    },
    /// Input arity mismatch during keyed evaluation.
    InputCountMismatch {
        /// Inputs expected.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
}

impl fmt::Display for CamoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CamoError::NotAGate(n) => write!(f, "node {n} is not a gate"),
            CamoError::KeyLengthMismatch { expected, got } => {
                write!(f, "expected a {expected}-bit key, got {got} bits")
            }
            CamoError::Uncloakable { node, function } => {
                write!(f, "scheme cannot cloak {function} at node {node}")
            }
            CamoError::InputCountMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
        }
    }
}

impl Error for CamoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = CamoError::KeyLengthMismatch {
            expected: 8,
            got: 3,
        };
        assert!(e.to_string().contains('8') && e.to_string().contains('3'));
        assert!(CamoError::NotAGate(NodeId(4)).to_string().contains("n4"));
    }
}
