//! Memorized gate selection.
//!
//! The paper's fairness protocol (Sec. V-A): *"gates are randomly selected
//! once for each benchmark, memorized, and then reapplied across all
//! techniques."* Selection is therefore a separate, seeded step whose
//! output is passed to every scheme's [`crate::transform::camouflage`]
//! call.

use gshe_logic::{Netlist, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Selects `fraction` of all gates (0 < fraction ≤ 1), uniformly at random
/// with a fixed `seed`. The returned list is sorted by node id so the same
/// selection applies deterministically across techniques.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]`.
pub fn select_gates(netlist: &Netlist, fraction: f64, seed: u64) -> Vec<NodeId> {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1]"
    );
    let count = ((netlist.gate_count() as f64) * fraction).round().max(1.0) as usize;
    select_gates_count(netlist, count, seed)
}

/// Selects exactly `count` gates (clamped to the gate count).
pub fn select_gates_count(netlist: &Netlist, count: usize, seed: u64) -> Vec<NodeId> {
    let mut gates = netlist.gate_ids();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCA30_5E1E);
    gates.shuffle(&mut rng);
    gates.truncate(count.min(gates.len()));
    gates.sort_unstable();
    gates
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_logic::{GeneratorConfig, NetlistGenerator};

    fn sample() -> Netlist {
        NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 100).with_seed(3))
            .unwrap()
            .generate()
    }

    #[test]
    fn selection_is_memorized() {
        let nl = sample();
        assert_eq!(select_gates(&nl, 0.2, 9), select_gates(&nl, 0.2, 9));
        assert_ne!(select_gates(&nl, 0.2, 9), select_gates(&nl, 0.2, 10));
    }

    #[test]
    fn fraction_scales_count() {
        let nl = sample();
        assert_eq!(select_gates(&nl, 0.1, 1).len(), 10);
        assert_eq!(select_gates(&nl, 0.5, 1).len(), 50);
        assert_eq!(select_gates(&nl, 1.0, 1).len(), 100);
    }

    #[test]
    fn selection_contains_only_gates() {
        let nl = sample();
        let picks = select_gates(&nl, 0.3, 4);
        for id in picks {
            assert!(nl.node(id).kind.is_gate());
        }
    }

    #[test]
    fn count_is_clamped() {
        let nl = sample();
        assert_eq!(select_gates_count(&nl, 10_000, 1).len(), 100);
    }

    #[test]
    fn selection_is_sorted_and_distinct() {
        let nl = sample();
        let picks = select_gates(&nl, 0.4, 2);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(picks, sorted);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_rejected() {
        let nl = sample();
        let _ = select_gates(&nl, 0.0, 1);
    }
}
