//! Campaign jobs: one protect→attack→measure experiment (or one device
//! measurement) per job.
//!
//! A job is a plain `Send` value describing *what* to run; *where* and
//! *when* it runs is the pool's business. Every random choice a job makes
//! comes from seeds **stored in the job spec** — gate selection, transform,
//! and oracle seeds for attack jobs, a Monte Carlo seed for device jobs —
//! never from thread ids or submission order, so a campaign's results are
//! a pure function of its spec at any thread count. The default expansion
//! ([`crate::CampaignSpec::expand`]) derives those seeds from the campaign
//! master seed plus the job's identity; the paper-table harnesses instead
//! install the exact historical derivations (e.g. Table IV shares one gate
//! selection per benchmark × level across all schemes — the paper's
//! fairness protocol).

use crate::cache::{CachedOracle, OracleCache};
use gshe_attacks::{
    cone_inputs, verify_key_scoped, AttackConfig, AttackKind, AttackRunner, AttackStatus, CoiMode,
    OracleStack, SimplifyMode,
};
use gshe_camo::{camouflage, select_gates, CamoScheme, KeyedNetlist};
use gshe_device::{MonteCarlo, MonteCarloConfig, SwitchParams};
use gshe_logic::{ErrorProfile, Netlist, NodeId, Topology};
use gshe_sat::SolverStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// SplitMix64 finalizer: the one-way mixer used for seed derivation and
/// cache sharding.
pub fn hash_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stable 64-bit hash of a string (FNV-1a folded through SplitMix64).
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    hash_mix(h)
}

/// The campaign grid's gate-selection seed for one (campaign seed,
/// benchmark, level) cell — shared across schemes and attacks (the
/// paper's fairness protocol). The profile search derives its instance
/// through this same function, so a search and a campaign at the same
/// seed defend/attack exactly the same keyed netlist.
pub fn select_seed(seed: u64, benchmark: &str, level: f64) -> u64 {
    hash_mix(seed ^ hash_str(benchmark) ^ (level * 1e4) as u64)
}

/// The camouflage-transform seed for a scheme, derived from
/// [`select_seed`]'s value.
pub fn transform_seed(select: u64, scheme: CamoScheme) -> u64 {
    hash_mix(select ^ hash_str(crate::spec::scheme_name(scheme)))
}

/// Seed salt folded into the oracle seed for the rotation-period
/// dimension: zero for the historical static oracle (period 0), so specs
/// that don't sweep periods derive exactly the seeds they always did; a
/// period-distinct mix otherwise. Salts for independent dimensions
/// compose by XOR (`rotation_salt ^ profile.seed_salt() ^ clock_salt`),
/// so every combination draws a distinct stream while any dimension at
/// its historical default contributes nothing.
pub fn rotation_salt(period: u64) -> u64 {
    if period == 0 {
        0
    } else {
        hash_mix(period ^ 0xD07A_7E5A_17ED)
    }
}

/// Seed salt folded into the oracle seed for the physical clock-period
/// dimension: zero for abstract-rate cells (`clock_ns == 0`, the
/// historical derivation), a period-distinct mix otherwise — two
/// operating points that happen to derive near-identical rates still
/// draw distinct noise streams.
pub fn clock_salt(clock_ns: f64) -> u64 {
    if clock_ns == 0.0 {
        0
    } else {
        hash_mix(clock_ns.to_bits() ^ 0xC10C_55A1)
    }
}

/// The *shape* of an oracle error profile: how a single error-rate number
/// spreads over the cloaked cells of a keyed netlist. Campaigns sweep
/// shapes the same way they sweep rates, so heterogeneous noise placements
/// (the paper's "tuned individually" knob) become one more grid dimension.
///
/// Shapes are materialized per job by [`noise_profile`]; profile identity
/// is folded into job seeds and report rows ([`NoiseShape::Uniform`] is
/// the historical default and folds to a no-op, keeping pre-existing
/// campaign outputs byte-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseShape {
    /// Every cloaked cell flips at the cell error rate.
    Uniform,
    /// Only cloaked cells inside the fanin cone of the logically deepest
    /// primary output are noisy — noise concentrated where one output
    /// cone superposes it. If that cone contains *no* cloaked cell the
    /// shape falls back to [`NoiseShape::Uniform`] rather than silently
    /// running a noise-free "stochastic" job.
    OutputCone,
    /// Each cloaked cell's rate scales with its logic depth
    /// (`rate × level / depth`): cells near the outputs flip more, where
    /// logical masking is weakest.
    DepthGradient,
}

impl NoiseShape {
    /// All shapes, uniform first.
    pub const ALL: [NoiseShape; 3] = [
        NoiseShape::Uniform,
        NoiseShape::OutputCone,
        NoiseShape::DepthGradient,
    ];

    /// Short machine-friendly name (spec files, CSV, report rows).
    pub fn name(self) -> &'static str {
        match self {
            NoiseShape::Uniform => "uniform",
            NoiseShape::OutputCone => "output-cone",
            NoiseShape::DepthGradient => "depth-gradient",
        }
    }

    /// Parses [`NoiseShape::name`] back into a shape.
    pub fn parse(name: &str) -> Option<NoiseShape> {
        NoiseShape::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Seed salt folded into the oracle seed: zero for the historical
    /// uniform shape (seed derivation unchanged), the name hash otherwise.
    pub fn seed_salt(self) -> u64 {
        match self {
            NoiseShape::Uniform => 0,
            other => hash_str(other.name()),
        }
    }
}

impl std::fmt::Display for NoiseShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Materializes a [`NoiseShape`] over a keyed netlist into the dense
/// [`ErrorProfile`] its stochastic oracle runs with.
pub fn noise_profile(keyed: &KeyedNetlist, shape: NoiseShape, rate: f64) -> ErrorProfile {
    let nl = keyed.netlist();
    let cloaked: Vec<NodeId> = keyed.camo_gates().iter().map(|g| g.node).collect();
    match shape {
        NoiseShape::Uniform => ErrorProfile::uniform_at(nl.len(), &cloaked, rate),
        NoiseShape::OutputCone => {
            let levels = nl.levels();
            let deepest = nl
                .outputs()
                .iter()
                .copied()
                .max_by_key(|o| levels[o.index()]);
            let mut rates = vec![0.0; nl.len()];
            if let Some(root) = deepest {
                let mut in_cone = vec![false; nl.len()];
                for id in nl.fanin_cone(root) {
                    in_cone[id.index()] = true;
                }
                for node in cloaked.iter().filter(|n| in_cone[n.index()]) {
                    rates[node.index()] = rate;
                }
            }
            if rate > 0.0 && rates.iter().all(|&r| r == 0.0) {
                // No cloaked cell in the cone: a quiet profile would
                // report a deterministic chip as a "defeated" stochastic
                // defense. Fall back to the uniform placement instead.
                return noise_profile(keyed, NoiseShape::Uniform, rate);
            }
            ErrorProfile::from_rates(rates)
        }
        NoiseShape::DepthGradient => {
            let levels = nl.levels();
            let depth = nl.depth().max(1) as f64;
            let mut rates = vec![0.0; nl.len()];
            for node in &cloaked {
                // Dangling gates can sit deeper than every primary output,
                // so level/depth may exceed 1 — `rate` stays the ceiling.
                rates[node.index()] = (rate * levels[node.index()] as f64 / depth).min(rate);
            }
            ErrorProfile::from_rates(rates)
        }
    }
}

/// The seeds an attack job draws from, fixed at expansion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackSeeds {
    /// Seed for the protected-gate selection.
    pub select: u64,
    /// Seed for the camouflaging transform's candidate shuffling.
    pub transform: u64,
    /// Seed for the stochastic oracle (and AppSAT's random queries).
    pub oracle: u64,
}

/// What a single job computes.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Camouflage a benchmark, attack it through an oracle, verify the
    /// recovered key.
    Attack {
        /// Benchmark name (resolvable via `gshe_logic::suites::spec`, or
        /// a `.aag` file path loaded through the AIGER frontend).
        benchmark: String,
        /// Topology profile the benchmark was generated with (file-backed
        /// benchmarks carry [`Topology::Uniform`] — the field is identity
        /// metadata for reports and the materialization memo).
        topology: Topology,
        /// Camouflaging scheme under attack.
        scheme: CamoScheme,
        /// Fraction of gates protected.
        level: f64,
        /// Attack algorithm.
        attack: AttackKind,
        /// Per-cell oracle error rate (0.0 = perfect deterministic chip).
        error_rate: f64,
        /// Physical clock period, ns, the error rate was derived from via
        /// the device Monte Carlo (`0.0` = abstract spec-level rate — the
        /// historical cells).
        clock_ns: f64,
        /// How the error rate spreads over the cloaked cells.
        profile: NoiseShape,
        /// Dynamic-camouflaging rotation period: `0` = no rotation layer,
        /// `n` = the chip draws a fresh random key every `n` queries.
        rotation_period: u64,
        /// Trial index (campaigns repeat stochastic cells).
        trial: u64,
        /// The job's RNG seeds.
        seeds: AttackSeeds,
    },
    /// Monte Carlo mean switching delay at a spin current (Table II's
    /// measured row).
    DeviceDelay {
        /// Spin current, A.
        i_s: f64,
        /// Monte Carlo sample count.
        samples: usize,
        /// Monte Carlo master seed.
        seed: u64,
    },
    /// Monte Carlo per-device error rate for a clock period (the Sec. V-B
    /// error-rate knob).
    DeviceErrorRate {
        /// Spin current, A.
        i_s: f64,
        /// Clock period, s.
        t_clk: f64,
        /// Monte Carlo sample count.
        samples: usize,
        /// Monte Carlo master seed.
        seed: u64,
    },
}

/// One schedulable unit of campaign work.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// What to compute.
    pub kind: JobKind,
    /// Wall-clock budget for the job's attack phase.
    pub timeout: Duration,
}

/// How a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job's attack (or measurement) ran to completion.
    Completed,
    /// The attack hit its wall-clock budget; partial metrics recorded.
    TimedOut,
    /// The attack's solver budget was exhausted.
    Exhausted,
    /// The attack's constraints became contradictory (stochastic oracle).
    Inconsistent,
    /// The job could not even be set up (unknown benchmark, transform
    /// error); the message explains.
    Failed,
}

impl JobStatus {
    /// Short machine-friendly name for serialization.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::TimedOut => "timed-out",
            JobStatus::Exhausted => "exhausted",
            JobStatus::Inconsistent => "inconsistent",
            JobStatus::Failed => "failed",
        }
    }
}

/// The measured outcome of one job. Everything except `elapsed` is a
/// deterministic function of the job spec.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The spec this result answers.
    pub spec: JobSpec,
    /// Terminal status.
    pub status: JobStatus,
    /// The attack recovered a functionally-correct key.
    pub key_recovered: bool,
    /// Oracle queries issued by the attack.
    pub queries: u64,
    /// DIP iterations performed by the attack.
    pub iterations: u64,
    /// Sampled output error rate of the recovered key's netlist vs. the
    /// original (0.0 when exactly equivalent; NaN when no key).
    pub output_error_rate: f64,
    /// Scalar measurement for device jobs (mean delay in seconds, or
    /// error rate), NaN for attack jobs.
    pub measurement: f64,
    /// Wall-clock runtime of the job (excluded from deterministic
    /// serializations).
    pub elapsed: Duration,
    /// Cumulative CDCL solver statistics (decisions, propagations,
    /// conflicts, …) of the attack's solver; zeroed for device jobs.
    /// Reported only on the timing side of serializations — the counts
    /// are deterministic per job, but they are diagnostics, and keeping
    /// them out of the pinned deterministic JSON leaves the solver free
    /// to evolve without golden-file churn.
    pub solver_stats: SolverStats,
    /// Failure detail for [`JobStatus::Failed`].
    pub error: Option<String>,
}

/// Identity of one scheme materialization: the source netlist (held by
/// `Arc`, compared by allocation identity — retaining the `Arc` pins the
/// address, so a dropped-and-reallocated netlist can never alias a memo
/// entry), protection level, scheme, and the two seeds that fully
/// determine gate selection and transform shuffling.
struct KeyedKey {
    netlist: Arc<Netlist>,
    level_bits: u64,
    scheme: CamoScheme,
    select: u64,
    transform: u64,
}

impl KeyedKey {
    fn matches(
        &self,
        nl: &Arc<Netlist>,
        level: f64,
        scheme: CamoScheme,
        seeds: &AttackSeeds,
    ) -> bool {
        Arc::ptr_eq(&self.netlist, nl)
            && self.level_bits == level.to_bits()
            && self.scheme == scheme
            && self.select == seeds.select
            && self.transform == seeds.transform
    }
}

/// Memoized scheme materializations (`select_gates` + `camouflage`),
/// shared by every job of an [`crate::EvalSession`]. Camouflaging a
/// benchmark is deterministic in its seeds, so trials of one cell — and
/// every search candidate scored against one keyed netlist — can share a
/// single materialization instead of re-transforming per job.
#[derive(Default)]
pub struct KeyedMemo {
    entries: Mutex<Vec<(KeyedKey, Arc<KeyedNetlist>)>>,
}

impl std::fmt::Debug for KeyedMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedMemo")
            .field("len", &self.len())
            .finish()
    }
}

impl KeyedMemo {
    /// Returns the keyed netlist for `(nl, level, scheme, seeds)`,
    /// materializing and memoizing it on first use. Materialization runs
    /// outside the memo lock (concurrent duplicate work is harmless —
    /// first insert wins); errors are never memoized.
    pub fn get_or_materialize(
        &self,
        nl: &Arc<Netlist>,
        level: f64,
        scheme: CamoScheme,
        seeds: &AttackSeeds,
    ) -> Result<Arc<KeyedNetlist>, String> {
        if let Some((_, keyed)) = self
            .entries
            .lock()
            .unwrap()
            .iter()
            .find(|(k, _)| k.matches(nl, level, scheme, seeds))
        {
            return Ok(Arc::clone(keyed));
        }
        let picks = select_gates(nl, level, seeds.select);
        let mut rng = StdRng::seed_from_u64(seeds.transform);
        let keyed = camouflage(nl, &picks, scheme, &mut rng)
            .map_err(|e| format!("camouflage failed: {e}"))?;
        let keyed = Arc::new(keyed);
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, existing)) = entries
            .iter()
            .find(|(k, _)| k.matches(nl, level, scheme, seeds))
        {
            return Ok(Arc::clone(existing));
        }
        entries.push((
            KeyedKey {
                netlist: Arc::clone(nl),
                level_bits: level.to_bits(),
                scheme,
                select: seeds.select,
                transform: seeds.transform,
            },
            Arc::clone(&keyed),
        ));
        Ok(keyed)
    }

    /// Materializations currently memoized.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Total [`gshe_logic::Netlist::arena_bytes`] of the keyed netlists
    /// currently memoized — the memo's dominant memory cost.
    pub fn arena_bytes(&self) -> usize {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .map(|(_, keyed)| keyed.netlist().arena_bytes())
            .sum()
    }

    /// Evicts every materialization derived from `nl` (matched by `Arc`
    /// allocation identity, like the memo's own lookups). Returns how
    /// many entries were dropped. The streaming scheduler calls this when
    /// a benchmark's chunk retires.
    pub fn evict_for(&self, nl: &Arc<Netlist>) -> usize {
        let mut entries = self.entries.lock().unwrap();
        let before = entries.len();
        entries.retain(|(k, _)| !Arc::ptr_eq(&k.netlist, nl));
        before - entries.len()
    }

    /// `true` when nothing has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Immutable context shared by every job in a campaign run.
pub struct JobContext {
    /// Pre-built original netlists, keyed by benchmark name, in spec
    /// order.
    pub netlists: Vec<(String, Arc<Netlist>)>,
    /// Campaign-wide oracle-response cache.
    pub cache: Arc<OracleCache>,
    /// Device parameters for device jobs.
    pub params: SwitchParams,
    /// Session-wide memo of scheme materializations.
    pub keyed: Arc<KeyedMemo>,
    /// Cone-of-influence policy shared by every attack job — the same
    /// mode gates the attack engine's COI projection and the campaign
    /// cache's cone-keyed entries, so the two can never disagree about
    /// whether a design's oracle answers are a function of its cone
    /// inputs alone.
    pub coi_mode: CoiMode,
    /// SAT simplification policy shared by every attack job's
    /// incremental solver (preprocessing, inprocessing, and the
    /// Plaisted–Greenbaum encoding gate).
    pub sat_simplify: SimplifyMode,
}

impl JobContext {
    fn netlist(&self, name: &str) -> Option<&Arc<Netlist>> {
        self.netlists
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nl)| nl)
    }
}

/// Executes one job to completion (respecting its budget) and returns the
/// result. Never panics on attack-level failure; structural problems are
/// reported as [`JobStatus::Failed`].
pub fn run_job(spec: &JobSpec, ctx: &JobContext) -> JobResult {
    let start = Instant::now();
    let mut result = JobResult {
        spec: spec.clone(),
        status: JobStatus::Failed,
        key_recovered: false,
        queries: 0,
        iterations: 0,
        output_error_rate: f64::NAN,
        measurement: f64::NAN,
        elapsed: Duration::ZERO,
        solver_stats: SolverStats::default(),
        error: None,
    };
    match &spec.kind {
        JobKind::Attack {
            benchmark,
            topology: _,
            scheme,
            level,
            attack,
            error_rate,
            clock_ns: _,
            profile,
            rotation_period,
            trial: _,
            seeds,
        } => {
            let Some(nl) = ctx.netlist(benchmark) else {
                result.error = Some(format!("unknown benchmark `{benchmark}`"));
                result.elapsed = start.elapsed();
                return result;
            };
            let _job_span = gshe_obs::span("job.attack");
            let keyed = {
                let _span = gshe_obs::span("job.materialize");
                match ctx.keyed.get_or_materialize(nl, *level, *scheme, seeds) {
                    Ok(k) => k,
                    Err(e) => {
                        result.error = Some(e);
                        result.elapsed = start.elapsed();
                        return result;
                    }
                }
            };
            let runner = AttackRunner::with_config(
                *attack,
                AttackConfig {
                    timeout: spec.timeout,
                    ..Default::default()
                }
                .with_coi_mode(ctx.coi_mode)
                .with_simplify_mode(ctx.sat_simplify),
                seeds.oracle,
            );
            // Build the oracle stack bottom-up from the cell's defense
            // dimensions: a noisy base when the cell carries an error
            // rate, a rotation layer when it carries a period — any
            // combination is one bit-parallel stack — and the campaign
            // cache only over the bare exact stack (noisy answers are
            // samples and rotating answers a per-chip key stream, so
            // neither is memoizable).
            let noise = (*error_rate > 0.0).then(|| noise_profile(&keyed, *profile, *error_rate));
            let out = match (*rotation_period, noise) {
                (0, None) => {
                    // When the job's COI mode engages on this design, the
                    // oracle answers are a pure function of the cone
                    // inputs (the engine zero-fills the rest), so the
                    // cache can key entries on the packed cone
                    // sub-pattern instead of the full input width —
                    // superblue-wide blocks shrink to cone-width keys and
                    // hit across jobs whose non-cone lanes differ.
                    let mut oracle = match cone_inputs(&keyed, ctx.coi_mode) {
                        Some(cone) => CachedOracle::over_cone(nl, Arc::clone(&ctx.cache), cone),
                        None => CachedOracle::over(nl, Arc::clone(&ctx.cache)),
                    };
                    runner.run(&keyed, &mut oracle)
                }
                (0, Some(noise)) => {
                    let mut oracle = OracleStack::noisy(&keyed, noise, seeds.oracle);
                    runner.run(&keyed, &mut oracle)
                }
                (period, None) => {
                    let mut oracle = OracleStack::rotating(&keyed, period, seeds.oracle);
                    runner.run(&keyed, &mut oracle)
                }
                (period, Some(noise)) => {
                    // The combined defense cell: rotation over noise.
                    let mut oracle =
                        OracleStack::rotating_noisy(&keyed, noise, period, seeds.oracle);
                    runner.run(&keyed, &mut oracle)
                }
            };
            result.status = match out.status {
                AttackStatus::Success => JobStatus::Completed,
                AttackStatus::Timeout => JobStatus::TimedOut,
                AttackStatus::ResourceExhausted => JobStatus::Exhausted,
                AttackStatus::Inconsistent => JobStatus::Inconsistent,
            };
            result.queries = out.queries;
            result.iterations = out.iterations;
            result.solver_stats = out.solver_stats;
            if let Some(key) = &out.key {
                // Scoped to the cloaked cells' affected-output cones
                // when the job's COI mode engages — at superblue scale
                // the full-interface UNSAT proof would dwarf the
                // cone-projected attack it is checking.
                match verify_key_scoped(nl, &keyed, key, ctx.coi_mode) {
                    Ok(v) => {
                        result.key_recovered = v.functionally_equivalent;
                        result.output_error_rate = v.sampled_error_rate;
                    }
                    Err(e) => {
                        result.status = JobStatus::Failed;
                        result.error = Some(format!("verification failed: {e}"));
                    }
                }
            }
        }
        JobKind::DeviceDelay { i_s, samples, seed } => {
            match run_mc_budgeted(ctx, *i_s, *samples, *seed, start + spec.timeout) {
                Some(runs) => {
                    result.measurement = gshe_device::mean_switched_delay(&runs);
                    result.status = JobStatus::Completed;
                }
                None => result.status = JobStatus::TimedOut,
            }
        }
        JobKind::DeviceErrorRate {
            i_s,
            t_clk,
            samples,
            seed,
        } => {
            match run_mc_budgeted(ctx, *i_s, *samples, *seed, start + spec.timeout) {
                Some(runs) => {
                    // 1 − switching probability, over the same sample set a
                    // standalone `MonteCarlo::switching_probability` draws.
                    let hits = runs
                        .iter()
                        .filter(|s| s.switched && s.delay <= *t_clk)
                        .count();
                    result.measurement = 1.0 - hits as f64 / runs.len().max(1) as f64;
                    result.status = JobStatus::Completed;
                }
                None => result.status = JobStatus::TimedOut,
            }
        }
    }
    result.elapsed = start.elapsed();
    result
}

/// Samples per deadline check in budgeted Monte Carlo jobs.
const MC_BUDGET_CHUNK: usize = 128;

/// Runs a Monte Carlo sweep on the worker thread in chunks, checking the
/// wall-clock `deadline` between chunks. Returns `None` when the budget
/// runs out. The per-sample seeding makes the chunked result identical to
/// a standalone full run at any thread count.
fn run_mc_budgeted(
    ctx: &JobContext,
    i_s: f64,
    samples: usize,
    seed: u64,
    deadline: Instant,
) -> Option<Vec<gshe_device::DelaySample>> {
    let mc = MonteCarlo::new(MonteCarloConfig {
        params: ctx.params,
        samples,
        seed,
        threads: 1,
    });
    let mut runs = Vec::with_capacity(samples);
    let mut done = 0;
    while done < samples {
        if Instant::now() >= deadline {
            return None;
        }
        let count = MC_BUDGET_CHUNK.min(samples - done);
        runs.extend(mc.run_range(i_s, done, count));
        done += count;
    }
    Some(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attack_kind(trial: u64) -> JobKind {
        JobKind::Attack {
            benchmark: "ex1010".into(),
            topology: Topology::Uniform,
            scheme: CamoScheme::InvBuf,
            level: 0.2,
            attack: AttackKind::Sat,
            error_rate: 0.0,
            clock_ns: 0.0,
            profile: NoiseShape::Uniform,
            rotation_period: 0,
            trial,
            seeds: AttackSeeds {
                select: 1,
                transform: 2,
                oracle: 3,
            },
        }
    }

    fn tiny_keyed() -> KeyedNetlist {
        use gshe_logic::bench_format::{parse_bench, C17_BENCH};
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(0);
        gshe_camo::camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap()
    }

    #[test]
    fn shape_names_round_trip_and_uniform_salt_is_zero() {
        for shape in NoiseShape::ALL {
            assert_eq!(NoiseShape::parse(shape.name()), Some(shape));
        }
        assert_eq!(NoiseShape::parse("nope"), None);
        assert_eq!(NoiseShape::Uniform.seed_salt(), 0);
        assert_ne!(
            NoiseShape::OutputCone.seed_salt(),
            NoiseShape::DepthGradient.seed_salt()
        );
    }

    #[test]
    fn noise_profiles_materialize_per_shape() {
        let keyed = tiny_keyed();
        let nl = keyed.netlist();
        let cloaked: Vec<_> = keyed.camo_gates().iter().map(|g| g.node).collect();

        let uniform = noise_profile(&keyed, NoiseShape::Uniform, 0.1);
        assert_eq!(uniform.noisy_count(), cloaked.len());
        assert!(cloaked.iter().all(|&n| uniform.rate(n) == 0.1));

        let cone = noise_profile(&keyed, NoiseShape::OutputCone, 0.1);
        assert!(cone.noisy_count() <= uniform.noisy_count());
        assert!(cone.noisy_count() > 0, "c17 cones contain cloaked cells");
        for node in cone.noisy_nodes() {
            assert!(cloaked.contains(&node));
            assert_eq!(cone.rate(node), 0.1);
        }

        let gradient = noise_profile(&keyed, NoiseShape::DepthGradient, 0.1);
        let levels = nl.levels();
        let depth = nl.depth() as f64;
        for &node in &cloaked {
            let expected = 0.1 * levels[node.index()] as f64 / depth;
            assert!((gradient.rate(node) - expected).abs() < 1e-12);
        }
        // The three shapes have distinct identities at the same rate.
        assert_ne!(uniform.fingerprint(), cone.fingerprint());
        assert_ne!(uniform.fingerprint(), gradient.fingerprint());
    }

    #[test]
    fn output_cone_falls_back_to_uniform_when_cone_is_quiet() {
        // The cloaked cell feeds only the *shallow* output; the deepest
        // output's cone contains no cloaked cell. A quiet profile would
        // masquerade as a stochastic defense, so the shape must fall back
        // to uniform placement.
        use gshe_camo::{CamoGate, Candidates};
        use gshe_logic::{Bf1, Bf2, NetlistBuilder};
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate2("g", Bf2::AND, a, c); // cloaked, shallow cone
        let d1 = b.gate2("d1", Bf2::OR, a, c);
        let d2 = b.gate1("d2", Bf1::Inv, d1);
        let d3 = b.gate1("d3", Bf1::Inv, d2); // deepest output's cone
        b.output(g);
        b.output(d3);
        let nl = b.finish().unwrap();
        let gate = CamoGate {
            node: g,
            candidates: Candidates::TwoInput(Bf2::ALL.to_vec()),
            key_offset: 0,
            correct_index: Bf2::AND.truth_table() as usize,
        };
        let keyed = KeyedNetlist::new(nl, vec![gate], 4);

        let cone = noise_profile(&keyed, NoiseShape::OutputCone, 0.25);
        assert_eq!(
            cone,
            noise_profile(&keyed, NoiseShape::Uniform, 0.25),
            "quiet cone must fall back to uniform"
        );
        assert_eq!(cone.noisy_nodes().collect::<Vec<_>>(), vec![g]);
    }

    #[test]
    fn hashes_are_stable_and_spread() {
        assert_eq!(hash_str("c7552"), hash_str("c7552"));
        assert_ne!(hash_str("c7552"), hash_str("c7553"));
        assert_ne!(hash_mix(0), hash_mix(1));
    }

    #[test]
    fn unknown_benchmark_fails_cleanly() {
        let spec = JobSpec {
            kind: attack_kind(0),
            timeout: Duration::from_secs(1),
        };
        let ctx = JobContext {
            netlists: Vec::new(),
            cache: OracleCache::shared(),
            params: SwitchParams::table_i(),
            keyed: Arc::new(KeyedMemo::default()),
            coi_mode: CoiMode::Auto,
            sat_simplify: SimplifyMode::Auto,
        };
        let out = run_job(&spec, &ctx);
        assert_eq!(out.status, JobStatus::Failed);
        assert!(out
            .error
            .as_deref()
            .unwrap_or("")
            .contains("unknown benchmark"));
    }

    #[test]
    fn device_jobs_respect_their_budget() {
        let spec = JobSpec {
            kind: JobKind::DeviceDelay {
                i_s: 60e-6,
                samples: 1_000_000,
                seed: 3,
            },
            timeout: Duration::from_millis(0),
        };
        let ctx = JobContext {
            netlists: Vec::new(),
            cache: OracleCache::shared(),
            params: SwitchParams::table_i(),
            keyed: Arc::new(KeyedMemo::default()),
            coi_mode: CoiMode::Auto,
            sat_simplify: SimplifyMode::Auto,
        };
        let out = run_job(&spec, &ctx);
        assert_eq!(out.status, JobStatus::TimedOut);
        assert!(out.measurement.is_nan());
    }

    #[test]
    fn device_delay_job_measures() {
        let spec = JobSpec {
            kind: JobKind::DeviceDelay {
                i_s: 60e-6,
                samples: 24,
                seed: 3,
            },
            timeout: Duration::from_secs(10),
        };
        let ctx = JobContext {
            netlists: Vec::new(),
            cache: OracleCache::shared(),
            params: SwitchParams::table_i(),
            keyed: Arc::new(KeyedMemo::default()),
            coi_mode: CoiMode::Auto,
            sat_simplify: SimplifyMode::Auto,
        };
        let out = run_job(&spec, &ctx);
        assert_eq!(out.status, JobStatus::Completed);
        assert!(
            out.measurement > 0.0 && out.measurement < 10e-9,
            "{}",
            out.measurement
        );
    }
}
