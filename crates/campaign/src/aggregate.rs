//! Reduction of raw job results into the paper's table rows.
//!
//! One [`TableRow`] summarizes every trial of one grid cell — (benchmark,
//! scheme, level, attack, error rate) — with the metrics the paper reports:
//! key-recovery rate (Tables IV–V), oracle query counts (the Double DIP
//! study), output error rate (Sec. V-B), and runtime percentiles (the
//! t-o columns). Rows appear in first-seen result order, which is
//! submission order, so aggregation is deterministic.

use crate::job::{JobKind, JobResult, JobStatus, NoiseShape};
use crate::spec::scheme_name;
use gshe_attacks::AttackKind;
use gshe_camo::CamoScheme;
use gshe_logic::Topology;

/// Identity of one attack-grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellKey {
    /// Benchmark name.
    pub benchmark: String,
    /// Netlist topology profile the benchmark was generated with
    /// ([`Topology::Uniform`] is the historical generator).
    pub topology: Topology,
    /// Camouflaging scheme.
    pub scheme: CamoScheme,
    /// Protection level (fraction).
    pub level: f64,
    /// Attack algorithm.
    pub attack: AttackKind,
    /// Oracle per-cell error rate.
    pub error_rate: f64,
    /// Physical clock period, ns, the rate was derived from (0 =
    /// abstract spec-level rate).
    pub clock_ns: f64,
    /// Error-profile shape the rate was applied with.
    pub profile: NoiseShape,
    /// Dynamic-camouflaging rotation period (0 = static oracle).
    pub rotation_period: u64,
}

/// Aggregated metrics for one attack-grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Which cell this row summarizes.
    pub key: CellKey,
    /// Trials aggregated.
    pub trials: u64,
    /// Trials per terminal status, in [`JobStatus`] declaration order:
    /// completed, timed-out, exhausted, inconsistent, failed.
    pub status_counts: [u64; 5],
    /// Fraction of trials whose recovered key was functionally correct.
    pub key_recovery_rate: f64,
    /// Mean oracle queries per trial.
    pub mean_queries: f64,
    /// Mean DIP iterations per trial.
    pub mean_iterations: f64,
    /// Mean sampled output error rate over trials that produced a key
    /// (NaN when none did).
    pub mean_output_error: f64,
    /// Median job runtime, seconds (wall clock — not deterministic).
    pub runtime_p50: f64,
    /// 90th-percentile job runtime, seconds.
    pub runtime_p90: f64,
    /// Maximum job runtime, seconds.
    pub runtime_max: f64,
    /// Mean CDCL decisions per trial (timing-side diagnostic only).
    pub mean_decisions: f64,
    /// Mean CDCL propagations per trial (timing-side diagnostic only).
    pub mean_propagations: f64,
    /// Mean CDCL conflicts per trial (timing-side diagnostic only).
    pub mean_conflicts: f64,
    /// Mean CDCL restarts per trial (timing-side diagnostic only).
    pub mean_restarts: f64,
    /// Mean learnt clauses deleted by DB reduction per trial (timing-side
    /// diagnostic only).
    pub mean_learnts_deleted: f64,
    /// Mean variables removed by bounded variable elimination per trial
    /// (timing-side diagnostic only).
    pub mean_elim_vars: f64,
    /// Mean clauses removed by backward subsumption per trial
    /// (timing-side diagnostic only).
    pub mean_subsumed: f64,
    /// Mean literals removed by strengthening/vivification per trial
    /// (timing-side diagnostic only).
    pub mean_strengthened: f64,
    /// Mean milliseconds spent simplifying (preprocess + vivify) per
    /// trial (timing-side diagnostic only).
    pub mean_simplify_ms: f64,
}

/// One device-measurement result, passed through (device jobs have no
/// trial grid to reduce over).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRow {
    /// `"delay"` or `"error-rate"`.
    pub kind: &'static str,
    /// Spin current, A.
    pub i_s: f64,
    /// Clock period for error-rate rows, s (NaN for delay rows).
    pub t_clk: f64,
    /// Monte Carlo samples.
    pub samples: usize,
    /// The measurement (seconds or rate).
    pub value: f64,
}

fn status_index(status: JobStatus) -> usize {
    match status {
        JobStatus::Completed => 0,
        JobStatus::TimedOut => 1,
        JobStatus::Exhausted => 2,
        JobStatus::Inconsistent => 3,
        JobStatus::Failed => 4,
    }
}

/// Index of the percentile `q` in a sorted sample of `n` (nearest-rank).
fn rank(q: f64, n: usize) -> usize {
    (((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)
}

/// Reduces raw results into attack table rows and device rows.
pub fn aggregate(results: &[JobResult]) -> (Vec<TableRow>, Vec<DeviceRow>) {
    let mut rows: Vec<(CellKey, Vec<&JobResult>)> = Vec::new();
    let mut device = Vec::new();
    for result in results {
        match &result.spec.kind {
            JobKind::Attack {
                benchmark,
                topology,
                scheme,
                level,
                attack,
                error_rate,
                clock_ns,
                profile,
                rotation_period,
                ..
            } => {
                let key = CellKey {
                    benchmark: benchmark.clone(),
                    topology: *topology,
                    scheme: *scheme,
                    level: *level,
                    attack: *attack,
                    error_rate: *error_rate,
                    clock_ns: *clock_ns,
                    profile: *profile,
                    rotation_period: *rotation_period,
                };
                match rows.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, bucket)) => bucket.push(result),
                    None => rows.push((key, vec![result])),
                }
            }
            JobKind::DeviceDelay { i_s, samples, .. } => device.push(DeviceRow {
                kind: "delay",
                i_s: *i_s,
                t_clk: f64::NAN,
                samples: *samples,
                value: result.measurement,
            }),
            JobKind::DeviceErrorRate {
                i_s,
                t_clk,
                samples,
                ..
            } => device.push(DeviceRow {
                kind: "error-rate",
                i_s: *i_s,
                t_clk: *t_clk,
                samples: *samples,
                value: result.measurement,
            }),
        }
    }

    let table = rows
        .into_iter()
        .map(|(key, bucket)| {
            let n = bucket.len() as u64;
            let mut status_counts = [0u64; 5];
            for r in &bucket {
                status_counts[status_index(r.status)] += 1;
            }
            let recovered = bucket.iter().filter(|r| r.key_recovered).count();
            let with_key: Vec<f64> = bucket
                .iter()
                .filter(|r| !r.output_error_rate.is_nan())
                .map(|r| r.output_error_rate)
                .collect();
            let mut runtimes: Vec<f64> = bucket.iter().map(|r| r.elapsed.as_secs_f64()).collect();
            runtimes.sort_by(f64::total_cmp);
            let m = runtimes.len();
            let mut solver = gshe_sat::SolverStats::default();
            for r in &bucket {
                solver += r.solver_stats;
            }
            TableRow {
                key,
                trials: n,
                status_counts,
                key_recovery_rate: recovered as f64 / n as f64,
                mean_queries: bucket.iter().map(|r| r.queries).sum::<u64>() as f64 / n as f64,
                mean_iterations: bucket.iter().map(|r| r.iterations).sum::<u64>() as f64 / n as f64,
                mean_output_error: if with_key.is_empty() {
                    f64::NAN
                } else {
                    with_key.iter().sum::<f64>() / with_key.len() as f64
                },
                runtime_p50: runtimes[rank(0.5, m)],
                runtime_p90: runtimes[rank(0.9, m)],
                runtime_max: runtimes[m - 1],
                mean_decisions: solver.decisions as f64 / n as f64,
                mean_propagations: solver.propagations as f64 / n as f64,
                mean_conflicts: solver.conflicts as f64 / n as f64,
                mean_restarts: solver.restarts as f64 / n as f64,
                mean_learnts_deleted: solver.deleted as f64 / n as f64,
                mean_elim_vars: solver.elim_vars as f64 / n as f64,
                mean_subsumed: solver.subsumed as f64 / n as f64,
                mean_strengthened: solver.strengthened as f64 / n as f64,
                mean_simplify_ms: solver.simplify_ns as f64 / 1e6 / n as f64,
            }
        })
        .collect();
    (table, device)
}

impl TableRow {
    /// Compact human-readable cell for runtime tables: the p50 runtime, or
    /// the dominant failure marker (`t-o`, `incons`, `fail`).
    pub fn runtime_cell(&self) -> String {
        let [completed, timed_out, exhausted, inconsistent, failed] = self.status_counts;
        let max = *self.status_counts.iter().max().unwrap();
        if completed == max {
            format!("{:.1}", self.runtime_p50)
        } else if timed_out == max {
            "t-o".to_string()
        } else if inconsistent == max {
            "incons".to_string()
        } else {
            let _ = (exhausted, failed);
            "fail".to_string()
        }
    }

    /// Machine-friendly scheme label.
    pub fn scheme_label(&self) -> &'static str {
        scheme_name(self.key.scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AttackSeeds, JobSpec};
    use std::time::Duration;

    fn result(trial: u64, status: JobStatus, queries: u64, secs: f64) -> JobResult {
        JobResult {
            spec: JobSpec {
                kind: JobKind::Attack {
                    benchmark: "c7552".into(),
                    topology: Topology::Uniform,
                    scheme: CamoScheme::GsheAll16,
                    level: 0.2,
                    attack: AttackKind::Sat,
                    error_rate: 0.0,
                    clock_ns: 0.0,
                    profile: NoiseShape::Uniform,
                    rotation_period: 0,
                    trial,
                    seeds: AttackSeeds {
                        select: 0,
                        transform: 0,
                        oracle: 0,
                    },
                },
                timeout: Duration::from_secs(60),
            },
            status,
            key_recovered: status == JobStatus::Completed,
            queries,
            iterations: queries,
            output_error_rate: if status == JobStatus::Completed {
                0.0
            } else {
                f64::NAN
            },
            measurement: f64::NAN,
            elapsed: Duration::from_secs_f64(secs),
            solver_stats: gshe_sat::SolverStats {
                decisions: 10 * queries,
                propagations: 100 * queries,
                conflicts: queries,
                restarts: 2 * queries,
                deleted: 3 * queries,
                elim_vars: 4 * queries,
                subsumed: 5 * queries,
                strengthened: 6 * queries,
                simplify_ns: 1_000_000 * queries,
                ..Default::default()
            },
            error: None,
        }
    }

    #[test]
    fn trials_reduce_into_one_row() {
        let results = vec![
            result(0, JobStatus::Completed, 10, 1.0),
            result(1, JobStatus::Completed, 20, 3.0),
            result(2, JobStatus::TimedOut, 5, 60.0),
        ];
        let (rows, device) = aggregate(&results);
        assert!(device.is_empty());
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.trials, 3);
        assert_eq!(row.status_counts, [2, 1, 0, 0, 0]);
        assert!((row.key_recovery_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((row.mean_queries - 35.0 / 3.0).abs() < 1e-12);
        assert_eq!(row.runtime_p50, 3.0);
        assert_eq!(row.runtime_max, 60.0);
        assert_eq!(row.mean_output_error, 0.0);
        assert!((row.mean_decisions - 350.0 / 3.0).abs() < 1e-12);
        assert!((row.mean_propagations - 3500.0 / 3.0).abs() < 1e-12);
        assert!((row.mean_conflicts - 35.0 / 3.0).abs() < 1e-12);
        assert!((row.mean_restarts - 70.0 / 3.0).abs() < 1e-12);
        assert!((row.mean_learnts_deleted - 105.0 / 3.0).abs() < 1e-12);
        assert!((row.mean_elim_vars - 140.0 / 3.0).abs() < 1e-12);
        assert!((row.mean_subsumed - 175.0 / 3.0).abs() < 1e-12);
        assert!((row.mean_strengthened - 210.0 / 3.0).abs() < 1e-12);
        assert!((row.mean_simplify_ms - 35.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn runtime_cell_prefers_dominant_status() {
        let (rows, _) = aggregate(&[result(0, JobStatus::Completed, 1, 2.5)]);
        assert_eq!(rows[0].runtime_cell(), "2.5");
        let (rows, _) = aggregate(&[
            result(0, JobStatus::TimedOut, 1, 60.0),
            result(1, JobStatus::TimedOut, 1, 60.0),
            result(2, JobStatus::Completed, 1, 2.0),
        ]);
        assert_eq!(rows[0].runtime_cell(), "t-o");
    }

    #[test]
    fn device_rows_pass_through() {
        let mut r = result(0, JobStatus::Completed, 0, 0.1);
        r.spec.kind = JobKind::DeviceDelay {
            i_s: 20e-6,
            samples: 100,
            seed: 1,
        };
        r.measurement = 1.5e-9;
        let (rows, device) = aggregate(&[r]);
        assert!(rows.is_empty());
        assert_eq!(device.len(), 1);
        assert_eq!(device[0].kind, "delay");
        assert_eq!(device[0].value, 1.5e-9);
    }

    #[test]
    fn rank_is_sane() {
        assert_eq!(rank(0.5, 1), 0);
        assert_eq!(rank(0.5, 4), 1);
        assert_eq!(rank(0.9, 10), 8);
        assert_eq!(rank(1.0, 10), 9);
    }
}
