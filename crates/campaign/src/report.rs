//! Campaign reports: aggregation plus JSON/CSV serialization.
//!
//! Serializers are hand-rolled (the environment has no serde); they cover
//! exactly the report shape. Two JSON flavors exist: [`CampaignReport::to_json`]
//! includes wall-clock runtimes, while [`CampaignReport::deterministic_json`]
//! omits every timing field — that form is byte-identical across thread
//! counts and is what the determinism tests compare.

use crate::aggregate::{aggregate, DeviceRow, TableRow};
use crate::job::{JobKind, JobResult, NoiseShape};
use crate::pool::{pool_summary, WorkerStats};
use crate::spec::scheme_name;
use gshe_logic::Topology;
use std::fmt::Write as _;
use std::time::Duration;

/// Everything a campaign run produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name (from the spec).
    pub name: String,
    /// Raw per-job results, in submission order.
    pub results: Vec<JobResult>,
    /// Aggregated attack-grid rows.
    pub rows: Vec<TableRow>,
    /// Device-measurement rows.
    pub device: Vec<DeviceRow>,
    /// Worker threads the run actually used.
    pub threads: usize,
    /// Total wall-clock time of the run.
    pub wall_time: Duration,
    /// Oracle cache hits / misses.
    pub cache_hits: u64,
    /// Oracle cache misses.
    pub cache_misses: u64,
    /// Distinct blocks resident in the oracle cache at the end of the run
    /// (block-level keys: one entry answers up to 64 patterns).
    pub cache_entries: u64,
    /// Cache hits answered from **cone-keyed** entries (COI-engaged jobs
    /// keying on the packed cone sub-pattern). Subset of `cache_hits`;
    /// timing-side diagnostic.
    pub cone_hits: u64,
    /// Cache misses on cone-keyed lookups. Subset of `cache_misses`.
    pub cone_misses: u64,
    /// Widest cone key packed so far, in 64-bit words (0 = no cone-keyed
    /// traffic). Full-width block keys for the same designs would be
    /// `ceil(inputs/64) + 1` words — the gap is the key-compression win.
    pub cone_key_words: u64,
    /// Peak bytes of memoized benchmark-netlist arenas over the run (the
    /// quantity the `memo_budget_mb` admission gate bounds).
    pub peak_memo_bytes: u64,
    /// Per-worker pool activity over this run (indexed by worker id);
    /// empty when the runner didn't capture pool deltas. Wall-clock data,
    /// so it surfaces only on the timing side of serializations.
    pub pool: Vec<WorkerStats>,
}

impl CampaignReport {
    /// Builds a report by aggregating `results`. `cache_stats` is
    /// (hits, misses, entries).
    pub fn new(
        name: String,
        results: Vec<JobResult>,
        threads: usize,
        wall_time: Duration,
        cache_stats: (u64, u64, u64),
    ) -> Self {
        let (rows, device) = aggregate(&results);
        CampaignReport {
            name,
            results,
            rows,
            device,
            threads,
            wall_time,
            cache_hits: cache_stats.0,
            cache_misses: cache_stats.1,
            cache_entries: cache_stats.2,
            cone_hits: 0,
            cone_misses: 0,
            cone_key_words: 0,
            peak_memo_bytes: 0,
            pool: Vec::new(),
        }
    }

    /// Attaches per-worker pool activity deltas captured over this run.
    pub fn with_pool_stats(mut self, pool: Vec<WorkerStats>) -> Self {
        self.pool = pool;
        self
    }

    /// Attaches cone-keyed cache traffic (`cone` = per-run (hits, misses)
    /// delta), the widest cone key seen, and the run's peak memoized
    /// netlist arena bytes. All timing-side diagnostics.
    pub fn with_cache_detail(mut self, cone: (u64, u64), key_words: u64, peak_memo: u64) -> Self {
        self.cone_hits = cone.0;
        self.cone_misses = cone.1;
        self.cone_key_words = key_words;
        self.peak_memo_bytes = peak_memo;
        self
    }

    /// Full JSON, including wall-clock timings and run metadata.
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// JSON with every timing and machine-dependent field omitted: a pure
    /// function of the campaign spec, byte-identical at any thread count.
    pub fn deterministic_json(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, timing: bool) -> String {
        let mut out = String::new();
        out.push('{');
        json_str(&mut out, "campaign", &self.name);
        if timing {
            out.push(',');
            let _ = write!(
                out,
                "\"threads\":{},\"wall_time_secs\":{},\"cache_hits\":{},\"cache_misses\":{},\
                 \"cache_entries\":{},\"cone_hits\":{},\"cone_misses\":{},\"cone_key_words\":{},\
                 \"peak_memo_bytes\":{}",
                self.threads,
                json_f64(self.wall_time.as_secs_f64()),
                self.cache_hits,
                self.cache_misses,
                self.cache_entries,
                self.cone_hits,
                self.cone_misses,
                self.cone_key_words,
                self.peak_memo_bytes
            );
            out.push_str(",\"pool\":{\"workers\":[");
            for (i, w) in self.pool.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"tasks\":{},\"steals\":{},\"busy_ns\":{},\"idle_ns\":{}}}",
                    w.tasks, w.steals, w.busy_ns, w.idle_ns
                );
            }
            let (_, _, utilization) = pool_summary(&self.pool);
            let _ = write!(out, "],\"utilization\":{}}}", json_f64(utilization));
        }
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_str(&mut out, "benchmark", &row.key.benchmark);
            out.push(',');
            json_str(&mut out, "scheme", scheme_name(row.key.scheme));
            out.push(',');
            json_str(&mut out, "attack", row.key.attack.name());
            let _ = write!(
                out,
                ",\"level\":{},\"error_rate\":{},\"trials\":{},\
                 \"completed\":{},\"timed_out\":{},\"exhausted\":{},\
                 \"inconsistent\":{},\"failed\":{},\
                 \"key_recovery_rate\":{},\"mean_queries\":{},\
                 \"mean_iterations\":{},\"mean_output_error\":{}",
                json_f64(row.key.level),
                json_f64(row.key.error_rate),
                row.trials,
                row.status_counts[0],
                row.status_counts[1],
                row.status_counts[2],
                row.status_counts[3],
                row.status_counts[4],
                json_f64(row.key_recovery_rate),
                json_f64(row.mean_queries),
                json_f64(row.mean_iterations),
                json_f64(row.mean_output_error),
            );
            // The historical defaults — uniform profile, static (period-0)
            // oracle, abstract (clock-0) rate — are left implicit so JSON
            // from specs that don't sweep those dimensions stays
            // byte-identical across refactors.
            if row.key.profile != NoiseShape::Uniform {
                out.push(',');
                json_str(&mut out, "profile", row.key.profile.name());
            }
            if row.key.rotation_period != 0 {
                let _ = write!(out, ",\"rotation_period\":{}", row.key.rotation_period);
            }
            if row.key.clock_ns != 0.0 {
                let _ = write!(out, ",\"clock_ns\":{}", json_f64(row.key.clock_ns));
            }
            if row.key.topology != Topology::Uniform {
                out.push(',');
                json_str(&mut out, "topology", row.key.topology.name());
            }
            if timing {
                let _ = write!(
                    out,
                    ",\"runtime_p50\":{},\"runtime_p90\":{},\"runtime_max\":{},\
                     \"mean_decisions\":{},\"mean_propagations\":{},\"mean_conflicts\":{},\
                     \"mean_restarts\":{},\"mean_learnts_deleted\":{},\
                     \"mean_elim_vars\":{},\"mean_subsumed\":{},\
                     \"mean_strengthened\":{},\"mean_simplify_ms\":{}",
                    json_f64(row.runtime_p50),
                    json_f64(row.runtime_p90),
                    json_f64(row.runtime_max),
                    json_f64(row.mean_decisions),
                    json_f64(row.mean_propagations),
                    json_f64(row.mean_conflicts),
                    json_f64(row.mean_restarts),
                    json_f64(row.mean_learnts_deleted),
                    json_f64(row.mean_elim_vars),
                    json_f64(row.mean_subsumed),
                    json_f64(row.mean_strengthened),
                    json_f64(row.mean_simplify_ms),
                );
            }
            out.push('}');
        }
        out.push_str("],\"device\":[");
        for (i, row) in self.device.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_str(&mut out, "kind", row.kind);
            let _ = write!(
                out,
                ",\"i_s\":{},\"t_clk\":{},\"samples\":{},\"value\":{}",
                json_f64(row.i_s),
                json_f64(row.t_clk),
                row.samples,
                json_f64(row.value),
            );
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// CSV of the aggregated attack rows (always includes the runtime
    /// columns; consumers that need determinism should use
    /// [`CampaignReport::deterministic_json`]).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "benchmark,scheme,level,attack,error_rate,clock_ns,profile,rotation_period,topology,\
             trials,completed,timed_out,exhausted,inconsistent,failed,key_recovery_rate,\
             mean_queries,mean_iterations,mean_output_error,runtime_p50,runtime_p90,\
             runtime_max\n",
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                row.key.benchmark,
                scheme_name(row.key.scheme),
                row.key.level,
                row.key.attack.name(),
                row.key.error_rate,
                row.key.clock_ns,
                row.key.profile.name(),
                row.key.rotation_period,
                row.key.topology.name(),
                row.trials,
                row.status_counts[0],
                row.status_counts[1],
                row.status_counts[2],
                row.status_counts[3],
                row.status_counts[4],
                row.key_recovery_rate,
                row.mean_queries,
                row.mean_iterations,
                row.mean_output_error,
                row.runtime_p50,
                row.runtime_p90,
                row.runtime_max,
            );
        }
        out
    }

    /// Results belonging to one grid cell, in trial order — convenience
    /// for harnesses that render per-cell output (Table IV cells).
    pub fn cell_results(
        &self,
        benchmark: &str,
        scheme: gshe_camo::CamoScheme,
        level: f64,
    ) -> Vec<&JobResult> {
        self.results
            .iter()
            .filter(|r| match &r.spec.kind {
                JobKind::Attack {
                    benchmark: b,
                    scheme: s,
                    level: l,
                    ..
                } => b == benchmark && *s == scheme && (*l - level).abs() < 1e-12,
                _ => false,
            })
            .collect()
    }
}

/// JSON-compatible float rendering: finite values via Rust's shortest
/// round-trip formatting, NaN/infinities as null.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn json_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AttackSeeds, JobSpec, JobStatus};
    use gshe_attacks::AttackKind;
    use gshe_camo::CamoScheme;

    fn sample_report() -> CampaignReport {
        let result = JobResult {
            spec: JobSpec {
                kind: JobKind::Attack {
                    benchmark: "c7552".into(),
                    topology: Topology::Uniform,
                    scheme: CamoScheme::GsheAll16,
                    level: 0.2,
                    attack: AttackKind::Sat,
                    error_rate: 0.0,
                    clock_ns: 0.0,
                    profile: NoiseShape::Uniform,
                    rotation_period: 0,
                    trial: 0,
                    seeds: AttackSeeds {
                        select: 0,
                        transform: 0,
                        oracle: 0,
                    },
                },
                timeout: Duration::from_secs(60),
            },
            status: JobStatus::Completed,
            key_recovered: true,
            queries: 12,
            iterations: 12,
            output_error_rate: 0.0,
            measurement: f64::NAN,
            elapsed: Duration::from_millis(1234),
            solver_stats: gshe_sat::SolverStats {
                decisions: 40,
                propagations: 400,
                conflicts: 4,
                restarts: 2,
                deleted: 6,
                elim_vars: 30,
                subsumed: 20,
                strengthened: 10,
                simplify_ns: 5_000_000,
                ..Default::default()
            },
            error: None,
        };
        CampaignReport::new(
            "unit".into(),
            vec![result],
            4,
            Duration::from_secs(2),
            (3, 9, 2),
        )
    }

    #[test]
    fn json_shapes_differ_only_in_timing() {
        let report = sample_report();
        let full = report.to_json();
        let det = report.deterministic_json();
        assert!(full.contains("\"wall_time_secs\""));
        assert!(full.contains("\"runtime_p50\""));
        assert!(!det.contains("runtime"));
        assert!(!det.contains("wall_time"));
        assert!(det.contains("\"key_recovery_rate\":1"));
        assert!(det.contains("\"mean_queries\":12"));
        // Solver and pool diagnostics live strictly on the timing side.
        assert!(full.contains("\"mean_decisions\":40"));
        assert!(full.contains("\"mean_propagations\":400"));
        assert!(full.contains("\"mean_conflicts\":4"));
        assert!(full.contains("\"mean_restarts\":2"));
        assert!(full.contains("\"mean_learnts_deleted\":6"));
        assert!(full.contains("\"mean_elim_vars\":30"));
        assert!(full.contains("\"mean_subsumed\":20"));
        assert!(full.contains("\"mean_strengthened\":10"));
        assert!(full.contains("\"mean_simplify_ms\":5"));
        assert!(full.contains("\"pool\":{\"workers\":["));
        assert!(!det.contains("decisions"));
        assert!(!det.contains("restarts"));
        assert!(!det.contains("elim_vars"));
        assert!(!det.contains("simplify"));
        assert!(!det.contains("pool"));
    }

    #[test]
    fn pool_stats_render_per_worker_in_timing_json() {
        let report = sample_report().with_pool_stats(vec![
            WorkerStats {
                tasks: 3,
                steals: 1,
                busy_ns: 750,
                idle_ns: 250,
            },
            WorkerStats {
                tasks: 2,
                steals: 0,
                busy_ns: 250,
                idle_ns: 750,
            },
        ]);
        let full = report.to_json();
        assert!(full.contains(
            "\"pool\":{\"workers\":[{\"tasks\":3,\"steals\":1,\"busy_ns\":750,\"idle_ns\":250},\
             {\"tasks\":2,\"steals\":0,\"busy_ns\":250,\"idle_ns\":750}],\"utilization\":0.5}"
        ));
        assert!(!report.deterministic_json().contains("pool"));
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("benchmark,scheme"));
        assert!(lines[0].contains(",profile,"));
        assert!(lines[1].starts_with("c7552,gshe16,0.2,sat,0,0,uniform,0,"));
    }

    #[test]
    fn uniform_profile_is_implicit_in_json_but_named_otherwise() {
        let mut report = sample_report();
        assert!(!report.deterministic_json().contains("profile"));
        let JobKind::Attack { profile, .. } = &mut report.results[0].spec.kind else {
            panic!()
        };
        *profile = NoiseShape::OutputCone;
        let rebuilt = CampaignReport::new(
            report.name.clone(),
            report.results.clone(),
            1,
            Duration::from_secs(1),
            (0, 0, 0),
        );
        assert!(rebuilt
            .deterministic_json()
            .contains("\"profile\":\"output-cone\""));
        assert!(rebuilt.to_csv().contains(",output-cone,"));
    }

    #[test]
    fn rotation_period_is_implicit_in_json_only_when_static() {
        let mut report = sample_report();
        assert!(!report.deterministic_json().contains("rotation_period"));
        assert!(report.to_csv().contains(",uniform,0,"));
        let JobKind::Attack {
            rotation_period, ..
        } = &mut report.results[0].spec.kind
        else {
            panic!()
        };
        *rotation_period = 16;
        let rebuilt = CampaignReport::new(
            report.name.clone(),
            report.results.clone(),
            1,
            Duration::from_secs(1),
            (0, 0, 0),
        );
        assert!(rebuilt
            .deterministic_json()
            .contains("\"rotation_period\":16"));
        assert!(rebuilt.to_csv().contains(",uniform,16,"));
    }

    #[test]
    fn topology_is_implicit_in_json_only_when_uniform() {
        let mut report = sample_report();
        assert!(!report.deterministic_json().contains("topology"));
        assert!(
            report.to_csv().contains(",0,uniform,"),
            "{}",
            report.to_csv()
        );
        let JobKind::Attack { topology, .. } = &mut report.results[0].spec.kind else {
            panic!()
        };
        *topology = Topology::Local;
        let rebuilt = CampaignReport::new(
            report.name.clone(),
            report.results.clone(),
            1,
            Duration::from_secs(1),
            (0, 0, 0),
        );
        assert!(rebuilt
            .deterministic_json()
            .contains("\"topology\":\"local\""));
        assert!(rebuilt.to_csv().contains(",0,local,"));
    }

    #[test]
    fn cone_and_memo_stats_render_on_the_timing_side_only() {
        let report = sample_report().with_cache_detail((5, 2), 3, 4096);
        let full = report.to_json();
        assert!(full.contains("\"cone_hits\":5"));
        assert!(full.contains("\"cone_misses\":2"));
        assert!(full.contains("\"cone_key_words\":3"));
        assert!(full.contains("\"peak_memo_bytes\":4096"));
        let det = report.deterministic_json();
        assert!(!det.contains("cone_"));
        assert!(!det.contains("peak_memo"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        json_str(&mut out, "k", "a\"b\\c\nd");
        assert_eq!(out, "\"k\":\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn cell_results_filters() {
        let report = sample_report();
        assert_eq!(
            report
                .cell_results("c7552", CamoScheme::GsheAll16, 0.2)
                .len(),
            1
        );
        assert!(report
            .cell_results("c7552", CamoScheme::InvBuf, 0.2)
            .is_empty());
    }
}
