//! Campaign specification: the experiment grid and its expansion to jobs.
//!
//! A [`CampaignSpec`] is the cartesian product the paper's evaluation
//! tables iterate by hand: benchmark suite × camouflaging scheme grid ×
//! attack grid × oracle error-rate sweep × trials, plus the shared knobs
//! (netlist scale, per-job wall-clock budget, master seed, worker count).
//! [`CampaignSpec::expand`] unrolls the grid into [`JobSpec`]s with
//! identity-derived seeds; the paper-table harnesses build the job list
//! themselves when they need a historical seed derivation.
//!
//! Specs can be read from a minimal TOML subset (see
//! [`CampaignSpec::parse_toml`] and the crate-level docs).

use crate::job::{
    clock_salt, hash_mix, hash_str, rotation_salt, select_seed, transform_seed, AttackSeeds,
    JobKind, JobSpec, NoiseShape,
};
use crate::physical::{is_valid_clock_period, ClockRateTable};
use gshe_attacks::{AttackKind, CoiMode, SimplifyMode};
use gshe_camo::CamoScheme;
use gshe_logic::Topology;
use std::time::Duration;

/// Machine-friendly scheme names used in spec files and CSV output.
pub fn scheme_name(scheme: CamoScheme) -> &'static str {
    match scheme {
        CamoScheme::LookAlike => "look-alike",
        CamoScheme::ThresholdSttLut => "stt-lut",
        CamoScheme::SiNw => "sinw",
        CamoScheme::InvBuf => "inv-buf",
        CamoScheme::FourFn => "four-fn",
        CamoScheme::DwmPolymorphic => "dwm",
        CamoScheme::GsheAll16 => "gshe16",
    }
}

/// Parses [`scheme_name`] back into a scheme.
pub fn parse_scheme(name: &str) -> Option<CamoScheme> {
    CamoScheme::ALL
        .into_iter()
        .find(|&s| scheme_name(s) == name)
}

/// The valid TOML keys of a campaign spec, in documentation order.
pub const SPEC_KEYS: [&str; 18] = [
    "name",
    "benchmarks",
    "scale",
    "topology",
    "levels",
    "schemes",
    "attacks",
    "coi_mode",
    "sat_simplify",
    "error_rates",
    "clock_periods_ns",
    "profiles",
    "rotation_periods",
    "trials",
    "seed",
    "timeout_secs",
    "threads",
    "memo_budget_mb",
];

fn join_names<I: IntoIterator<Item = &'static str>>(names: I) -> String {
    names.into_iter().collect::<Vec<_>>().join(", ")
}

/// Comma-separated camouflaging-scheme names for error messages
/// (including the `"all"` selector).
pub fn valid_scheme_names() -> String {
    join_names(CamoScheme::ALL.into_iter().map(scheme_name).chain(["all"]))
}

/// Comma-separated attack names for error messages.
pub fn valid_attack_names() -> String {
    join_names(AttackKind::ALL.into_iter().map(AttackKind::name))
}

/// Comma-separated noise-profile names for error messages (including the
/// `"all"` selector).
pub fn valid_profile_names() -> String {
    join_names(
        NoiseShape::ALL
            .into_iter()
            .map(NoiseShape::name)
            .chain(["all"]),
    )
}

/// Comma-separated spec-file keys ([`SPEC_KEYS`]) for error messages.
pub fn valid_key_names() -> String {
    join_names(SPEC_KEYS)
}

/// A declarative description of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (report header, output file stem).
    pub name: String,
    /// Benchmark selectors, resolved via
    /// [`gshe_logic::suites::resolve_selector`] (`"all"`, `"suite:itc99"`,
    /// or a single name).
    pub benchmarks: Vec<String>,
    /// Benchmark-scale divisor (1 = paper-scale gate counts).
    pub scale: usize,
    /// Netlist topology profile for generated benchmarks:
    /// [`Topology::Uniform`] is the historical generator (fanins drawn
    /// uniformly over all prior nodes), [`Topology::Local`] the
    /// placement-tile generator whose influence cones stay narrow —
    /// superblue-like locality as a campaign knob. File-backed (`.aag`)
    /// benchmarks ignore it.
    pub topology: Topology,
    /// Protection levels (fraction of gates camouflaged).
    pub levels: Vec<f64>,
    /// Camouflaging schemes under study.
    pub schemes: Vec<CamoScheme>,
    /// Attack algorithms to launch.
    pub attacks: Vec<AttackKind>,
    /// Cone-of-influence policy for every attack job (and the campaign
    /// cache's cone-keyed entries): `auto` (engage at the historical
    /// 100k-node threshold), `auto:<nodes>` (custom threshold), `on`,
    /// or `off`.
    pub coi_mode: CoiMode,
    /// SAT simplification policy for every attack job's incremental
    /// solver: `auto` (preprocess instances with at least the historical
    /// 100k-clause threshold and vivify learnts at restart boundaries),
    /// `auto:<clauses>` (custom threshold), `on`, or `off`. The same
    /// gate selects Plaisted–Greenbaum single-sided miter encoding.
    pub sat_simplify: SimplifyMode,
    /// Oracle per-cell error rates (0.0 = perfect chip).
    pub error_rates: Vec<f64>,
    /// *Physical* clock periods, in nanoseconds, swept as additional
    /// rate sources: each period's per-cell error rate is derived from
    /// the device Monte Carlo at the nominal drive current (uniform
    /// drives, memoized per operating point — see
    /// [`crate::physical::ClockRateTable`]). Empty = abstract rates only.
    pub clock_periods_ns: Vec<f64>,
    /// Error-profile shapes: how each rate spreads over the cloaked cells
    /// (heterogeneous noise placements as a grid dimension).
    pub profiles: Vec<NoiseShape>,
    /// Dynamic-camouflaging rotation periods (`0` = the static oracle the
    /// grid always had; `n > 0` = a `RotatingOracle` drawing a fresh random
    /// key every `n` queries). The defense-side dimension of the
    /// attack-collapse-vs-period experiment.
    pub rotation_periods: Vec<u64>,
    /// Trials per grid cell (stochastic cells need repeats).
    pub trials: u64,
    /// Master seed; all job seeds derive from it and the job identity.
    pub seed: u64,
    /// Per-job wall-clock budget.
    pub timeout: Duration,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Memory budget, in MiB (fractional allowed), for memoized benchmark
    /// materializations during a run. `0` = unbounded — the historical
    /// behavior: every benchmark resident at once. A positive budget
    /// switches [`crate::EvalSession::run_jobs`] to streaming chunks:
    /// benchmarks are admitted while their measured
    /// [`gshe_logic::Netlist::arena_bytes`] fit the budget, their jobs
    /// run, and the chunk's materializations are evicted before the next
    /// chunk is admitted.
    pub memo_budget_mb: f64,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            name: "campaign".to_string(),
            benchmarks: vec!["c7552".to_string()],
            scale: 20,
            topology: Topology::Uniform,
            levels: vec![0.2],
            schemes: vec![CamoScheme::GsheAll16],
            attacks: vec![AttackKind::Sat],
            coi_mode: CoiMode::Auto,
            sat_simplify: SimplifyMode::Auto,
            error_rates: vec![0.0],
            clock_periods_ns: Vec::new(),
            profiles: vec![NoiseShape::Uniform],
            rotation_periods: vec![0],
            trials: 1,
            seed: 1,
            timeout: Duration::from_secs(60),
            threads: 0,
            memo_budget_mb: 0.0,
        }
    }
}

impl CampaignSpec {
    /// Resolves the benchmark selectors to concrete benchmark names,
    /// deduplicated, in selector order.
    ///
    /// # Errors
    ///
    /// Returns the first selector that matches nothing.
    pub fn resolve_benchmarks(&self) -> Result<Vec<String>, String> {
        let mut names: Vec<String> = Vec::new();
        for selector in &self.benchmarks {
            // `.aag` selectors are file-backed benchmarks: the path itself
            // is the benchmark name, loaded through the AIGER frontend at
            // materialization time (latches cut, scan-style).
            if selector.ends_with(".aag") {
                if !names.iter().any(|n| n == selector) {
                    names.push(selector.clone());
                }
                continue;
            }
            let specs = gshe_logic::suites::resolve_selector(selector);
            if specs.is_empty() {
                return Err(format!("benchmark selector `{selector}` matches nothing"));
            }
            for s in specs {
                if !names.iter().any(|n| n == s.name) {
                    names.push(s.name.to_string());
                }
            }
        }
        Ok(names)
    }

    /// Unrolls the grid into jobs, in canonical order (benchmark, level,
    /// scheme, attack, rotation period, rate source, profile, trial —
    /// outermost first). Rate sources are the abstract `error_rates`
    /// followed by the `clock_periods_ns`-derived rates (device Monte
    /// Carlo at the nominal drive, memoized per operating point).
    ///
    /// Seed policy: gate selection depends only on (campaign seed,
    /// benchmark, level) — the paper's fairness protocol, every scheme
    /// sees the same protected gates; the transform seed adds the scheme;
    /// the oracle seed adds attack, rotation period, error rate, clock
    /// period, profile shape, and trial. Dimension salts compose by XOR
    /// and are all zero at their historical defaults (period 0, uniform
    /// shape, abstract rate), so specs that don't sweep those dimensions
    /// derive exactly the seeds they always did — including the combined
    /// rotation × noise cells, whose salts are `rotation_salt ^
    /// profile_salt ^ clock_salt`.
    ///
    /// Dimension collapse: the only remaining collapse is physical — a
    /// rate-0 chip is deterministic, so every shape is the same quiet
    /// profile and rate-0 cells emit the uniform shape only. Rotation no
    /// longer collapses the noise dimensions: `rotation_periods ×
    /// rates × profiles` is a full grid, and its `period > 0, rate > 0`
    /// cells are the combined rotating + stochastic defense.
    ///
    /// # Errors
    ///
    /// Propagates benchmark-resolution failures.
    pub fn expand(&self) -> Result<Vec<JobSpec>, String> {
        let benchmarks = self.resolve_benchmarks()?;
        let profiles = if self.profiles.is_empty() {
            vec![NoiseShape::Uniform]
        } else {
            self.profiles.clone()
        };
        let periods = if self.rotation_periods.is_empty() {
            vec![0]
        } else {
            self.rotation_periods.clone()
        };
        // Rate sources: (clock_ns, rate) pairs — abstract rates first
        // (clock 0, the historical cells), then the physically derived
        // ones. Each distinct clock period costs one Monte Carlo sweep
        // for the whole expansion.
        let mut rate_cells: Vec<(f64, f64)> =
            self.error_rates.iter().map(|&rate| (0.0, rate)).collect();
        let mut clock_table = ClockRateTable::new();
        for &clock_ns in &self.clock_periods_ns {
            if !is_valid_clock_period(clock_ns) {
                return Err(format!(
                    "clock period must be a positive number of ns, got {clock_ns}"
                ));
            }
            rate_cells.push((clock_ns, clock_table.rate_for(clock_ns)));
        }
        let mut jobs = Vec::new();
        for benchmark in &benchmarks {
            for &level in &self.levels {
                let select = select_seed(self.seed, benchmark, level);
                for &scheme in &self.schemes {
                    let transform = transform_seed(select, scheme);
                    for &attack in &self.attacks {
                        for &rotation_period in &periods {
                            for &(clock_ns, error_rate) in &rate_cells {
                                // A rate-0 chip is deterministic: every
                                // shape collapses to the same (quiet)
                                // profile, so sweep shapes only where they
                                // can matter.
                                let cell_profiles: &[NoiseShape] = if error_rate > 0.0 {
                                    &profiles
                                } else {
                                    &[NoiseShape::Uniform]
                                };
                                for &profile in cell_profiles {
                                    for trial in 0..self.trials.max(1) {
                                        let oracle = hash_mix(
                                            transform
                                                ^ hash_str(attack.name())
                                                ^ ((error_rate * 1e6) as u64)
                                                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                                                ^ profile.seed_salt()
                                                ^ rotation_salt(rotation_period)
                                                ^ clock_salt(clock_ns)
                                                ^ trial,
                                        );
                                        jobs.push(JobSpec {
                                            kind: JobKind::Attack {
                                                benchmark: benchmark.clone(),
                                                topology: self.topology,
                                                scheme,
                                                level,
                                                attack,
                                                error_rate,
                                                clock_ns,
                                                profile,
                                                rotation_period,
                                                trial,
                                                seeds: AttackSeeds {
                                                    select,
                                                    transform,
                                                    oracle,
                                                },
                                            },
                                            timeout: self.timeout,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(jobs)
    }

    /// Parses a campaign spec from the TOML subset documented at the crate
    /// level: `key = value` lines, `#` comments, strings in double quotes,
    /// homogeneous `[ ... ]` arrays of strings/numbers on one line.
    ///
    /// Unknown keys are rejected so typos fail loudly.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn parse_toml(text: &str) -> Result<CampaignSpec, String> {
        let mut spec = CampaignSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() || line.starts_with('[') {
                // Blank, comment, or a table header like [campaign] —
                // headers are accepted and ignored (single-table format).
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let fail = |what: &str| format!("line {}: {what}", lineno + 1);
            match key {
                "name" => spec.name = parse_string(value).ok_or_else(|| fail("bad string"))?,
                "benchmarks" => {
                    spec.benchmarks =
                        parse_string_array(value).ok_or_else(|| fail("bad string array"))?
                }
                "scale" => {
                    spec.scale = value.parse().map_err(|_| fail("bad integer"))?;
                }
                "topology" => {
                    let name = parse_string(value).ok_or_else(|| fail("bad string"))?;
                    spec.topology = Topology::parse(&name).ok_or_else(|| {
                        fail(&format!(
                            "unknown topology `{name}` (valid: uniform, local)"
                        ))
                    })?;
                }
                "coi_mode" => {
                    let name = parse_string(value).ok_or_else(|| fail("bad string"))?;
                    spec.coi_mode = CoiMode::parse(&name).ok_or_else(|| {
                        fail(&format!(
                            "unknown coi_mode `{name}` (valid: auto, auto:<nodes>, on, off)"
                        ))
                    })?;
                }
                "sat_simplify" => {
                    let name = parse_string(value).ok_or_else(|| fail("bad string"))?;
                    spec.sat_simplify = SimplifyMode::parse(&name).ok_or_else(|| {
                        fail(&format!(
                            "unknown sat_simplify `{name}` (valid: auto, auto:<clauses>, on, off)"
                        ))
                    })?;
                }
                "memo_budget_mb" => {
                    let mb: f64 = value
                        .parse()
                        .map_err(|_| fail("bad number (MiB; 0 = unbounded)"))?;
                    if !(mb.is_finite() && mb >= 0.0) {
                        return Err(fail("memo_budget_mb must be a non-negative number of MiB"));
                    }
                    spec.memo_budget_mb = mb;
                }
                "levels" => {
                    spec.levels =
                        parse_array::<f64>(value).ok_or_else(|| fail("bad number array"))?
                }
                "schemes" => {
                    let names =
                        parse_string_array(value).ok_or_else(|| fail("bad string array"))?;
                    spec.schemes = names
                        .iter()
                        .map(|n| {
                            if n == "all" {
                                Ok(CamoScheme::ALL.to_vec())
                            } else {
                                parse_scheme(n).map(|s| vec![s]).ok_or_else(|| {
                                    fail(&format!(
                                        "unknown scheme `{n}` (valid: {})",
                                        valid_scheme_names()
                                    ))
                                })
                            }
                        })
                        .collect::<Result<Vec<_>, _>>()?
                        .into_iter()
                        .flatten()
                        .collect();
                }
                "attacks" => {
                    let names =
                        parse_string_array(value).ok_or_else(|| fail("bad string array"))?;
                    spec.attacks = names
                        .iter()
                        .map(|n| {
                            AttackKind::parse(n).ok_or_else(|| {
                                fail(&format!(
                                    "unknown attack `{n}` (valid: {})",
                                    valid_attack_names()
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "error_rates" => {
                    spec.error_rates =
                        parse_array::<f64>(value).ok_or_else(|| fail("bad number array"))?
                }
                "clock_periods_ns" => {
                    let periods = parse_array::<f64>(value)
                        .ok_or_else(|| fail("bad number array (clock periods in ns)"))?;
                    if let Some(bad) = periods.iter().find(|p| !is_valid_clock_period(**p)) {
                        return Err(fail(&format!(
                            "clock period must be a positive number of ns, got {bad}"
                        )));
                    }
                    spec.clock_periods_ns = periods;
                }
                "profiles" => {
                    let names =
                        parse_string_array(value).ok_or_else(|| fail("bad string array"))?;
                    spec.profiles = names
                        .iter()
                        .map(|n| {
                            if n == "all" {
                                Ok(NoiseShape::ALL.to_vec())
                            } else {
                                NoiseShape::parse(n).map(|s| vec![s]).ok_or_else(|| {
                                    fail(&format!(
                                        "unknown profile `{n}` (valid: {})",
                                        valid_profile_names()
                                    ))
                                })
                            }
                        })
                        .collect::<Result<Vec<_>, _>>()?
                        .into_iter()
                        .flatten()
                        .collect();
                }
                "rotation_periods" => {
                    spec.rotation_periods = parse_array::<u64>(value)
                        .ok_or_else(|| fail("bad integer array (periods in queries; 0 = static)"))?
                }
                "trials" => spec.trials = value.parse().map_err(|_| fail("bad integer"))?,
                "seed" => spec.seed = value.parse().map_err(|_| fail("bad integer"))?,
                "timeout_secs" => {
                    spec.timeout =
                        Duration::from_secs(value.parse().map_err(|_| fail("bad integer"))?)
                }
                "threads" => spec.threads = value.parse().map_err(|_| fail("bad integer"))?,
                other => {
                    return Err(fail(&format!(
                        "unknown key `{other}` (valid keys: {})",
                        valid_key_names()
                    )))
                }
            }
        }
        Ok(spec)
    }
}

/// Drops a `#` comment, but only when the `#` sits outside a
/// double-quoted string.
pub(crate) fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

pub(crate) fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

pub(crate) fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|item| parse_string(item.trim()))
        .collect()
}

pub(crate) fn parse_array<T: std::str::FromStr>(value: &str) -> Option<Vec<T>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|item| item.trim().parse().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_covers_the_grid_in_order() {
        let spec = CampaignSpec {
            benchmarks: vec!["c7552".into(), "ex1010".into()],
            levels: vec![0.1, 0.2],
            schemes: vec![CamoScheme::InvBuf, CamoScheme::GsheAll16],
            attacks: vec![AttackKind::Sat, AttackKind::DoubleDip],
            error_rates: vec![0.0, 0.05],
            trials: 3,
            ..Default::default()
        };
        let jobs = spec.expand().unwrap();
        assert_eq!(jobs.len(), 2 * 2 * 2 * 2 * 2 * 3);
        // Outermost loop is the benchmark.
        let JobKind::Attack { benchmark, .. } = &jobs[0].kind else {
            panic!()
        };
        assert_eq!(benchmark, "c7552");
        let JobKind::Attack { benchmark, .. } = &jobs.last().unwrap().kind else {
            panic!()
        };
        assert_eq!(benchmark, "ex1010");
    }

    #[test]
    fn selection_seed_is_shared_across_schemes_and_attacks() {
        let spec = CampaignSpec {
            schemes: vec![CamoScheme::InvBuf, CamoScheme::GsheAll16],
            attacks: vec![AttackKind::Sat, AttackKind::AppSat],
            ..Default::default()
        };
        let jobs = spec.expand().unwrap();
        let selects: Vec<u64> = jobs
            .iter()
            .map(|j| {
                let JobKind::Attack { seeds, .. } = &j.kind else {
                    panic!()
                };
                seeds.select
            })
            .collect();
        assert!(
            selects.windows(2).all(|w| w[0] == w[1]),
            "fairness protocol broken"
        );

        // But the oracle seed must distinguish attacks.
        let oracles: Vec<u64> = jobs
            .iter()
            .map(|j| {
                let JobKind::Attack { seeds, .. } = &j.kind else {
                    panic!()
                };
                seeds.oracle
            })
            .collect();
        assert_eq!(oracles.len(), 4);
        assert!(oracles.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn profile_sweep_multiplies_the_grid_and_salts_seeds() {
        let base = CampaignSpec {
            error_rates: vec![0.05],
            trials: 2,
            ..Default::default()
        };
        let swept = CampaignSpec {
            profiles: vec![NoiseShape::Uniform, NoiseShape::OutputCone],
            ..base.clone()
        };
        let jobs = swept.expand().unwrap();
        assert_eq!(jobs.len(), base.expand().unwrap().len() * 2);

        // Uniform jobs keep the historical seed derivation; other shapes
        // draw a distinct noise stream.
        let oracle_of = |j: &JobSpec| {
            let JobKind::Attack { seeds, profile, .. } = &j.kind else {
                panic!()
            };
            (*profile, seeds.oracle)
        };
        let base_jobs = base.expand().unwrap();
        let (shape0, seed0) = oracle_of(&jobs[0]);
        assert_eq!(shape0, NoiseShape::Uniform);
        assert_eq!(seed0, oracle_of(&base_jobs[0]).1);
        let (shape1, seed1) = oracle_of(&jobs[2]);
        assert_eq!(shape1, NoiseShape::OutputCone);
        assert_ne!(seed1, seed0);
    }

    #[test]
    fn rate_zero_cells_collapse_the_profile_sweep() {
        // error_rate 0.0 makes every shape identical; only one (uniform)
        // job per deterministic cell, shapes swept for the noisy cells.
        let spec = CampaignSpec {
            error_rates: vec![0.0, 0.05],
            profiles: vec![NoiseShape::Uniform, NoiseShape::OutputCone],
            ..Default::default()
        };
        let jobs = spec.expand().unwrap();
        assert_eq!(jobs.len(), 1 + 2);
        let shapes: Vec<(f64, NoiseShape)> = jobs
            .iter()
            .map(|j| {
                let JobKind::Attack {
                    error_rate,
                    profile,
                    ..
                } = &j.kind
                else {
                    panic!()
                };
                (*error_rate, *profile)
            })
            .collect();
        assert_eq!(
            shapes,
            [
                (0.0, NoiseShape::Uniform),
                (0.05, NoiseShape::Uniform),
                (0.05, NoiseShape::OutputCone),
            ]
        );
    }

    #[test]
    fn rotation_periods_extend_the_grid_and_salt_seeds() {
        let base = CampaignSpec {
            trials: 2,
            ..Default::default()
        };
        let swept = CampaignSpec {
            rotation_periods: vec![0, 4, 16],
            ..base.clone()
        };
        let jobs = swept.expand().unwrap();
        // One static cell plus one cell per nonzero period.
        assert_eq!(jobs.len(), base.expand().unwrap().len() * 3);

        let cell_of = |j: &JobSpec| {
            let JobKind::Attack {
                rotation_period,
                seeds,
                ..
            } = &j.kind
            else {
                panic!()
            };
            (*rotation_period, seeds.oracle)
        };
        // Period-0 jobs keep the historical seed derivation byte-for-byte.
        let base_jobs = base.expand().unwrap();
        let (p0, seed0) = cell_of(&jobs[0]);
        assert_eq!(p0, 0);
        assert_eq!(seed0, cell_of(&base_jobs[0]).1);
        // Nonzero periods draw distinct oracle seeds.
        let (p4, seed4) = cell_of(&jobs[2]);
        let (p16, seed16) = cell_of(&jobs[4]);
        assert_eq!((p4, p16), (4, 16));
        assert_ne!(seed4, seed0);
        assert_ne!(seed4, seed16);
    }

    #[test]
    fn rotation_crosses_the_noise_dimensions_into_combined_cells() {
        // The stack made the combined defense a real grid: every rotation
        // period sweeps the full rates × profiles cross product (with only
        // the physical rate-0 collapse remaining), and the pre-existing
        // cells keep their exact positions and seed derivations.
        let spec = CampaignSpec {
            error_rates: vec![0.0, 0.05],
            profiles: vec![NoiseShape::Uniform, NoiseShape::OutputCone],
            rotation_periods: vec![0, 8],
            ..Default::default()
        };
        let jobs = spec.expand().unwrap();
        let cells: Vec<(u64, f64, NoiseShape)> = jobs
            .iter()
            .map(|j| {
                let JobKind::Attack {
                    rotation_period,
                    error_rate,
                    profile,
                    ..
                } = &j.kind
                else {
                    panic!()
                };
                (*rotation_period, *error_rate, *profile)
            })
            .collect();
        assert_eq!(
            cells,
            [
                (0, 0.0, NoiseShape::Uniform),
                (0, 0.05, NoiseShape::Uniform),
                (0, 0.05, NoiseShape::OutputCone),
                (8, 0.0, NoiseShape::Uniform),
                (8, 0.05, NoiseShape::Uniform),
                (8, 0.05, NoiseShape::OutputCone),
            ]
        );

        // Combined-cell seed salts compose: the rotating noisy cells draw
        // streams distinct from both single-defense cells, while each
        // single-defense cell keeps its historical derivation (checked by
        // the collapse-free sub-specs).
        let oracle_of = |j: &JobSpec| {
            let JobKind::Attack { seeds, .. } = &j.kind else {
                panic!()
            };
            seeds.oracle
        };
        let noise_only = oracle_of(&jobs[1]);
        let rotation_only = oracle_of(&jobs[3]);
        let combined = oracle_of(&jobs[4]);
        assert_ne!(combined, noise_only);
        assert_ne!(combined, rotation_only);
        // Single-dimension sub-specs reproduce their cells byte-for-byte.
        let noise_spec = CampaignSpec {
            error_rates: vec![0.0, 0.05],
            profiles: vec![NoiseShape::Uniform, NoiseShape::OutputCone],
            ..Default::default()
        };
        assert_eq!(oracle_of(&noise_spec.expand().unwrap()[1]), noise_only);
        let rotation_spec = CampaignSpec {
            rotation_periods: vec![0, 8],
            ..Default::default()
        };
        assert_eq!(
            oracle_of(&rotation_spec.expand().unwrap()[1]),
            rotation_only
        );
    }

    #[test]
    fn clock_periods_extend_the_rate_sweep_with_derived_rates() {
        // The physical dimension: clock periods become extra rate sources
        // with Monte-Carlo-derived rates, tagged with their period and
        // salted into the oracle seed. Abstract cells keep clock 0 and
        // their historical seeds.
        let base = CampaignSpec {
            error_rates: vec![0.0],
            ..Default::default()
        };
        let swept = CampaignSpec {
            clock_periods_ns: vec![0.8, 6.0],
            ..base.clone()
        };
        let jobs = swept.expand().unwrap();
        assert_eq!(jobs.len(), 3, "one abstract + two physical cells");
        let cell_of = |j: &JobSpec| {
            let JobKind::Attack {
                error_rate,
                clock_ns,
                seeds,
                ..
            } = &j.kind
            else {
                panic!()
            };
            (*clock_ns, *error_rate, seeds.oracle)
        };
        let (c0, r0, seed0) = cell_of(&jobs[0]);
        assert_eq!((c0, r0), (0.0, 0.0));
        assert_eq!(seed0, cell_of(&base.expand().unwrap()[0]).2);
        let (c1, r1, seed1) = cell_of(&jobs[1]);
        assert_eq!(c1, 0.8);
        assert!(r1 > 0.2, "0.8 ns clock should err often: {r1}");
        assert_ne!(seed1, seed0);
        let (c2, r2, seed2) = cell_of(&jobs[2]);
        assert_eq!(c2, 6.0);
        assert!(r2 < 0.05, "6 ns clock is near-deterministic: {r2}");
        assert_ne!(seed2, seed1);
    }

    #[test]
    fn clock_periods_parse_from_toml_and_reject_nonpositive() {
        let spec = CampaignSpec::parse_toml("clock_periods_ns = [0.8, 2.0, 6.0]").unwrap();
        assert_eq!(spec.clock_periods_ns, [0.8, 2.0, 6.0]);
        let err = CampaignSpec::parse_toml("clock_periods_ns = [0.0]").unwrap_err();
        assert!(err.contains("positive"), "{err}");
        assert!(CampaignSpec::parse_toml("clock_periods_ns = [-1.0]").is_err());
        assert!(CampaignSpec::parse_toml("clock_periods_ns = [oops]").is_err());
    }

    #[test]
    fn topology_coi_and_memo_budget_parse_from_toml() {
        let spec = CampaignSpec::parse_toml(
            "topology = \"local\"\ncoi_mode = \"auto:20000\"\nsat_simplify = \"auto:50000\"\nmemo_budget_mb = 1.5",
        )
        .unwrap();
        assert_eq!(spec.topology, Topology::Local);
        assert_eq!(spec.coi_mode, CoiMode::AutoAt(20_000));
        assert_eq!(spec.sat_simplify, SimplifyMode::AutoAt(50_000));
        assert_eq!(spec.memo_budget_mb, 1.5);
        // Defaults are the historical behavior.
        let default = CampaignSpec::default();
        assert_eq!(default.topology, Topology::Uniform);
        assert_eq!(default.coi_mode, CoiMode::Auto);
        assert_eq!(default.sat_simplify, SimplifyMode::Auto);
        assert_eq!(default.memo_budget_mb, 0.0);

        let spec = CampaignSpec::parse_toml("sat_simplify = \"on\"").unwrap();
        assert_eq!(spec.sat_simplify, SimplifyMode::On);

        let err = CampaignSpec::parse_toml("topology = \"spiral\"").unwrap_err();
        assert!(err.contains("uniform, local"), "{err}");
        let err = CampaignSpec::parse_toml("coi_mode = \"maybe\"").unwrap_err();
        assert!(err.contains("auto:<nodes>"), "{err}");
        let err = CampaignSpec::parse_toml("sat_simplify = \"maybe\"").unwrap_err();
        assert!(err.contains("auto:<clauses>"), "{err}");
        assert!(CampaignSpec::parse_toml("memo_budget_mb = -1").is_err());
        assert!(CampaignSpec::parse_toml("memo_budget_mb = nan").is_err());
    }

    #[test]
    fn aag_selectors_pass_through_and_stamp_topology() {
        let spec = CampaignSpec {
            benchmarks: vec!["tests/data/epfl_ctrl.aag".into(), "c7552".into()],
            topology: Topology::Local,
            ..Default::default()
        };
        assert_eq!(
            spec.resolve_benchmarks().unwrap(),
            ["tests/data/epfl_ctrl.aag", "c7552"]
        );
        let jobs = spec.expand().unwrap();
        let JobKind::Attack {
            benchmark,
            topology,
            ..
        } = &jobs[0].kind
        else {
            panic!()
        };
        assert_eq!(benchmark, "tests/data/epfl_ctrl.aag");
        assert_eq!(*topology, Topology::Local);
    }

    #[test]
    fn rotation_periods_parse_from_toml() {
        let spec = CampaignSpec::parse_toml("rotation_periods = [0, 1, 16, 64]").unwrap();
        assert_eq!(spec.rotation_periods, [0, 1, 16, 64]);
        assert!(CampaignSpec::parse_toml("rotation_periods = [1.5]").is_err());
        assert!(CampaignSpec::parse_toml("rotation_periods = [-1]").is_err());
    }

    #[test]
    fn errors_name_the_valid_alternatives() {
        let err = CampaignSpec::parse_toml("bogus = 1").unwrap_err();
        assert!(err.contains("valid keys:"), "{err}");
        assert!(err.contains("rotation_periods"), "{err}");
        let err = CampaignSpec::parse_toml(r#"schemes = ["nope"]"#).unwrap_err();
        assert!(err.contains("gshe16"), "{err}");
        let err = CampaignSpec::parse_toml(r#"attacks = ["nope"]"#).unwrap_err();
        assert!(err.contains("double-dip"), "{err}");
        let err = CampaignSpec::parse_toml(r#"profiles = ["nope"]"#).unwrap_err();
        assert!(err.contains("depth-gradient"), "{err}");
    }

    #[test]
    fn profiles_parse_from_toml() {
        let spec = CampaignSpec::parse_toml(r#"profiles = ["uniform", "depth-gradient"]"#).unwrap();
        assert_eq!(
            spec.profiles,
            [NoiseShape::Uniform, NoiseShape::DepthGradient]
        );
        let all = CampaignSpec::parse_toml(r#"profiles = ["all"]"#).unwrap();
        assert_eq!(all.profiles, NoiseShape::ALL.to_vec());
        assert!(CampaignSpec::parse_toml(r#"profiles = ["nope"]"#).is_err());
    }

    #[test]
    fn suite_selectors_expand() {
        let spec = CampaignSpec {
            benchmarks: vec!["suite:itc99".into()],
            ..Default::default()
        };
        assert_eq!(spec.resolve_benchmarks().unwrap(), ["b14", "b21"]);
        let bad = CampaignSpec {
            benchmarks: vec!["nope".into()],
            ..Default::default()
        };
        assert!(bad.resolve_benchmarks().is_err());
    }

    #[test]
    fn toml_round_trip() {
        let text = r#"
# A worked example.
[campaign]
name = "smoke"
benchmarks = ["c7552", "suite:itc99"]
scale = 40
levels = [0.1, 0.2]
schemes = ["inv-buf", "gshe16"]
attacks = ["sat", "appsat"]
error_rates = [0.0, 0.05]
rotation_periods = [0, 32]
trials = 2
seed = 9
timeout_secs = 30
threads = 4
"#;
        let spec = CampaignSpec::parse_toml(text).unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.benchmarks, ["c7552", "suite:itc99"]);
        assert_eq!(spec.scale, 40);
        assert_eq!(spec.levels, [0.1, 0.2]);
        assert_eq!(spec.schemes, [CamoScheme::InvBuf, CamoScheme::GsheAll16]);
        assert_eq!(spec.attacks, [AttackKind::Sat, AttackKind::AppSat]);
        assert_eq!(spec.error_rates, [0.0, 0.05]);
        assert_eq!(spec.rotation_periods, [0, 32]);
        assert_eq!(spec.trials, 2);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.timeout, Duration::from_secs(30));
        assert_eq!(spec.threads, 4);
    }

    #[test]
    fn toml_rejects_unknown_keys_and_schemes() {
        assert!(CampaignSpec::parse_toml("bogus = 1").is_err());
        assert!(CampaignSpec::parse_toml(r#"schemes = ["nope"]"#).is_err());
        assert!(CampaignSpec::parse_toml("name = unquoted").is_err());
    }

    #[test]
    fn hash_inside_quoted_string_is_not_a_comment() {
        let spec = CampaignSpec::parse_toml("name = \"run#3\" # trailing comment").unwrap();
        assert_eq!(spec.name, "run#3");
    }

    #[test]
    fn scheme_names_round_trip() {
        for scheme in CamoScheme::ALL {
            assert_eq!(parse_scheme(scheme_name(scheme)), Some(scheme));
        }
        assert_eq!(parse_scheme("nope"), None);
    }

    #[test]
    fn all_scheme_selector_expands() {
        let spec = CampaignSpec::parse_toml(r#"schemes = ["all"]"#).unwrap();
        assert_eq!(spec.schemes, CamoScheme::ALL.to_vec());
    }
}
