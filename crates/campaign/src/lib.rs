//! # gshe-campaign
//!
//! A sharded, multi-threaded **campaign engine** orchestrating
//! protect→attack→measure experiments at scale. The paper's evaluation
//! (Tables II–IV, Figs. 4–6) is a grid of campaigns — many netlists ×
//! camouflaging schemes × attack configurations × stochastic error rates —
//! and this crate turns that grid into a first-class object instead of a
//! hand-rolled loop per harness binary:
//!
//! * [`CampaignSpec`] — the declarative grid (benchmark suite × scheme
//!   grid × attack grid × error-rate sweep, with seeds and budgets);
//! * [`CampaignSpec::expand`] — unrolls the grid into [`JobSpec`]s whose
//!   RNG seeds derive from the campaign seed and each job's *identity*
//!   (never execution order), so results are reproducible at any thread
//!   count;
//! * [`pool`] — a work-stealing thread pool (std-only) executing jobs with
//!   per-job wall-clock budgets; a job that exhausts its budget is marked
//!   [`JobStatus::TimedOut`] instead of wedging the pool;
//! * [`cache`] — the oracle stack's caching layer: a sharded,
//!   campaign-wide oracle-response cache with **block-level** keys
//!   (netlist fingerprint + packed 64-pattern block), so no block is
//!   simulated — or hashed pattern-at-a-time — twice across jobs;
//! * [`physical`] — device-derived operating points: the memoized
//!   clock-period → error-rate table behind the `clock_periods_ns` grid
//!   dimension (and the historical `gshe_core::stochastic` derivation
//!   functions, which live here so campaigns can use them);
//! * [`aggregate`]/[`report`] — reduce raw job results into the paper's
//!   table rows (key-recovery rate, query counts, output-error rate,
//!   runtime percentiles) and serialize them to JSON or CSV.
//!
//! ## Quick start
//!
//! ```
//! use gshe_campaign::{Campaign, CampaignSpec};
//! use gshe_camo::CamoScheme;
//! use std::time::Duration;
//!
//! let spec = CampaignSpec {
//!     name: "doc-smoke".into(),
//!     benchmarks: vec!["ex1010".into()],
//!     scale: 400,
//!     levels: vec![0.2],
//!     schemes: vec![CamoScheme::InvBuf],
//!     timeout: Duration::from_secs(30),
//!     threads: 2,
//!     ..Default::default()
//! };
//! let report = Campaign::run(&spec).unwrap();
//! assert_eq!(report.rows.len(), 1);
//! ```
//!
//! ## Spec file format
//!
//! [`CampaignSpec::parse_toml`] reads a minimal TOML subset: `key = value`
//! lines, `#` comments, double-quoted strings, and one-line homogeneous
//! arrays. A single optional `[campaign]` table header is accepted and
//! ignored. Keys (all optional, defaults in parentheses):
//!
//! ```toml
//! [campaign]
//! name = "table4"            # report name ("campaign")
//! benchmarks = ["c7552", "suite:itc99"]  # names, suite:<name>, or "all"
//! scale = 20                 # benchmark scale divisor (20)
//! levels = [0.1, 0.2]        # protection fractions ([0.2])
//! schemes = ["gshe16"]       # scheme names, or "all" (["gshe16"])
//! attacks = ["sat"]          # sat | double-dip | appsat (["sat"])
//! error_rates = [0.0, 0.05]  # oracle per-cell error rates ([0.0])
//! clock_periods_ns = [0.8, 2] # physical clock periods as rate sources ([])
//! profiles = ["uniform"]     # error-profile shapes, or "all" (["uniform"])
//! rotation_periods = [0, 16] # dynamic-camouflaging periods ([0])
//! trials = 3                 # repeats per grid cell (1)
//! seed = 1                   # master seed (1)
//! timeout_secs = 60          # per-job attack budget (60)
//! threads = 0                # workers; 0 = available parallelism (0)
//! ```
//!
//! Scheme names: `look-alike`, `stt-lut`, `sinw`, `inv-buf`, `four-fn`,
//! `dwm`, `gshe16`.
//!
//! Profile names: `uniform` (every cloaked cell at the rate),
//! `output-cone` (only cloaked cells in the deepest output's fanin cone),
//! `depth-gradient` (rate scaled by logic level). Profiles describe *how*
//! each rate spreads over the cloaked cells; their oracles run on the
//! bit-parallel [`gshe_logic::FaultSimulator`] noise engine.
//!
//! `clock_periods_ns` sweeps *physical* operating points: each period's
//! per-cell rate is derived from the device Monte Carlo at the nominal
//! drive current ([`physical::ClockRateTable`], one memoized sweep per
//! distinct period), then spread by the profile shapes exactly like an
//! abstract rate. Rows carry the period as `clock_ns` (implicit when 0).
//!
//! Rotation periods sweep the *dynamic camouflaging* defense (Sec. V-C):
//! `0` is the static oracle the grid always had, `n > 0` stacks a
//! rotation layer that draws a fresh random key every `n` queries.
//! Jobs materialize one [`gshe_attacks::OracleStack`] per cell, built
//! from the cell's dimensions, so `rotation_periods × rates × profiles`
//! is a full grid: cells with both a period and a nonzero rate attack
//! the **combined defense** ([`gshe_attacks::OracleStack::rotating_noisy`]
//! — rotation layered over the noisy base). Rows and CSV carry the
//! period, and JSON leaves period 0 implicit so pre-existing
//! deterministic reports stay byte-identical.
//!
//! ## Determinism contract
//!
//! [`CampaignReport::deterministic_json`] is a pure function of the spec:
//! byte-identical across `threads = 1` and `threads = N` runs. Wall-clock
//! metrics (runtime percentiles, cache hit counts) live only in the full
//! [`CampaignReport::to_json`] flavor.
//!
//! One caveat: job *statuses* are part of the deterministic output, and a
//! wall-clock timeout is decided by the clock — the paper's t-o semantics.
//! A job whose real runtime sits near its budget can therefore flip
//! between `Completed` and `TimedOut` under CPU contention (e.g.
//! oversubscribed workers on few cores). The contract holds whenever
//! budgets are comfortably above or below actual runtimes; for strict
//! scheduling-independence set `AttackConfig::max_iterations` /
//! conflict budgets instead of tight wall clocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod cache;
pub mod job;
pub mod physical;
pub mod pool;
pub mod report;
pub mod spec;

pub use aggregate::{CellKey, DeviceRow, TableRow};
pub use cache::{netlist_fingerprint, CacheLayer, CachedOracle, OracleCache};
pub use job::{
    noise_profile, run_job, AttackSeeds, JobContext, JobKind, JobResult, JobSpec, JobStatus,
    NoiseShape,
};
pub use physical::ClockRateTable;
pub use report::CampaignReport;
pub use spec::{
    parse_scheme, scheme_name, valid_attack_names, valid_key_names, valid_profile_names,
    valid_scheme_names, CampaignSpec, SPEC_KEYS,
};

use gshe_device::SwitchParams;
use gshe_logic::suites;
use std::sync::Arc;
use std::time::Instant;

/// A named, shareable benchmark netlist (one [`JobContext`] entry).
type NamedNetlist = (String, Arc<gshe_logic::Netlist>);

/// The engine: expands a spec and drives its jobs through the pool.
#[derive(Debug)]
pub struct Campaign;

impl Campaign {
    /// Runs a full campaign described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec cannot be expanded (unknown
    /// benchmark selector). Individual job failures do *not* abort the
    /// campaign; they surface as [`JobStatus::Failed`] results.
    pub fn run(spec: &CampaignSpec) -> Result<CampaignReport, String> {
        let jobs = spec.expand()?;
        Self::run_jobs(spec, jobs)
    }

    /// Runs an explicit job list under `spec`'s shared knobs (name, scale,
    /// seed, threads). This is the entry point for harnesses that need a
    /// historical seed derivation instead of [`CampaignSpec::expand`]'s.
    ///
    /// # Errors
    ///
    /// Returns a message when a job references a benchmark that cannot be
    /// instantiated.
    pub fn run_jobs(spec: &CampaignSpec, jobs: Vec<JobSpec>) -> Result<CampaignReport, String> {
        let start = Instant::now();
        let threads = if spec.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            spec.threads
        };

        // Instantiate each referenced benchmark once, shared via Arc.
        // Name resolution is cheap and happens up front (so unknown
        // benchmarks fail before any work); the generation itself can be
        // minutes of work at low scale divisors, so it runs through the
        // same work-stealing pool as the jobs.
        let mut referenced: Vec<(String, &'static suites::BenchmarkSpec)> = Vec::new();
        for job in &jobs {
            if let JobKind::Attack { benchmark, .. } = &job.kind {
                if referenced.iter().any(|(n, _)| n == benchmark) {
                    continue;
                }
                let bench_spec = suites::spec(benchmark)
                    .ok_or_else(|| format!("unknown benchmark `{benchmark}`"))?;
                referenced.push((benchmark.clone(), bench_spec));
            }
        }
        let gen_tasks: Vec<Box<dyn FnOnce() -> NamedNetlist + Send>> = referenced
            .into_iter()
            .map(|(name, bench_spec)| {
                let (scale, seed) = (spec.scale, spec.seed);
                Box::new(move || {
                    let nl = suites::benchmark_scaled(bench_spec, scale, seed);
                    (name, Arc::new(nl))
                }) as Box<dyn FnOnce() -> NamedNetlist + Send>
            })
            .collect();
        let netlists = pool::run_all(threads, gen_tasks);

        let ctx = Arc::new(JobContext {
            netlists,
            cache: OracleCache::shared(),
            params: SwitchParams::table_i(),
        });

        let tasks: Vec<Box<dyn FnOnce() -> JobResult + Send>> = jobs
            .into_iter()
            .map(|job| {
                let ctx = Arc::clone(&ctx);
                Box::new(move || run_job(&job, &ctx)) as Box<dyn FnOnce() -> JobResult + Send>
            })
            .collect();
        let results = pool::run_all(threads, tasks);

        let (hits, misses) = ctx.cache.stats();
        Ok(CampaignReport::new(
            spec.name.clone(),
            results,
            threads,
            start.elapsed(),
            (hits, misses, ctx.cache.entries()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_attacks::AttackKind;
    use gshe_camo::CamoScheme;
    use std::time::Duration;

    fn tiny_spec(threads: usize) -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            benchmarks: vec!["ex1010".into()],
            scale: 400, // floors to 64 gates, 32 inputs
            levels: vec![0.15],
            schemes: vec![CamoScheme::InvBuf, CamoScheme::FourFn],
            attacks: vec![AttackKind::Sat],
            error_rates: vec![0.0],
            clock_periods_ns: Vec::new(),
            profiles: vec![job::NoiseShape::Uniform],
            rotation_periods: vec![0],
            trials: 1,
            seed: 5,
            timeout: Duration::from_secs(30),
            threads,
        }
    }

    #[test]
    fn small_campaign_completes_and_aggregates() {
        let report = Campaign::run(&tiny_spec(2)).unwrap();
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert_eq!(row.trials, 1);
            assert_eq!(row.status_counts[0], 1, "expected completion: {row:?}");
            assert_eq!(row.key_recovery_rate, 1.0);
        }
    }

    #[test]
    fn unknown_selector_is_an_error() {
        let mut spec = tiny_spec(1);
        spec.benchmarks = vec!["zzz".into()];
        assert!(Campaign::run(&spec).is_err());
    }
}
