//! # gshe-campaign
//!
//! A sharded, multi-threaded **campaign engine** orchestrating
//! protect→attack→measure experiments at scale. The paper's evaluation
//! (Tables II–IV, Figs. 4–6) is a grid of campaigns — many netlists ×
//! camouflaging schemes × attack configurations × stochastic error rates —
//! and this crate turns that grid into a first-class object instead of a
//! hand-rolled loop per harness binary:
//!
//! * [`CampaignSpec`] — the declarative grid (benchmark suite × scheme
//!   grid × attack grid × error-rate sweep, with seeds and budgets);
//! * [`CampaignSpec::expand`] — unrolls the grid into [`JobSpec`]s whose
//!   RNG seeds derive from the campaign seed and each job's *identity*
//!   (never execution order), so results are reproducible at any thread
//!   count;
//! * [`pool`] — a work-stealing thread pool (std-only) executing jobs with
//!   per-job wall-clock budgets; a job that exhausts its budget is marked
//!   [`JobStatus::TimedOut`] instead of wedging the pool;
//! * [`cache`] — the oracle stack's caching layer: a sharded,
//!   campaign-wide oracle-response cache with **block-level** keys
//!   (netlist fingerprint + packed 64-pattern block), so no block is
//!   simulated — or hashed pattern-at-a-time — twice across jobs;
//! * [`physical`] — device-derived operating points: the memoized
//!   clock-period → error-rate table behind the `clock_periods_ns` grid
//!   dimension (and the historical `gshe_core::stochastic` derivation
//!   functions, which live here so campaigns can use them);
//! * [`aggregate`]/[`report`] — reduce raw job results into the paper's
//!   table rows (key-recovery rate, query counts, output-error rate,
//!   runtime percentiles) and serialize them to JSON or CSV;
//! * [`EvalSession`] — the persistent **evaluation service** behind it
//!   all: a long-lived worker pool plus session-wide oracle cache and
//!   memoized benchmark/scheme materializations, so repeated scoring
//!   calls (many specs, or a profile search's candidate stream) stop
//!   re-spawning threads and re-parsing netlists;
//! * [`search`] — the defender's inverse problem on top of the service:
//!   [`ProfileSearch`] (1+λ)-evolves dense per-switch error-rate vectors
//!   toward the cheapest profile that still defeats the attacks, and
//!   reports the Pareto front.
//!
//! ## Quick start
//!
//! ```
//! use gshe_campaign::{Campaign, CampaignSpec};
//! use gshe_camo::CamoScheme;
//! use std::time::Duration;
//!
//! let spec = CampaignSpec {
//!     name: "doc-smoke".into(),
//!     benchmarks: vec!["ex1010".into()],
//!     scale: 400,
//!     levels: vec![0.2],
//!     schemes: vec![CamoScheme::InvBuf],
//!     timeout: Duration::from_secs(30),
//!     threads: 2,
//!     ..Default::default()
//! };
//! let report = Campaign::run(&spec).unwrap();
//! assert_eq!(report.rows.len(), 1);
//! ```
//!
//! ## Spec file format
//!
//! [`CampaignSpec::parse_toml`] reads a minimal TOML subset: `key = value`
//! lines, `#` comments, double-quoted strings, and one-line homogeneous
//! arrays. A single optional `[campaign]` table header is accepted and
//! ignored. Keys (all optional, defaults in parentheses):
//!
//! ```toml
//! [campaign]
//! name = "table4"            # report name ("campaign")
//! benchmarks = ["c7552", "suite:itc99"]  # names, suite:<name>, or "all"
//! scale = 20                 # benchmark scale divisor (20)
//! levels = [0.1, 0.2]        # protection fractions ([0.2])
//! schemes = ["gshe16"]       # scheme names, or "all" (["gshe16"])
//! attacks = ["sat"]          # sat | double-dip | appsat (["sat"])
//! error_rates = [0.0, 0.05]  # oracle per-cell error rates ([0.0])
//! clock_periods_ns = [0.8, 2] # physical clock periods as rate sources ([])
//! profiles = ["uniform"]     # error-profile shapes, or "all" (["uniform"])
//! rotation_periods = [0, 16] # dynamic-camouflaging periods ([0])
//! trials = 3                 # repeats per grid cell (1)
//! seed = 1                   # master seed (1)
//! timeout_secs = 60          # per-job attack budget (60)
//! threads = 0                # workers; 0 = available parallelism (0)
//! ```
//!
//! Scheme names: `look-alike`, `stt-lut`, `sinw`, `inv-buf`, `four-fn`,
//! `dwm`, `gshe16`.
//!
//! Profile names: `uniform` (every cloaked cell at the rate),
//! `output-cone` (only cloaked cells in the deepest output's fanin cone),
//! `depth-gradient` (rate scaled by logic level). Profiles describe *how*
//! each rate spreads over the cloaked cells; their oracles run on the
//! bit-parallel [`gshe_logic::FaultSimulator`] noise engine.
//!
//! `clock_periods_ns` sweeps *physical* operating points: each period's
//! per-cell rate is derived from the device Monte Carlo at the nominal
//! drive current ([`physical::ClockRateTable`], one memoized sweep per
//! distinct period), then spread by the profile shapes exactly like an
//! abstract rate. Rows carry the period as `clock_ns` (implicit when 0).
//!
//! Rotation periods sweep the *dynamic camouflaging* defense (Sec. V-C):
//! `0` is the static oracle the grid always had, `n > 0` stacks a
//! rotation layer that draws a fresh random key every `n` queries.
//! Jobs materialize one [`gshe_attacks::OracleStack`] per cell, built
//! from the cell's dimensions, so `rotation_periods × rates × profiles`
//! is a full grid: cells with both a period and a nonzero rate attack
//! the **combined defense** ([`gshe_attacks::OracleStack::rotating_noisy`]
//! — rotation layered over the noisy base). Rows and CSV carry the
//! period, and JSON leaves period 0 implicit so pre-existing
//! deterministic reports stay byte-identical.
//!
//! ## Determinism contract
//!
//! [`CampaignReport::deterministic_json`] is a pure function of the spec:
//! byte-identical across `threads = 1` and `threads = N` runs. Wall-clock
//! metrics (runtime percentiles, cache hit counts) live only in the full
//! [`CampaignReport::to_json`] flavor.
//!
//! One caveat: job *statuses* are part of the deterministic output, and a
//! wall-clock timeout is decided by the clock — the paper's t-o semantics.
//! A job whose real runtime sits near its budget can therefore flip
//! between `Completed` and `TimedOut` under CPU contention (e.g.
//! oversubscribed workers on few cores). The contract holds whenever
//! budgets are comfortably above or below actual runtimes; for strict
//! scheduling-independence set `AttackConfig::max_iterations` /
//! conflict budgets instead of tight wall clocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod cache;
pub mod job;
pub mod physical;
pub mod pool;
pub mod report;
pub mod search;
pub mod spec;

pub use aggregate::{CellKey, DeviceRow, TableRow};
pub use cache::{netlist_fingerprint, CacheLayer, CachedOracle, OracleCache};
pub use job::{
    noise_profile, run_job, select_seed, transform_seed, AttackSeeds, JobContext, JobKind,
    JobResult, JobSpec, JobStatus, KeyedMemo, NoiseShape,
};
pub use physical::ClockRateTable;
pub use pool::{pool_summary, WorkerPool, WorkerStats};
pub use report::CampaignReport;
pub use search::{Candidate, ProfileSearch, ScoredCandidate, SearchReport, SearchSpec};
pub use spec::{
    parse_scheme, scheme_name, valid_attack_names, valid_key_names, valid_profile_names,
    valid_scheme_names, CampaignSpec, SPEC_KEYS,
};

use gshe_camo::KeyedNetlist;
use gshe_device::SwitchParams;
use gshe_logic::{suites, Netlist};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A named, shareable benchmark netlist (one [`JobContext`] entry).
type NamedNetlist = (String, Arc<Netlist>);

/// Memo key for one materialized benchmark: (name, scale divisor, seed).
type NetlistKey = (String, usize, u64);

/// Resolves a thread-count knob (0 = available parallelism).
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// A long-lived **evaluation service**: the persistent machinery one-shot
/// campaign runs used to rebuild per call — worker threads, the shared
/// block-level [`OracleCache`], and memoized benchmark / scheme
/// materializations — extracted so repeated scoring calls (a profile
/// search evaluates hundreds of candidates; a harness sweeps many specs)
/// pay for thread spawn, netlist generation, and camouflaging once per
/// *session* instead of once per *run*.
///
/// [`Campaign::run`] is a thin one-session wrapper; its output is
/// byte-identical whether jobs run through a fresh or a warm session
/// (memoization only skips recomputing deterministic values, and
/// cache/timing stats are per-run deltas).
pub struct EvalSession {
    pool: pool::WorkerPool,
    cache: Arc<OracleCache>,
    netlists: Mutex<Vec<(NetlistKey, Arc<Netlist>)>>,
    keyed: Arc<job::KeyedMemo>,
    params: SwitchParams,
}

impl std::fmt::Debug for EvalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSession")
            .field("threads", &self.threads())
            .field("cached_netlists", &self.cached_netlists())
            .field("cached_keyed", &self.cached_keyed())
            .finish()
    }
}

impl EvalSession {
    /// A session with `threads` workers (0 = available parallelism) and an
    /// unbounded oracle cache.
    pub fn new(threads: usize) -> Self {
        Self::with_cache_cap(threads, 0)
    }

    /// A session whose oracle cache is bounded to `cache_cap` entries
    /// (0 = unbounded) — long-lived sessions scoring open-ended candidate
    /// streams should set a cap so the cache cannot grow without bound.
    pub fn with_cache_cap(threads: usize, cache_cap: u64) -> Self {
        EvalSession {
            pool: pool::WorkerPool::new(resolve_threads(threads)),
            cache: OracleCache::shared_with_cap(cache_cap),
            netlists: Mutex::new(Vec::new()),
            keyed: Arc::new(job::KeyedMemo::default()),
            params: SwitchParams::table_i(),
        }
    }

    /// Worker threads the session runs on.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The session-wide oracle cache.
    pub fn cache(&self) -> &Arc<OracleCache> {
        &self.cache
    }

    /// Benchmarks materialized so far.
    pub fn cached_netlists(&self) -> usize {
        self.netlists.lock().unwrap().len()
    }

    /// Scheme materializations memoized so far.
    pub fn cached_keyed(&self) -> usize {
        self.keyed.len()
    }

    /// Runs an arbitrary task batch on the session's worker pool, results
    /// in submission order (the [`pool::WorkerPool::run_all`] contract).
    /// This is the raw entry point the profile search scores candidates
    /// through; campaign runs use [`EvalSession::run`].
    pub fn run_tasks<R: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> R + Send>>,
    ) -> Vec<R> {
        self.pool.run_all(tasks)
    }

    /// The benchmark netlist for `(name, scale, seed)`, generated through
    /// the worker pool on first use and memoized for the session's
    /// lifetime.
    ///
    /// # Errors
    ///
    /// Returns a message when `name` resolves to no known benchmark.
    pub fn netlist(&self, name: &str, scale: usize, seed: u64) -> Result<Arc<Netlist>, String> {
        Ok(self
            .materialize_netlists(&[name.to_string()], scale, seed)?
            .remove(0)
            .1)
    }

    /// The keyed (camouflaged) netlist for the given materialization
    /// identity, memoized for the session's lifetime.
    ///
    /// # Errors
    ///
    /// Propagates benchmark resolution and camouflage failures.
    pub fn keyed(
        &self,
        name: &str,
        scale: usize,
        seed: u64,
        level: f64,
        scheme: gshe_camo::CamoScheme,
        seeds: &AttackSeeds,
    ) -> Result<Arc<KeyedNetlist>, String> {
        let nl = self.netlist(name, scale, seed)?;
        self.keyed.get_or_materialize(&nl, level, scheme, seeds)
    }

    /// Materializes every benchmark in `names` (memoized), generating the
    /// missing ones in parallel through the pool. Returns entries in
    /// `names` order.
    fn materialize_netlists(
        &self,
        names: &[String],
        scale: usize,
        seed: u64,
    ) -> Result<Vec<NamedNetlist>, String> {
        // Resolve every name up front so unknown benchmarks fail before
        // any generation work.
        let mut missing: Vec<(String, &'static suites::BenchmarkSpec)> = Vec::new();
        {
            let memo = self.netlists.lock().unwrap();
            for name in names {
                let key = (name.clone(), scale, seed);
                if memo.iter().any(|(k, _)| *k == key) || missing.iter().any(|(n, _)| n == name) {
                    continue;
                }
                let bench_spec =
                    suites::spec(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
                missing.push((name.clone(), bench_spec));
            }
        }
        // Generation can be minutes of work at low scale divisors, so it
        // runs through the same work-stealing pool as the jobs (and
        // outside the memo lock).
        let gen_tasks: Vec<Box<dyn FnOnce() -> NamedNetlist + Send>> = missing
            .into_iter()
            .map(|(name, bench_spec)| {
                Box::new(move || {
                    let _span = gshe_obs::span("session.materialize");
                    let nl = suites::benchmark_scaled(bench_spec, scale, seed);
                    (name, Arc::new(nl))
                }) as Box<dyn FnOnce() -> NamedNetlist + Send>
            })
            .collect();
        let generated = self.pool.run_all(gen_tasks);
        let mut memo = self.netlists.lock().unwrap();
        for (name, nl) in generated {
            let key = (name.clone(), scale, seed);
            if !memo.iter().any(|(k, _)| *k == key) {
                memo.push((key, nl));
            }
        }
        Ok(names
            .iter()
            .map(|name| {
                let key = (name.clone(), scale, seed);
                let nl = memo
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, nl)| Arc::clone(nl))
                    .expect("materialized above");
                (name.clone(), nl)
            })
            .collect())
    }

    /// Runs a full campaign described by `spec` on this session.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec cannot be expanded (unknown
    /// benchmark selector). Individual job failures do *not* abort the
    /// campaign; they surface as [`JobStatus::Failed`] results.
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignReport, String> {
        let jobs = spec.expand()?;
        self.run_jobs(spec, jobs)
    }

    /// Runs an explicit job list under `spec`'s shared knobs (name, scale,
    /// seed). This is the entry point for harnesses that need a historical
    /// seed derivation instead of [`CampaignSpec::expand`]'s.
    ///
    /// The spec's `threads` knob is ignored here — the session's pool is
    /// already sized; reported cache stats are per-run deltas, so a warm
    /// session reports the same shape a fresh one does.
    ///
    /// # Errors
    ///
    /// Returns a message when a job references a benchmark that cannot be
    /// instantiated.
    pub fn run_jobs(
        &self,
        spec: &CampaignSpec,
        jobs: Vec<JobSpec>,
    ) -> Result<CampaignReport, String> {
        let start = Instant::now();
        let (hits_before, misses_before) = self.cache.stats();
        let pool_before = self.pool.worker_stats();

        let mut referenced: Vec<String> = Vec::new();
        for job in &jobs {
            if let JobKind::Attack { benchmark, .. } = &job.kind {
                if !referenced.iter().any(|n| n == benchmark) {
                    referenced.push(benchmark.clone());
                }
            }
        }
        let netlists = self.materialize_netlists(&referenced, spec.scale, spec.seed)?;

        let ctx = Arc::new(JobContext {
            netlists,
            cache: Arc::clone(&self.cache),
            params: self.params,
            keyed: Arc::clone(&self.keyed),
        });

        let tasks: Vec<Box<dyn FnOnce() -> JobResult + Send>> = jobs
            .into_iter()
            .map(|job| {
                let ctx = Arc::clone(&ctx);
                Box::new(move || run_job(&job, &ctx)) as Box<dyn FnOnce() -> JobResult + Send>
            })
            .collect();
        let results = self.pool.run_all(tasks);

        let (hits, misses) = self.cache.stats();
        let pool_deltas: Vec<pool::WorkerStats> = self
            .pool
            .worker_stats()
            .iter()
            .zip(&pool_before)
            .map(|(now, then)| now.delta_from(then))
            .collect();
        Ok(CampaignReport::new(
            spec.name.clone(),
            results,
            self.threads(),
            start.elapsed(),
            (
                hits - hits_before,
                misses - misses_before,
                self.cache.entries(),
            ),
        )
        .with_pool_stats(pool_deltas))
    }
}

/// The engine: expands a spec and drives its jobs through the pool.
#[derive(Debug)]
pub struct Campaign;

impl Campaign {
    /// Runs a full campaign described by `spec` on a fresh one-shot
    /// [`EvalSession`]. Long-lived callers (harnesses sweeping many specs,
    /// the profile search) should hold a session and call
    /// [`EvalSession::run`] instead.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec cannot be expanded (unknown
    /// benchmark selector). Individual job failures do *not* abort the
    /// campaign; they surface as [`JobStatus::Failed`] results.
    pub fn run(spec: &CampaignSpec) -> Result<CampaignReport, String> {
        EvalSession::new(spec.threads).run(spec)
    }

    /// Runs an explicit job list under `spec`'s shared knobs on a fresh
    /// one-shot [`EvalSession`] (see [`EvalSession::run_jobs`]).
    ///
    /// # Errors
    ///
    /// Returns a message when a job references a benchmark that cannot be
    /// instantiated.
    pub fn run_jobs(spec: &CampaignSpec, jobs: Vec<JobSpec>) -> Result<CampaignReport, String> {
        EvalSession::new(spec.threads).run_jobs(spec, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_attacks::AttackKind;
    use gshe_camo::CamoScheme;
    use std::time::Duration;

    fn tiny_spec(threads: usize) -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            benchmarks: vec!["ex1010".into()],
            scale: 400, // floors to 64 gates, 32 inputs
            levels: vec![0.15],
            schemes: vec![CamoScheme::InvBuf, CamoScheme::FourFn],
            attacks: vec![AttackKind::Sat],
            error_rates: vec![0.0],
            clock_periods_ns: Vec::new(),
            profiles: vec![job::NoiseShape::Uniform],
            rotation_periods: vec![0],
            trials: 1,
            seed: 5,
            timeout: Duration::from_secs(30),
            threads,
        }
    }

    #[test]
    fn small_campaign_completes_and_aggregates() {
        let report = Campaign::run(&tiny_spec(2)).unwrap();
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert_eq!(row.trials, 1);
            assert_eq!(row.status_counts[0], 1, "expected completion: {row:?}");
            assert_eq!(row.key_recovery_rate, 1.0);
        }
    }

    #[test]
    fn unknown_selector_is_an_error() {
        let mut spec = tiny_spec(1);
        spec.benchmarks = vec!["zzz".into()];
        assert!(Campaign::run(&spec).is_err());
        assert!(EvalSession::new(1).netlist("zzz", 20, 1).is_err());
    }

    #[test]
    fn warm_session_reuses_materializations_and_reports_identically() {
        // The EvalSession contract: a second run on a warm session redoes
        // no netlist generation or camouflaging, reports per-run cache
        // deltas, and emits byte-identical deterministic JSON.
        let spec = tiny_spec(2);
        let session = EvalSession::new(2);
        let first = session.run(&spec).unwrap();
        assert_eq!(session.cached_netlists(), 1);
        let keyed_after_first = session.cached_keyed();
        assert_eq!(keyed_after_first, 2, "one materialization per scheme");

        let second = session.run(&spec).unwrap();
        assert_eq!(session.cached_netlists(), 1, "netlist memo must hit");
        assert_eq!(
            session.cached_keyed(),
            keyed_after_first,
            "keyed memo must hit"
        );
        assert_eq!(first.deterministic_json(), second.deterministic_json());
        // Deterministic cells replay their query streams: the warm run
        // answers from the session cache (all hits, no misses).
        assert_eq!(second.cache_misses, 0, "{second:?}");
        assert!(second.cache_hits > 0);

        // And the one-shot wrapper agrees byte-for-byte with both.
        let fresh = Campaign::run(&spec).unwrap();
        assert_eq!(fresh.deterministic_json(), first.deterministic_json());
    }
}
