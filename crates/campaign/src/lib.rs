//! # gshe-campaign
//!
//! A sharded, multi-threaded **campaign engine** orchestrating
//! protect→attack→measure experiments at scale. The paper's evaluation
//! (Tables II–IV, Figs. 4–6) is a grid of campaigns — many netlists ×
//! camouflaging schemes × attack configurations × stochastic error rates —
//! and this crate turns that grid into a first-class object instead of a
//! hand-rolled loop per harness binary:
//!
//! * [`CampaignSpec`] — the declarative grid (benchmark suite × scheme
//!   grid × attack grid × error-rate sweep, with seeds and budgets);
//! * [`CampaignSpec::expand`] — unrolls the grid into [`JobSpec`]s whose
//!   RNG seeds derive from the campaign seed and each job's *identity*
//!   (never execution order), so results are reproducible at any thread
//!   count;
//! * [`pool`] — a work-stealing thread pool (std-only) executing jobs with
//!   per-job wall-clock budgets; a job that exhausts its budget is marked
//!   [`JobStatus::TimedOut`] instead of wedging the pool;
//! * [`cache`] — the oracle stack's caching layer: a sharded,
//!   campaign-wide oracle-response cache with **block-level** keys
//!   (netlist fingerprint + packed 64-pattern block), so no block is
//!   simulated — or hashed pattern-at-a-time — twice across jobs;
//! * [`physical`] — device-derived operating points: the memoized
//!   clock-period → error-rate table behind the `clock_periods_ns` grid
//!   dimension (and the historical `gshe_core::stochastic` derivation
//!   functions, which live here so campaigns can use them);
//! * [`aggregate`]/[`report`] — reduce raw job results into the paper's
//!   table rows (key-recovery rate, query counts, output-error rate,
//!   runtime percentiles) and serialize them to JSON or CSV;
//! * [`EvalSession`] — the persistent **evaluation service** behind it
//!   all: a long-lived worker pool plus session-wide oracle cache and
//!   memoized benchmark/scheme materializations, so repeated scoring
//!   calls (many specs, or a profile search's candidate stream) stop
//!   re-spawning threads and re-parsing netlists;
//! * [`search`] — the defender's inverse problem on top of the service:
//!   [`ProfileSearch`] (1+λ)-evolves dense per-switch error-rate vectors
//!   toward the cheapest profile that still defeats the attacks, and
//!   reports the Pareto front.
//!
//! ## Quick start
//!
//! ```
//! use gshe_campaign::{Campaign, CampaignSpec};
//! use gshe_camo::CamoScheme;
//! use std::time::Duration;
//!
//! let spec = CampaignSpec {
//!     name: "doc-smoke".into(),
//!     benchmarks: vec!["ex1010".into()],
//!     scale: 400,
//!     levels: vec![0.2],
//!     schemes: vec![CamoScheme::InvBuf],
//!     timeout: Duration::from_secs(30),
//!     threads: 2,
//!     ..Default::default()
//! };
//! let report = Campaign::run(&spec).unwrap();
//! assert_eq!(report.rows.len(), 1);
//! ```
//!
//! ## Spec file format
//!
//! [`CampaignSpec::parse_toml`] reads a minimal TOML subset: `key = value`
//! lines, `#` comments, double-quoted strings, and one-line homogeneous
//! arrays. A single optional `[campaign]` table header is accepted and
//! ignored. Keys (all optional, defaults in parentheses):
//!
//! ```toml
//! [campaign]
//! name = "table4"            # report name ("campaign")
//! benchmarks = ["c7552", "suite:itc99"]  # names, suite:<name>, "all",
//!                            # or `.aag` file paths (AIGER frontend)
//! scale = 20                 # benchmark scale divisor (20)
//! topology = "local"         # generator wiring: uniform | local ("uniform")
//! levels = [0.1, 0.2]        # protection fractions ([0.2])
//! schemes = ["gshe16"]       # scheme names, or "all" (["gshe16"])
//! attacks = ["sat"]          # sat | double-dip | appsat (["sat"])
//! coi_mode = "auto:20000"    # cone-of-influence gating: auto | auto:<n>
//!                            # | on | off ("auto")
//! sat_simplify = "auto"      # solver pre/inprocessing + single-sided
//!                            # encoding: auto | auto:<clauses> | on | off
//!                            # ("auto")
//! error_rates = [0.0, 0.05]  # oracle per-cell error rates ([0.0])
//! clock_periods_ns = [0.8, 2] # physical clock periods as rate sources ([])
//! profiles = ["uniform"]     # error-profile shapes, or "all" (["uniform"])
//! rotation_periods = [0, 16] # dynamic-camouflaging periods ([0])
//! trials = 3                 # repeats per grid cell (1)
//! seed = 1                   # master seed (1)
//! timeout_secs = 60          # per-job attack budget (60)
//! threads = 0                # workers; 0 = available parallelism (0)
//! memo_budget_mb = 256.5     # streaming memo budget, MiB; 0 = unbounded (0)
//! ```
//!
//! Scheme names: `look-alike`, `stt-lut`, `sinw`, `inv-buf`, `four-fn`,
//! `dwm`, `gshe16`.
//!
//! Profile names: `uniform` (every cloaked cell at the rate),
//! `output-cone` (only cloaked cells in the deepest output's fanin cone),
//! `depth-gradient` (rate scaled by logic level). Profiles describe *how*
//! each rate spreads over the cloaked cells; their oracles run on the
//! bit-parallel [`gshe_logic::FaultSimulator`] noise engine.
//!
//! `clock_periods_ns` sweeps *physical* operating points: each period's
//! per-cell rate is derived from the device Monte Carlo at the nominal
//! drive current ([`physical::ClockRateTable`], one memoized sweep per
//! distinct period), then spread by the profile shapes exactly like an
//! abstract rate. Rows carry the period as `clock_ns` (implicit when 0).
//!
//! Rotation periods sweep the *dynamic camouflaging* defense (Sec. V-C):
//! `0` is the static oracle the grid always had, `n > 0` stacks a
//! rotation layer that draws a fresh random key every `n` queries.
//! Jobs materialize one [`gshe_attacks::OracleStack`] per cell, built
//! from the cell's dimensions, so `rotation_periods × rates × profiles`
//! is a full grid: cells with both a period and a nonzero rate attack
//! the **combined defense** ([`gshe_attacks::OracleStack::rotating_noisy`]
//! — rotation layered over the noisy base). Rows and CSV carry the
//! period, and JSON leaves period 0 implicit so pre-existing
//! deterministic reports stay byte-identical.
//!
//! ## Determinism contract
//!
//! [`CampaignReport::deterministic_json`] is a pure function of the spec:
//! byte-identical across `threads = 1` and `threads = N` runs. Wall-clock
//! metrics (runtime percentiles, cache hit counts) live only in the full
//! [`CampaignReport::to_json`] flavor.
//!
//! One caveat: job *statuses* are part of the deterministic output, and a
//! wall-clock timeout is decided by the clock — the paper's t-o semantics.
//! A job whose real runtime sits near its budget can therefore flip
//! between `Completed` and `TimedOut` under CPU contention (e.g.
//! oversubscribed workers on few cores). The contract holds whenever
//! budgets are comfortably above or below actual runtimes; for strict
//! scheduling-independence set `AttackConfig::max_iterations` /
//! conflict budgets instead of tight wall clocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod cache;
pub mod job;
pub mod physical;
pub mod pool;
pub mod report;
pub mod search;
pub mod spec;

pub use aggregate::{CellKey, DeviceRow, TableRow};
pub use cache::{netlist_fingerprint, CacheLayer, CachedOracle, OracleCache};
pub use job::{
    noise_profile, run_job, select_seed, transform_seed, AttackSeeds, JobContext, JobKind,
    JobResult, JobSpec, JobStatus, KeyedMemo, NoiseShape,
};
pub use physical::ClockRateTable;
pub use pool::{pool_summary, WorkerPool, WorkerStats};
pub use report::CampaignReport;
pub use search::{Candidate, ProfileSearch, ScoredCandidate, SearchReport, SearchSpec};
pub use spec::{
    parse_scheme, scheme_name, valid_attack_names, valid_key_names, valid_profile_names,
    valid_scheme_names, CampaignSpec, SPEC_KEYS,
};

use gshe_camo::KeyedNetlist;
use gshe_device::SwitchParams;
use gshe_logic::{suites, Netlist, Topology};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A named, shareable benchmark netlist (one [`JobContext`] entry).
type NamedNetlist = (String, Arc<Netlist>);

/// Memo key for one materialized benchmark: (name, scale divisor, seed,
/// topology profile).
type NetlistKey = (String, usize, u64, Topology);

/// Where a benchmark name materializes from: the synthetic generator
/// (a [`suites`] spec) or an on-disk AIGER `.aag` file, whose text is
/// read eagerly so I/O failures surface before any generation work.
enum NetlistSource {
    /// Generator-backed benchmark (the historical suites).
    Spec(&'static suites::BenchmarkSpec),
    /// File-backed benchmark: the raw `.aag` document.
    Aag(String),
}

impl NetlistSource {
    /// Resolves `name`: `.aag` paths load from disk, everything else must
    /// be a known suites benchmark.
    fn resolve(name: &str) -> Result<NetlistSource, String> {
        if name.ends_with(".aag") {
            let text = std::fs::read_to_string(name)
                .map_err(|e| format!("cannot read AIGER benchmark `{name}`: {e}"))?;
            Ok(NetlistSource::Aag(text))
        } else {
            suites::spec(name)
                .map(NetlistSource::Spec)
                .ok_or_else(|| format!("unknown benchmark `{name}`"))
        }
    }

    /// Builds the netlist. File-backed benchmarks ignore `scale`/`seed`/
    /// `topology` — their structure is the file's.
    fn build(
        self,
        name: &str,
        scale: usize,
        seed: u64,
        topology: Topology,
    ) -> Result<Netlist, String> {
        match self {
            NetlistSource::Spec(bench_spec) => Ok(suites::benchmark_scaled_with(
                bench_spec, scale, seed, topology,
            )),
            NetlistSource::Aag(text) => gshe_logic::parse_aag(&text)
                .map_err(|e| format!("bad AIGER benchmark `{name}`: {e}")),
        }
    }
}

/// The benchmarks a job list references, in first-reference order (the
/// order streaming admission walks them in).
fn referenced_benchmarks(jobs: &[JobSpec]) -> Vec<String> {
    let mut referenced: Vec<String> = Vec::new();
    for job in jobs {
        if let JobKind::Attack { benchmark, .. } = &job.kind {
            if !referenced.iter().any(|n| n == benchmark) {
                referenced.push(benchmark.clone());
            }
        }
    }
    referenced
}

/// Resolves a thread-count knob (0 = available parallelism).
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// A long-lived **evaluation service**: the persistent machinery one-shot
/// campaign runs used to rebuild per call — worker threads, the shared
/// block-level [`OracleCache`], and memoized benchmark / scheme
/// materializations — extracted so repeated scoring calls (a profile
/// search evaluates hundreds of candidates; a harness sweeps many specs)
/// pay for thread spawn, netlist generation, and camouflaging once per
/// *session* instead of once per *run*.
///
/// [`Campaign::run`] is a thin one-session wrapper; its output is
/// byte-identical whether jobs run through a fresh or a warm session
/// (memoization only skips recomputing deterministic values, and
/// cache/timing stats are per-run deltas).
pub struct EvalSession {
    pool: pool::WorkerPool,
    cache: Arc<OracleCache>,
    netlists: Mutex<Vec<(NetlistKey, Arc<Netlist>)>>,
    keyed: Arc<job::KeyedMemo>,
    params: SwitchParams,
    /// High-water mark of the netlist memo's summed arena bytes, sampled
    /// at every admission and chunk boundary (the memory the streaming
    /// scheduler bounds; keyed materializations ride along per chunk).
    peak_memo: AtomicU64,
}

impl std::fmt::Debug for EvalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSession")
            .field("threads", &self.threads())
            .field("cached_netlists", &self.cached_netlists())
            .field("cached_keyed", &self.cached_keyed())
            .finish()
    }
}

impl EvalSession {
    /// A session with `threads` workers (0 = available parallelism) and an
    /// unbounded oracle cache.
    pub fn new(threads: usize) -> Self {
        Self::with_cache_cap(threads, 0)
    }

    /// A session whose oracle cache is bounded to `cache_cap` entries
    /// (0 = unbounded) — long-lived sessions scoring open-ended candidate
    /// streams should set a cap so the cache cannot grow without bound.
    pub fn with_cache_cap(threads: usize, cache_cap: u64) -> Self {
        EvalSession {
            pool: pool::WorkerPool::new(resolve_threads(threads)),
            cache: OracleCache::shared_with_cap(cache_cap),
            netlists: Mutex::new(Vec::new()),
            keyed: Arc::new(job::KeyedMemo::default()),
            params: SwitchParams::table_i(),
            peak_memo: AtomicU64::new(0),
        }
    }

    /// Worker threads the session runs on.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The session-wide oracle cache.
    pub fn cache(&self) -> &Arc<OracleCache> {
        &self.cache
    }

    /// Benchmarks materialized so far.
    pub fn cached_netlists(&self) -> usize {
        self.netlists.lock().unwrap().len()
    }

    /// Scheme materializations memoized so far.
    pub fn cached_keyed(&self) -> usize {
        self.keyed.len()
    }

    /// High-water mark, in bytes, of the benchmark memo's summed
    /// [`Netlist::arena_bytes`] over the session's lifetime. Under a
    /// `memo_budget_mb` streaming run this is the number the budget
    /// bounds (modulo one carried-over benchmark of slack — see
    /// [`CampaignSpec::memo_budget_mb`]).
    pub fn peak_memo_bytes(&self) -> u64 {
        self.peak_memo.load(Ordering::Relaxed)
    }

    /// Current netlist-memo footprint: summed arena bytes over every
    /// resident materialization.
    fn memo_bytes(&self) -> u64 {
        self.netlists
            .lock()
            .unwrap()
            .iter()
            .map(|(_, nl)| nl.arena_bytes() as u64)
            .sum()
    }

    /// Samples the current memo footprint into the peak gauge.
    fn note_memo_peak(&self) {
        self.peak_memo
            .fetch_max(self.memo_bytes(), Ordering::Relaxed);
    }

    /// Runs an arbitrary task batch on the session's worker pool, results
    /// in submission order (the [`pool::WorkerPool::run_all`] contract).
    /// This is the raw entry point the profile search scores candidates
    /// through; campaign runs use [`EvalSession::run`].
    pub fn run_tasks<R: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> R + Send>>,
    ) -> Vec<R> {
        self.pool.run_all(tasks)
    }

    /// The benchmark netlist for `(name, scale, seed)`, generated through
    /// the worker pool on first use and memoized for the session's
    /// lifetime.
    ///
    /// # Errors
    ///
    /// Returns a message when `name` resolves to no known benchmark.
    pub fn netlist(&self, name: &str, scale: usize, seed: u64) -> Result<Arc<Netlist>, String> {
        self.netlist_with(name, scale, seed, Topology::Uniform)
    }

    /// [`EvalSession::netlist`] with an explicit topology profile for
    /// generator-backed benchmarks (file-backed `.aag` benchmarks ignore
    /// it — their structure is the file's).
    ///
    /// # Errors
    ///
    /// Returns a message when `name` resolves to no known benchmark.
    pub fn netlist_with(
        &self,
        name: &str,
        scale: usize,
        seed: u64,
        topology: Topology,
    ) -> Result<Arc<Netlist>, String> {
        Ok(self
            .materialize_netlists(&[name.to_string()], scale, seed, topology)?
            .remove(0)
            .1)
    }

    /// The keyed (camouflaged) netlist for the given materialization
    /// identity, memoized for the session's lifetime.
    ///
    /// # Errors
    ///
    /// Propagates benchmark resolution and camouflage failures.
    pub fn keyed(
        &self,
        name: &str,
        scale: usize,
        seed: u64,
        level: f64,
        scheme: gshe_camo::CamoScheme,
        seeds: &AttackSeeds,
    ) -> Result<Arc<KeyedNetlist>, String> {
        let nl = self.netlist(name, scale, seed)?;
        self.keyed.get_or_materialize(&nl, level, scheme, seeds)
    }

    /// Materializes every benchmark in `names` (memoized), generating the
    /// missing ones in parallel through the pool. Returns entries in
    /// `names` order.
    fn materialize_netlists(
        &self,
        names: &[String],
        scale: usize,
        seed: u64,
        topology: Topology,
    ) -> Result<Vec<NamedNetlist>, String> {
        // Resolve every name up front so unknown benchmarks (and
        // unreadable `.aag` files) fail before any generation work.
        let mut missing: Vec<(String, NetlistSource)> = Vec::new();
        {
            let memo = self.netlists.lock().unwrap();
            for name in names {
                let key = (name.clone(), scale, seed, topology);
                if memo.iter().any(|(k, _)| *k == key) || missing.iter().any(|(n, _)| n == name) {
                    continue;
                }
                missing.push((name.clone(), NetlistSource::resolve(name)?));
            }
        }
        // Generation can be minutes of work at low scale divisors, so it
        // runs through the same work-stealing pool as the jobs (and
        // outside the memo lock).
        let gen_tasks: Vec<Box<dyn FnOnce() -> Result<NamedNetlist, String> + Send>> = missing
            .into_iter()
            .map(|(name, source)| {
                Box::new(move || {
                    let _span = gshe_obs::span("session.materialize");
                    let nl = source.build(&name, scale, seed, topology)?;
                    Ok((name, Arc::new(nl)))
                }) as Box<dyn FnOnce() -> Result<NamedNetlist, String> + Send>
            })
            .collect();
        let generated = self
            .pool
            .run_all(gen_tasks)
            .into_iter()
            .collect::<Result<Vec<NamedNetlist>, String>>()?;
        let mut memo = self.netlists.lock().unwrap();
        for (name, nl) in generated {
            let key = (name.clone(), scale, seed, topology);
            if !memo.iter().any(|(k, _)| *k == key) {
                memo.push((key, nl));
            }
        }
        let out = names
            .iter()
            .map(|name| {
                let key = (name.clone(), scale, seed, topology);
                let nl = memo
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, nl)| Arc::clone(nl))
                    .expect("materialized above");
                (name.clone(), nl)
            })
            .collect();
        drop(memo);
        self.note_memo_peak();
        Ok(out)
    }

    /// Materializes one benchmark **without** admitting it to the memo —
    /// streaming admission must measure a candidate's arena bytes before
    /// committing memo residency. Returns the resident entry when the
    /// memo already holds one (a warm session).
    fn materialize_one(
        &self,
        name: &str,
        scale: usize,
        seed: u64,
        topology: Topology,
    ) -> Result<NamedNetlist, String> {
        let key = (name.to_string(), scale, seed, topology);
        if let Some(nl) = self
            .netlists
            .lock()
            .unwrap()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, nl)| Arc::clone(nl))
        {
            return Ok((name.to_string(), nl));
        }
        let _span = gshe_obs::span("session.materialize");
        let nl = NetlistSource::resolve(name)?.build(name, scale, seed, topology)?;
        Ok((name.to_string(), Arc::new(nl)))
    }

    /// Admits chunk entries into the netlist memo (idempotent), so the
    /// peak gauge sees exactly the resident set.
    fn admit(&self, chunk: &[NamedNetlist], scale: usize, seed: u64, topology: Topology) {
        let mut memo = self.netlists.lock().unwrap();
        for (name, nl) in chunk {
            let key = (name.clone(), scale, seed, topology);
            if !memo.iter().any(|(k, _)| *k == key) {
                memo.push((key, Arc::clone(nl)));
            }
        }
    }

    /// Releases a finished chunk: drops its netlists from the memo and
    /// evicts every keyed-scheme materialization built over them.
    fn evict(&self, chunk: &[NamedNetlist]) {
        let mut memo = self.netlists.lock().unwrap();
        for (_, nl) in chunk {
            self.keyed.evict_for(nl);
            memo.retain(|(_, resident)| !Arc::ptr_eq(resident, nl));
        }
    }

    /// Runs a full campaign described by `spec` on this session.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec cannot be expanded (unknown
    /// benchmark selector). Individual job failures do *not* abort the
    /// campaign; they surface as [`JobStatus::Failed`] results.
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignReport, String> {
        let jobs = spec.expand()?;
        self.run_jobs(spec, jobs)
    }

    /// Runs an explicit job list under `spec`'s shared knobs (name, scale,
    /// seed). This is the entry point for harnesses that need a historical
    /// seed derivation instead of [`CampaignSpec::expand`]'s.
    ///
    /// The spec's `threads` knob is ignored here — the session's pool is
    /// already sized; reported cache stats are per-run deltas, so a warm
    /// session reports the same shape a fresh one does.
    ///
    /// # Errors
    ///
    /// Returns a message when a job references a benchmark that cannot be
    /// instantiated.
    pub fn run_jobs(
        &self,
        spec: &CampaignSpec,
        jobs: Vec<JobSpec>,
    ) -> Result<CampaignReport, String> {
        let start = Instant::now();
        let (hits_before, misses_before) = self.cache.stats();
        let (cone_hits_before, cone_misses_before) = self.cache.cone_stats();
        let pool_before = self.pool.worker_stats();

        let budget_bytes = (spec.memo_budget_mb * (1u64 << 20) as f64) as u64;
        let results = if budget_bytes == 0 {
            self.run_unbounded(spec, jobs)?
        } else {
            self.run_streaming(spec, jobs, budget_bytes)?
        };

        let (hits, misses) = self.cache.stats();
        let (cone_hits, cone_misses) = self.cache.cone_stats();
        let pool_deltas: Vec<pool::WorkerStats> = self
            .pool
            .worker_stats()
            .iter()
            .zip(&pool_before)
            .map(|(now, then)| now.delta_from(then))
            .collect();
        Ok(CampaignReport::new(
            spec.name.clone(),
            results,
            self.threads(),
            start.elapsed(),
            (
                hits - hits_before,
                misses - misses_before,
                self.cache.entries(),
            ),
        )
        .with_pool_stats(pool_deltas)
        .with_cache_detail(
            (
                cone_hits - cone_hits_before,
                cone_misses - cone_misses_before,
            ),
            self.cache.cone_key_words(),
            self.peak_memo_bytes(),
        ))
    }

    /// The historical scheduling path: every referenced benchmark is
    /// materialized up front and stays resident for the whole run.
    fn run_unbounded(
        &self,
        spec: &CampaignSpec,
        jobs: Vec<JobSpec>,
    ) -> Result<Vec<JobResult>, String> {
        let referenced = referenced_benchmarks(&jobs);
        let netlists =
            self.materialize_netlists(&referenced, spec.scale, spec.seed, spec.topology)?;

        let ctx = Arc::new(JobContext {
            netlists,
            cache: Arc::clone(&self.cache),
            params: self.params,
            keyed: Arc::clone(&self.keyed),
            coi_mode: spec.coi_mode,
            sat_simplify: spec.sat_simplify,
        });

        let tasks: Vec<Box<dyn FnOnce() -> JobResult + Send>> = jobs
            .into_iter()
            .map(|job| {
                let ctx = Arc::clone(&ctx);
                Box::new(move || run_job(&job, &ctx)) as Box<dyn FnOnce() -> JobResult + Send>
            })
            .collect();
        Ok(self.pool.run_all(tasks))
    }

    /// Memory-bounded streaming scheduling: benchmarks are admitted into
    /// the memo in chunks whose summed [`Netlist::arena_bytes`] fit the
    /// byte budget, each chunk's jobs run to completion, and the chunk's
    /// materializations (netlists *and* their keyed schemes) are evicted
    /// before the next admission. A superblue-scale grid therefore peaks
    /// at one chunk of arenas instead of the whole suite.
    ///
    /// Admission is measure-then-admit: a benchmark must be built before
    /// its size is known, so a candidate that overflows the current chunk
    /// is held in a carry slot — one benchmark of slack above the budget
    /// while the chunk drains — and admitted first at the next boundary.
    /// A benchmark bigger than the whole budget still runs (in a chunk of
    /// its own); the budget shapes scheduling, it never drops work.
    ///
    /// Results are reassembled into submission-order slots, so the
    /// deterministic report is byte-identical to [`Self::run_unbounded`].
    fn run_streaming(
        &self,
        spec: &CampaignSpec,
        jobs: Vec<JobSpec>,
        budget_bytes: u64,
    ) -> Result<Vec<JobResult>, String> {
        let mut queue: VecDeque<String> = referenced_benchmarks(&jobs).into();
        let mut slots: Vec<Option<JobResult>> = jobs.iter().map(|_| None).collect();
        let mut pending: Vec<Option<JobSpec>> = jobs.into_iter().map(Some).collect();

        let mut carry: Option<NamedNetlist> = None;
        let mut first_chunk = true;
        while first_chunk || carry.is_some() || !queue.is_empty() {
            let mut chunk: Vec<NamedNetlist> = Vec::new();
            let mut used: u64 = 0;
            if let Some(nl) = carry.take() {
                used += nl.1.arena_bytes() as u64;
                chunk.push(nl);
            }
            while let Some(name) = queue.pop_front() {
                let nl = self.materialize_one(&name, spec.scale, spec.seed, spec.topology)?;
                let bytes = nl.1.arena_bytes() as u64;
                if chunk.is_empty() || used + bytes <= budget_bytes {
                    used += bytes;
                    chunk.push(nl);
                } else {
                    carry = Some(nl);
                    break;
                }
            }
            self.admit(&chunk, spec.scale, spec.seed, spec.topology);
            self.note_memo_peak();

            // Every job whose benchmark is resident runs now; device
            // jobs (no benchmark at all) ride in the first chunk.
            let mut batch: Vec<(usize, JobSpec)> = Vec::new();
            for (idx, slot) in pending.iter_mut().enumerate() {
                let runs_now = match slot.as_ref().map(|job| &job.kind) {
                    Some(JobKind::Attack { benchmark, .. }) => {
                        chunk.iter().any(|(name, _)| name == benchmark)
                    }
                    Some(_) => first_chunk,
                    None => false,
                };
                if runs_now {
                    batch.push((idx, slot.take().expect("checked Some above")));
                }
            }
            first_chunk = false;

            let ctx = Arc::new(JobContext {
                netlists: chunk.clone(),
                cache: Arc::clone(&self.cache),
                params: self.params,
                keyed: Arc::clone(&self.keyed),
                coi_mode: spec.coi_mode,
                sat_simplify: spec.sat_simplify,
            });
            let indices: Vec<usize> = batch.iter().map(|(idx, _)| *idx).collect();
            let tasks: Vec<Box<dyn FnOnce() -> JobResult + Send>> = batch
                .into_iter()
                .map(|(_, job)| {
                    let ctx = Arc::clone(&ctx);
                    Box::new(move || run_job(&job, &ctx)) as Box<dyn FnOnce() -> JobResult + Send>
                })
                .collect();
            let results = self.pool.run_all(tasks);
            self.note_memo_peak();
            for (idx, result) in indices.into_iter().zip(results) {
                slots[idx] = Some(result);
            }
            self.evict(&chunk);
        }

        slots
            .into_iter()
            .zip(pending)
            .map(|(slot, job)| slot.ok_or_else(|| format!("job was never scheduled: {job:?}")))
            .collect()
    }
}

/// The engine: expands a spec and drives its jobs through the pool.
#[derive(Debug)]
pub struct Campaign;

impl Campaign {
    /// Runs a full campaign described by `spec` on a fresh one-shot
    /// [`EvalSession`]. Long-lived callers (harnesses sweeping many specs,
    /// the profile search) should hold a session and call
    /// [`EvalSession::run`] instead.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec cannot be expanded (unknown
    /// benchmark selector). Individual job failures do *not* abort the
    /// campaign; they surface as [`JobStatus::Failed`] results.
    pub fn run(spec: &CampaignSpec) -> Result<CampaignReport, String> {
        EvalSession::new(spec.threads).run(spec)
    }

    /// Runs an explicit job list under `spec`'s shared knobs on a fresh
    /// one-shot [`EvalSession`] (see [`EvalSession::run_jobs`]).
    ///
    /// # Errors
    ///
    /// Returns a message when a job references a benchmark that cannot be
    /// instantiated.
    pub fn run_jobs(spec: &CampaignSpec, jobs: Vec<JobSpec>) -> Result<CampaignReport, String> {
        EvalSession::new(spec.threads).run_jobs(spec, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_attacks::{AttackKind, CoiMode, SimplifyMode};
    use gshe_camo::CamoScheme;
    use std::time::Duration;

    fn tiny_spec(threads: usize) -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            benchmarks: vec!["ex1010".into()],
            scale: 400, // floors to 64 gates, 32 inputs
            topology: Topology::Uniform,
            levels: vec![0.15],
            schemes: vec![CamoScheme::InvBuf, CamoScheme::FourFn],
            attacks: vec![AttackKind::Sat],
            coi_mode: CoiMode::Auto,
            sat_simplify: SimplifyMode::Auto,
            error_rates: vec![0.0],
            clock_periods_ns: Vec::new(),
            profiles: vec![job::NoiseShape::Uniform],
            rotation_periods: vec![0],
            trials: 1,
            seed: 5,
            timeout: Duration::from_secs(30),
            threads,
            memo_budget_mb: 0.0,
        }
    }

    #[test]
    fn small_campaign_completes_and_aggregates() {
        let report = Campaign::run(&tiny_spec(2)).unwrap();
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert_eq!(row.trials, 1);
            assert_eq!(row.status_counts[0], 1, "expected completion: {row:?}");
            assert_eq!(row.key_recovery_rate, 1.0);
        }
    }

    #[test]
    fn unknown_selector_is_an_error() {
        let mut spec = tiny_spec(1);
        spec.benchmarks = vec!["zzz".into()];
        assert!(Campaign::run(&spec).is_err());
        assert!(EvalSession::new(1).netlist("zzz", 20, 1).is_err());
    }

    #[test]
    fn warm_session_reuses_materializations_and_reports_identically() {
        // The EvalSession contract: a second run on a warm session redoes
        // no netlist generation or camouflaging, reports per-run cache
        // deltas, and emits byte-identical deterministic JSON.
        let spec = tiny_spec(2);
        let session = EvalSession::new(2);
        let first = session.run(&spec).unwrap();
        assert_eq!(session.cached_netlists(), 1);
        let keyed_after_first = session.cached_keyed();
        assert_eq!(keyed_after_first, 2, "one materialization per scheme");

        let second = session.run(&spec).unwrap();
        assert_eq!(session.cached_netlists(), 1, "netlist memo must hit");
        assert_eq!(
            session.cached_keyed(),
            keyed_after_first,
            "keyed memo must hit"
        );
        assert_eq!(first.deterministic_json(), second.deterministic_json());
        // Deterministic cells replay their query streams: the warm run
        // answers from the session cache (all hits, no misses).
        assert_eq!(second.cache_misses, 0, "{second:?}");
        assert!(second.cache_hits > 0);

        // And the one-shot wrapper agrees byte-for-byte with both.
        let fresh = Campaign::run(&spec).unwrap();
        assert_eq!(fresh.deterministic_json(), first.deterministic_json());
    }

    #[test]
    fn streaming_budget_matches_unbounded_and_bounds_the_memo() {
        // Three benchmarks, a budget sized so at most one ~64-gate arena
        // is resident at a time: the streaming scheduler must chunk, hold
        // peak memo bytes to one benchmark (measure-then-admit allows at
        // most one candidate of slack), evict everything at the end, and
        // still emit byte-identical deterministic output.
        let mut spec = tiny_spec(2);
        spec.benchmarks = vec!["ex1010".into(), "c7552".into(), "b14".into()];
        let unbounded = Campaign::run(&spec).unwrap();

        let session = EvalSession::new(2);
        spec.memo_budget_mb = 0.001; // ~1 KiB: every chunk is one benchmark
        let streamed = session.run(&spec).unwrap();
        assert_eq!(
            streamed.deterministic_json(),
            unbounded.deterministic_json()
        );

        // Regenerate the three arenas (deterministic) to state the exact
        // invariant: a chunk never exceeds max(budget, one benchmark) —
        // only a single oversized benchmark may overflow, alone — so the
        // peak must sit strictly below the whole suite's footprint.
        let arenas: Vec<u64> = spec
            .benchmarks
            .iter()
            .map(|name| {
                session
                    .materialize_one(name, spec.scale, spec.seed, spec.topology)
                    .unwrap()
                    .1
                    .arena_bytes() as u64
            })
            .collect();
        let budget = (spec.memo_budget_mb * 1024.0 * 1024.0) as u64;
        let largest = *arenas.iter().max().unwrap();
        let total: u64 = arenas.iter().sum();
        assert!(total > budget, "suite must not fit the budget: {arenas:?}");
        let peak = session.peak_memo_bytes();
        assert!(peak > 0);
        assert!(
            peak <= budget.max(largest),
            "peak {peak} exceeds the chunk bound (budget {budget}, largest {largest})"
        );
        assert!(peak < total, "whole suite was resident at once: {arenas:?}");
        assert_eq!(session.cached_netlists(), 0, "all chunks must be evicted");
        assert_eq!(session.cached_keyed(), 0, "keyed memo must be evicted too");
        assert_eq!(streamed.peak_memo_bytes, peak);
    }

    #[test]
    fn streaming_with_roomy_budget_is_one_chunk() {
        // A budget far above the suite's footprint degenerates to a
        // single chunk: one admission pass, one pool batch, then a full
        // eviction (budgeted sessions never retain materializations).
        let mut spec = tiny_spec(1);
        spec.benchmarks = vec!["ex1010".into(), "c7552".into()];
        spec.memo_budget_mb = 64.0;
        let session = EvalSession::new(1);
        let report = session.run(&spec).unwrap();
        assert_eq!(report.results.len(), 4);
        assert!(report
            .results
            .iter()
            .all(|r| r.status == JobStatus::Completed));
        assert_eq!(session.cached_netlists(), 0);
        spec.memo_budget_mb = 0.0;
        let unbounded = session.run(&spec).unwrap();
        assert_eq!(report.deterministic_json(), unbounded.deterministic_json());
    }

    #[test]
    fn aag_benchmarks_materialize_through_the_aiger_frontend() {
        // A half adder in AIGER ASCII: sum and carry over two inputs.
        let dir = std::env::temp_dir().join("gshe_campaign_aag_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("half_adder.aag");
        std::fs::write(
            &path,
            "aag 7 2 0 2 3\n2\n4\n6\n12\n6 13 15\n12 2 4\n14 3 5\n",
        )
        .unwrap();
        let name = path.to_string_lossy().into_owned();

        let session = EvalSession::new(1);
        let nl = session.netlist(&name, 20, 1).unwrap();
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 2);

        // And through a full campaign: the `.aag` path is an ordinary
        // benchmark name.
        let mut spec = tiny_spec(1);
        spec.benchmarks = vec![name.clone()];
        spec.schemes = vec![CamoScheme::InvBuf];
        let report = session.run(&spec).unwrap();
        assert_eq!(report.results.len(), 1);

        assert!(session.netlist("missing_file.aag", 20, 1).is_err());
    }
}
