//! Sharded, shared oracle-response cache.
//!
//! Every attack job against the same benchmark queries the same working
//! chip, and SAT-style attacks re-discover overlapping discriminating
//! input patterns across schemes and protection levels. Simulating each
//! pattern once per *campaign* instead of once per *job* removes that
//! redundancy: the cache maps `(netlist fingerprint, input pattern)` to
//! the simulated outputs and is shared by all workers.
//!
//! The map is split into [`SHARDS`] independently-locked shards selected
//! by the key's hash, so concurrent workers rarely contend on the same
//! lock. Entries are immutable once inserted (a deterministic oracle
//! always answers the same), which keeps the protocol to a get-or-insert.

use crate::job::hash_mix;
use gshe_attacks::Oracle;
use gshe_logic::{Netlist, NodeKind, PatternBlock, Simulator};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently-locked shards.
pub const SHARDS: usize = 16;

/// Key: (netlist fingerprint, bit-packed input pattern).
type Key = (u64, Vec<u64>);

/// A process-wide cache of oracle responses, safe to share across workers.
#[derive(Debug, Default)]
pub struct OracleCache {
    shards: [Mutex<HashMap<Key, Vec<bool>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl OracleCache {
    /// An empty cache behind an [`Arc`], ready to hand to workers.
    pub fn shared() -> Arc<OracleCache> {
        Arc::new(OracleCache::default())
    }

    /// Looks up `pattern` for the netlist identified by `fingerprint`,
    /// computing and memoizing via `compute` on a miss.
    ///
    /// `compute` runs *outside* the shard lock so concurrent workers on
    /// the same shard never serialize their simulations; entries are
    /// immutable, so the rare duplicate compute under a race is harmless
    /// (first insert wins).
    pub fn get_or_insert(
        &self,
        fingerprint: u64,
        pattern: &[bool],
        compute: impl FnOnce() -> Vec<bool>,
    ) -> Vec<bool> {
        let key = (fingerprint, pack_bits(pattern));
        let shard = &self.shards[(hash_key(&key) as usize) % SHARDS];
        if let Some(hit) = shard.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        shard
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| value.clone());
        value
    }

    /// (cache hits, cache misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Packs a boolean pattern into 64-bit words (bit `i % 64` of word
/// `i / 64` is input `i`), appending the length so `[T]`/`[T, F]` differ
/// from `[T, F, F]`.
fn pack_bits(pattern: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; pattern.len().div_ceil(64) + 1];
    for (i, &b) in pattern.iter().enumerate() {
        if b {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    *words.last_mut().expect("non-empty") = pattern.len() as u64;
    words
}

fn hash_key(key: &Key) -> u64 {
    let mut h = key.0;
    for &w in &key.1 {
        h = hash_mix(h ^ w);
    }
    h
}

/// A stable structural fingerprint of a netlist, independent of memory
/// addresses: hashes the node kinds, wiring, and output list.
pub fn netlist_fingerprint(netlist: &Netlist) -> u64 {
    let mut h = hash_mix(netlist.len() as u64);
    for node in netlist.nodes() {
        let tag = match node.kind {
            NodeKind::Input => 0x11,
            NodeKind::Const(c) => 0x20 | c as u64,
            NodeKind::Gate1 { f, a } => 0x3000 | ((f as u64) << 32) | (a.index() as u64),
            NodeKind::Gate2 { f, a, b } => {
                0x4000
                    | ((f.truth_table() as u64) << 48)
                    | ((a.index() as u64) << 24)
                    | (b.index() as u64)
            }
        };
        h = hash_mix(h ^ tag);
    }
    for out in netlist.outputs() {
        h = hash_mix(h ^ (0x5000 | out.index() as u64));
    }
    h
}

/// A deterministic oracle over a shared netlist that answers through the
/// campaign-wide [`OracleCache`], bit-parallel on block queries.
#[derive(Debug, Clone)]
pub struct CachedOracle {
    netlist: Arc<Netlist>,
    fingerprint: u64,
    cache: Arc<OracleCache>,
    count: u64,
}

impl CachedOracle {
    /// Wraps `netlist` with the shared `cache`.
    pub fn new(netlist: Arc<Netlist>, cache: Arc<OracleCache>) -> Self {
        let fingerprint = netlist_fingerprint(&netlist);
        CachedOracle {
            netlist,
            fingerprint,
            cache,
            count: 0,
        }
    }
}

impl Oracle for CachedOracle {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.count += 1;
        let netlist = &self.netlist;
        self.cache
            .get_or_insert(self.fingerprint, inputs, || netlist.evaluate(inputs))
    }

    fn num_inputs(&self) -> usize {
        self.netlist.inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.netlist.outputs().len()
    }

    fn queries(&self) -> u64 {
        self.count
    }

    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        // Whole blocks bypass the per-pattern map: one bit-parallel pass is
        // already cheaper than 64 lookups.
        self.count += block.count as u64;
        Simulator::new(&self.netlist)
            .run_masked(block)
            .expect("oracle input arity mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};

    #[test]
    fn cache_hits_on_repeat_queries_across_oracles() {
        let nl = Arc::new(parse_bench(C17_BENCH).unwrap());
        let cache = OracleCache::shared();
        let pattern = [true, false, true, false, true];

        let mut a = CachedOracle::new(Arc::clone(&nl), Arc::clone(&cache));
        let ya = a.query(&pattern);
        assert_eq!(cache.stats(), (0, 1));

        // A *different* oracle instance over the same netlist hits.
        let mut b = CachedOracle::new(Arc::clone(&nl), Arc::clone(&cache));
        let yb = b.query(&pattern);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(ya, yb);
        assert_eq!(ya, nl.evaluate(&pattern));

        // Query counting is per-oracle, unaffected by caching.
        assert_eq!(a.queries(), 1);
        assert_eq!(b.queries(), 1);
    }

    #[test]
    fn fingerprint_is_structural() {
        let c17 = parse_bench(C17_BENCH).unwrap();
        let fp_a = netlist_fingerprint(&c17);
        // Identical structure → identical fingerprint, regardless of
        // allocation identity.
        assert_eq!(netlist_fingerprint(&c17.clone()), fp_a);

        // A genuinely different circuit gets a different fingerprint.
        let tiny = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        assert_ne!(netlist_fingerprint(&tiny), fp_a);
    }

    #[test]
    fn pattern_length_is_part_of_the_key() {
        assert_ne!(pack_bits(&[true]), pack_bits(&[true, false]));
        assert_ne!(pack_bits(&[]), pack_bits(&[false]));
    }

    #[test]
    fn block_queries_count_and_match_scalar() {
        let nl = Arc::new(parse_bench(C17_BENCH).unwrap());
        let cache = OracleCache::shared();
        let mut o = CachedOracle::new(Arc::clone(&nl), cache);
        let patterns: Vec<Vec<bool>> = (0..10u32)
            .map(|p| (0..5).map(|k| (p >> k) & 1 == 1).collect())
            .collect();
        let block = PatternBlock::from_patterns(&patterns);
        let lanes = o.query_block(&block);
        assert_eq!(o.queries(), 10);
        for (k, p) in patterns.iter().enumerate() {
            let y = nl.evaluate(p);
            for (i, &bit) in y.iter().enumerate() {
                assert_eq!(bit, (lanes[i] >> k) & 1 == 1);
            }
        }
    }
}
