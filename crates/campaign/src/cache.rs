//! Sharded, shared oracle-response cache — the **caching layer** of the
//! oracle stack.
//!
//! Every attack job against the same benchmark queries the same working
//! chip, and SAT-style attacks re-discover overlapping discriminating
//! input patterns across schemes, protection levels, and trials (a
//! deterministic cell's trials replay the *same* query sequence).
//! Simulating each query once per *campaign* instead of once per *job*
//! removes that redundancy.
//!
//! Keys are **block-level**: `(netlist fingerprint, packed 64-pattern
//! block)` — one hash-and-probe per [`PatternBlock`] instead of one per
//! pattern, so cached campaign cells stop paying per-pattern hashing on
//! the bit-parallel path (the ROADMAP scale item). Scalar queries ride
//! the same path as single-pattern blocks. Values are the packed output
//! lanes, immutable once inserted (a deterministic oracle always answers
//! the same), which keeps the protocol to a get-or-insert.
//!
//! The map is split into [`SHARDS`] independently-locked shards selected
//! by the key's hash, so concurrent workers rarely contend on the same
//! lock.
//!
//! Long-lived sessions ([`crate::EvalSession`] — one cache across many
//! campaigns and search generations) can bound residency with an **entry
//! cap** ([`OracleCache::shared_with_cap`]): when an insert pushes
//! [`OracleCache::entries`] past the cap, whole shards are evicted
//! round-robin (coarse, cheap, stats-visible via
//! [`OracleCache::evictions`]) until the cache fits again. Eviction only
//! ever costs recomputation, never correctness — entries are pure
//! memoization.
//!
//! [`CacheLayer`] is the layer itself: a thin `query_block`-first
//! combinator over any inner [`Oracle`]. It only composes soundly over
//! the bare exact stack — noisy answers are samples and rotating answers
//! are a per-chip key stream, so neither is memoizable — which is why
//! campaign job materialization stacks it only for deterministic static
//! cells.

use crate::job::hash_mix;
use gshe_attacks::{Oracle, OracleStack};
use gshe_logic::{Netlist, NodeKind, PatternBlock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently-locked shards.
pub const SHARDS: usize = 16;

/// The "unbounded" entry cap (the historical behaviour and the default).
pub const UNBOUNDED: u64 = u64::MAX;

/// Key: netlist fingerprint, then the packed block ([`pack_block`]) —
/// input lanes masked to the valid patterns, then the pattern count.
/// Masking makes blocks that differ only in garbage bits of invalid
/// lanes share one entry; the count word keeps prefix blocks distinct.
type Key = (u64, Vec<u64>);

/// A process-wide cache of oracle block responses, safe to share across
/// workers.
#[derive(Debug)]
pub struct OracleCache {
    shards: [Mutex<HashMap<Key, Vec<u64>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Entries evicted by the cap so far.
    evictions: AtomicU64,
    /// Maximum resident entries ([`UNBOUNDED`] = no cap).
    entry_cap: AtomicU64,
    /// Round-robin cursor for coarse shard eviction.
    evict_cursor: AtomicUsize,
}

impl Default for OracleCache {
    fn default() -> Self {
        OracleCache {
            shards: Default::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entry_cap: AtomicU64::new(UNBOUNDED),
            evict_cursor: AtomicUsize::new(0),
        }
    }
}

impl OracleCache {
    /// An empty, unbounded cache behind an [`Arc`], ready to hand to
    /// workers.
    pub fn shared() -> Arc<OracleCache> {
        Arc::new(OracleCache::default())
    }

    /// An empty cache bounded to at most `cap` resident entries (0 is
    /// treated as [`UNBOUNDED`], matching "no cap configured").
    pub fn shared_with_cap(cap: u64) -> Arc<OracleCache> {
        let cache = OracleCache::default();
        cache
            .entry_cap
            .store(if cap == 0 { UNBOUNDED } else { cap }, Ordering::Relaxed);
        Arc::new(cache)
    }

    /// The configured entry cap ([`UNBOUNDED`] when none).
    pub fn entry_cap(&self) -> u64 {
        self.entry_cap.load(Ordering::Relaxed)
    }

    /// Entries evicted by the cap so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Coarse cap enforcement, called after an insert: while the cache
    /// holds more than the cap, clear whole shards round-robin (skipping
    /// `keep`, the shard just inserted into, so the fresh entry survives).
    /// Shard-granular eviction keeps the hot path to one extra `entries()`
    /// sweep per miss and needs no per-entry bookkeeping.
    fn enforce_cap(&self, keep: usize) {
        let cap = self.entry_cap.load(Ordering::Relaxed);
        if cap == UNBOUNDED {
            return;
        }
        while self.entries() > cap {
            let victim = self.evict_cursor.fetch_add(1, Ordering::Relaxed) % SHARDS;
            if victim == keep {
                continue;
            }
            let dropped = {
                let mut shard = self.shards[victim].lock().unwrap();
                let n = shard.len() as u64;
                shard.clear();
                n
            };
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
            gshe_obs::count("cache.evictions", dropped);
            if dropped == 0 && self.shards[keep].lock().unwrap().len() as u64 > cap {
                // Degenerate cap smaller than one shard's load: everything
                // else is already empty, stop rather than spin.
                return;
            }
        }
    }

    /// Looks up `block` for the netlist identified by `fingerprint`,
    /// computing and memoizing the packed output lanes via `compute` on a
    /// miss.
    ///
    /// `compute` runs *outside* the shard lock so concurrent workers on
    /// the same shard never serialize their simulations; entries are
    /// immutable, so the rare duplicate compute under a race is harmless
    /// (first insert wins).
    pub fn get_or_insert_block(
        &self,
        fingerprint: u64,
        block: &PatternBlock,
        compute: impl FnOnce() -> Vec<u64>,
    ) -> Vec<u64> {
        self.get_or_insert_packed(fingerprint, pack_block(block), compute)
    }

    /// Like [`OracleCache::get_or_insert_block`] over an already-packed
    /// key — the scalar hot path packs straight from `&[bool]` so a hit
    /// allocates nothing beyond the key words.
    fn get_or_insert_packed(
        &self,
        fingerprint: u64,
        packed: Vec<u64>,
        compute: impl FnOnce() -> Vec<u64>,
    ) -> Vec<u64> {
        let key = (fingerprint, packed);
        let shard_index = (hash_key(&key) as usize) % SHARDS;
        let shard = &self.shards[shard_index];
        if let Some(hit) = shard.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            gshe_obs::count("cache.hits", 1);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        gshe_obs::count("cache.misses", 1);
        let value = compute();
        shard
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| value.clone());
        self.enforce_cap(shard_index);
        value
    }

    /// (cache hits, cache misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct blocks currently cached, across all shards.
    pub fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().len() as u64)
            .sum()
    }
}

/// Packs a block into its cache-key words: input lanes masked to the
/// valid patterns, then the pattern count (so `[p]` and `[p, q]` with a
/// shared prefix differ, and garbage bits beyond `count` never split
/// logically-identical blocks).
///
/// Single-pattern blocks — the scalar-query hot path of a `dip_batch=1`
/// attack — use a dense form instead ([`pack_bits`]): the pattern
/// bit-packed across inputs plus the arity word (`⌈n/64⌉ + 1` words
/// rather than `n + 1`), so per-query hashing and resident-key size stay
/// at the pre-block-key level.
fn pack_block(block: &PatternBlock) -> Vec<u64> {
    if block.count == 1 {
        return pack_bits(block.lanes.iter().map(|&lane| lane & 1 == 1));
    }
    let mask = block.valid_mask();
    let mut words: Vec<u64> = block.lanes.iter().map(|&lane| lane & mask).collect();
    words.push(block.count as u64);
    words
}

/// The dense single-pattern key form shared by [`pack_block`]'s
/// `count == 1` arm and the scalar-query path: pattern bits packed across
/// inputs, then the input arity. The arity word keeps same-fingerprint
/// queries of different widths (a caller bug the oracle would panic on)
/// from ever aliasing a cached entry, and keeps the form disjoint from
/// the multi-pattern encoding (whose word count differs whenever
/// `n > 1`, and whose trailing count is `>= 2` at `n <= 1`).
fn pack_bits(bits: impl ExactSizeIterator<Item = bool>) -> Vec<u64> {
    let len = bits.len();
    let mut words = vec![0u64; len.div_ceil(64) + 1];
    for (i, bit) in bits.enumerate() {
        if bit {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    *words.last_mut().expect("non-empty") = len as u64;
    words
}

fn hash_key(key: &Key) -> u64 {
    let mut h = key.0;
    for &w in &key.1 {
        h = hash_mix(h ^ w);
    }
    h
}

/// A stable structural fingerprint of a netlist, independent of memory
/// addresses: hashes the node kinds, wiring, and output list.
pub fn netlist_fingerprint(netlist: &Netlist) -> u64 {
    let mut h = hash_mix(netlist.len() as u64);
    for node in netlist.nodes() {
        let tag = match node.kind {
            NodeKind::Input => 0x11,
            NodeKind::Const(c) => 0x20 | c as u64,
            NodeKind::Gate1 { f, a } => 0x3000 | ((f as u64) << 32) | (a.index() as u64),
            NodeKind::Gate2 { f, a, b } => {
                0x4000
                    | ((f.truth_table() as u64) << 48)
                    | ((a.index() as u64) << 24)
                    | (b.index() as u64)
            }
        };
        h = hash_mix(h ^ tag);
    }
    for out in netlist.outputs() {
        h = hash_mix(h ^ (0x5000 | out.index() as u64));
    }
    h
}

/// The caching layer: a `query_block`-first combinator answering through
/// the campaign-wide [`OracleCache`], falling through to the inner oracle
/// on a miss. Query accounting stays per-pattern and per-layer-instance
/// (the inner oracle only counts misses).
///
/// Only sound over a *deterministic, non-rotating* inner oracle — the
/// one stack composition whose answers are a pure function of the input
/// block.
#[derive(Debug, Clone)]
pub struct CacheLayer<O> {
    inner: O,
    fingerprint: u64,
    cache: Arc<OracleCache>,
    count: u64,
}

impl<O: Oracle> CacheLayer<O> {
    /// Stacks the cache over `inner`, whose netlist is identified by
    /// `fingerprint` (see [`netlist_fingerprint`]).
    pub fn new(inner: O, fingerprint: u64, cache: Arc<OracleCache>) -> Self {
        CacheLayer {
            inner,
            fingerprint,
            cache,
            count: 0,
        }
    }
}

impl<O: Oracle> Oracle for CacheLayer<O> {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        // Scalar queries share the block key space (a single pattern
        // packs to the same dense form as a 1-pattern block), but pack
        // straight from the inputs: a hit — the case the cache exists
        // for — allocates nothing beyond the key words.
        self.count += 1;
        let timed = gshe_obs::enabled().then(std::time::Instant::now);
        let inner = &mut self.inner;
        let lanes = self.cache.get_or_insert_packed(
            self.fingerprint,
            pack_bits(inputs.iter().copied()),
            || inner.query_block(&PatternBlock::from_patterns(&[inputs.to_vec()])),
        );
        if let Some(t0) = timed {
            gshe_obs::record("cache.query_ns", t0.elapsed().as_nanos() as u64);
        }
        lanes.iter().map(|lane| lane & 1 == 1).collect()
    }

    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        self.count += block.count as u64;
        let timed = gshe_obs::enabled().then(std::time::Instant::now);
        let inner = &mut self.inner;
        let out = self
            .cache
            .get_or_insert_block(self.fingerprint, block, || inner.query_block(block));
        if let Some(t0) = timed {
            gshe_obs::record("cache.query_block_ns", t0.elapsed().as_nanos() as u64);
        }
        out
    }

    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn queries(&self) -> u64 {
        self.count
    }
}

/// The campaign's deterministic cached oracle: the caching layer over the
/// bare exact stack sharing a campaign netlist.
pub type CachedOracle<'a> = CacheLayer<OracleStack<'a>>;

impl<'a> CachedOracle<'a> {
    /// Stacks the campaign cache over an exact base for `netlist`.
    pub fn over(netlist: &'a Netlist, cache: Arc<OracleCache>) -> Self {
        CacheLayer::new(
            OracleStack::exact(netlist),
            netlist_fingerprint(netlist),
            cache,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};

    #[test]
    fn cache_hits_on_repeat_queries_across_oracles() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared();
        let pattern = [true, false, true, false, true];

        let mut a = CachedOracle::over(&nl, Arc::clone(&cache));
        let ya = a.query(&pattern);
        assert_eq!(cache.stats(), (0, 1));
        assert_eq!(cache.entries(), 1);

        // A *different* oracle instance over the same netlist hits.
        let mut b = CachedOracle::over(&nl, Arc::clone(&cache));
        let yb = b.query(&pattern);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.entries(), 1);
        assert_eq!(ya, yb);
        assert_eq!(ya, nl.evaluate(&pattern));

        // Query counting is per-oracle, unaffected by caching.
        assert_eq!(a.queries(), 1);
        assert_eq!(b.queries(), 1);
    }

    #[test]
    fn fingerprint_is_structural() {
        let c17 = parse_bench(C17_BENCH).unwrap();
        let fp_a = netlist_fingerprint(&c17);
        // Identical structure → identical fingerprint, regardless of
        // allocation identity.
        assert_eq!(netlist_fingerprint(&c17.clone()), fp_a);

        // A genuinely different circuit gets a different fingerprint.
        let tiny = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        assert_ne!(netlist_fingerprint(&tiny), fp_a);
    }

    #[test]
    fn block_key_ignores_garbage_bits_and_keeps_count() {
        // Two logically identical partial blocks that differ only in the
        // invalid-lane garbage must share one entry; a different count is
        // a different key.
        let a = PatternBlock {
            lanes: vec![0b01, 0b10, 0b11, 0b00, 0b01],
            count: 2,
        };
        let mut garbage = a.clone();
        for lane in &mut garbage.lanes {
            *lane |= 0xFFFF_0000;
        }
        assert_eq!(pack_block(&a), pack_block(&garbage));
        let longer = PatternBlock {
            lanes: a.lanes.clone(),
            count: 3,
        };
        assert_ne!(pack_block(&a), pack_block(&longer));

        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared();
        let mut o = CachedOracle::over(&nl, Arc::clone(&cache));
        let ya = o.query_block(&a);
        let yb = o.query_block(&garbage);
        assert_eq!(cache.stats(), (1, 1), "garbage bits must not split keys");
        assert_eq!(ya, yb);
    }

    #[test]
    fn single_pattern_keys_are_dense_and_shared_with_scalar_queries() {
        // The scalar hot path (dip_batch = 1) must not pay n-word keys:
        // a single pattern packs to ⌈n/64⌉ + 1 words, and a scalar query
        // and a 1-pattern block query over the same pattern share one
        // entry (both route through the same packed form).
        let one = PatternBlock::from_patterns(&[vec![true, false, true, false, true]]);
        assert_eq!(pack_block(&one), vec![0b10101, 5]);
        // The arity word keeps different-width patterns (a caller bug)
        // from aliasing: [T] and [T, F] pack to distinct keys.
        assert_ne!(
            pack_bits([true].into_iter()),
            pack_bits([true, false].into_iter())
        );

        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared();
        let mut o = CachedOracle::over(&nl, Arc::clone(&cache));
        let y_scalar = o.query(&[true, false, true, false, true]);
        let lanes = o.query_block(&one);
        assert_eq!(cache.stats(), (1, 1), "scalar and 1-block share a key");
        for (bit, lane) in y_scalar.iter().zip(&lanes) {
            assert_eq!(*bit, lane & 1 == 1);
        }
    }

    #[test]
    fn entry_cap_evicts_coarsely_and_counts() {
        // A capped cache must never hold more entries than the cap after
        // an insert settles, must count what it dropped, and must keep
        // answering correctly (eviction costs recomputation only).
        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared_with_cap(8);
        assert_eq!(cache.entry_cap(), 8);
        let mut o = CachedOracle::over(&nl, Arc::clone(&cache));
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|k| (p >> k) & 1 == 1).collect())
            .collect();
        let answers: Vec<Vec<bool>> = patterns.iter().map(|p| o.query(p)).collect();
        assert!(
            cache.entries() <= 8,
            "cap not enforced: {} entries",
            cache.entries()
        );
        assert!(cache.evictions() > 0, "32 inserts into cap 8 must evict");
        // Evicted patterns recompute to the same answers.
        for (p, y) in patterns.iter().zip(&answers) {
            assert_eq!(o.query(p), *y);
        }
        // An unbounded cache never evicts.
        let unbounded = OracleCache::shared();
        assert_eq!(unbounded.entry_cap(), UNBOUNDED);
        let mut o = CachedOracle::over(&nl, Arc::clone(&unbounded));
        for p in &patterns {
            let _ = o.query(p);
        }
        assert_eq!(unbounded.evictions(), 0);
        assert_eq!(unbounded.entries(), 32);
        // Cap 0 means "no cap configured".
        assert_eq!(OracleCache::shared_with_cap(0).entry_cap(), UNBOUNDED);
    }

    #[test]
    fn block_queries_hit_count_and_match_simulation() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared();
        let mut o = CachedOracle::over(&nl, Arc::clone(&cache));
        let patterns: Vec<Vec<bool>> = (0..10u32)
            .map(|p| (0..5).map(|k| (p >> k) & 1 == 1).collect())
            .collect();
        let block = PatternBlock::from_patterns(&patterns);
        let lanes = o.query_block(&block);
        assert_eq!(o.queries(), 10);
        assert_eq!(cache.stats(), (0, 1), "one probe per block, not ten");
        for (k, p) in patterns.iter().enumerate() {
            let y = nl.evaluate(p);
            for (i, &bit) in y.iter().enumerate() {
                assert_eq!(bit, (lanes[i] >> k) & 1 == 1);
            }
        }
        // The identical block replayed (e.g. a deterministic cell's second
        // trial) costs one hash lookup and zero simulation.
        let again = o.query_block(&block);
        assert_eq!(again, lanes);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(o.queries(), 20);
    }
}
