//! Sharded, shared oracle-response cache — the **caching layer** of the
//! oracle stack.
//!
//! Every attack job against the same benchmark queries the same working
//! chip, and SAT-style attacks re-discover overlapping discriminating
//! input patterns across schemes, protection levels, and trials (a
//! deterministic cell's trials replay the *same* query sequence).
//! Simulating each query once per *campaign* instead of once per *job*
//! removes that redundancy.
//!
//! Keys are **block-level**: `(netlist fingerprint, packed 64-pattern
//! block)` — one hash-and-probe per [`PatternBlock`] instead of one per
//! pattern, so cached campaign cells stop paying per-pattern hashing on
//! the bit-parallel path (the ROADMAP scale item). Scalar queries ride
//! the same path as single-pattern blocks. Values are the packed output
//! lanes, immutable once inserted (a deterministic oracle always answers
//! the same), which keeps the protocol to a get-or-insert.
//!
//! The map is split into [`SHARDS`] independently-locked shards selected
//! by the key's hash, so concurrent workers rarely contend on the same
//! lock.
//!
//! Long-lived sessions ([`crate::EvalSession`] — one cache across many
//! campaigns and search generations) can bound residency with an **entry
//! cap** ([`OracleCache::shared_with_cap`]): when an insert pushes
//! [`OracleCache::entries`] past the cap, the oldest entry of a
//! round-robin-selected shard is evicted (each shard keeps an
//! insert-order ring, so eviction is per-entry LRU-ish rather than
//! whole-shard, stats-visible via [`OracleCache::evictions`]) until the
//! cache fits again. Eviction only ever costs recomputation, never
//! correctness — entries are pure memoization.
//!
//! **Cone keys.** Superblue-scale cells attack through a
//! cone-of-influence projection (`gshe_attacks::coi`), whose
//! [`CoiOracle`](gshe_attacks::CoiOracle) scatter guarantees every
//! query reaching the underlying full-design oracle carries `false` on
//! all non-cone input positions. A [`CacheLayer`] built with a
//! [`ConeKey`] exploits that invariant: entries key on the packed
//! *cone-input sub-pattern* (a few words at an ~8k-input design with a
//! small cone) under a cone-specific fingerprint, so DIP-loop
//! re-queries across trials and rounds hit even though the full-width
//! patterns would be megabyte keys. The cone fingerprint mixes the
//! netlist fingerprint, the cone input ordinal list, and a salt, so
//! cone entries can never alias full-key entries or another cone's.
//! The full-key path is byte-identical to the historical behaviour
//! when no cone is installed.
//!
//! [`CacheLayer`] is the layer itself: a thin `query_block`-first
//! combinator over any inner [`Oracle`]. It only composes soundly over
//! the bare exact stack — noisy answers are samples and rotating answers
//! are a per-chip key stream, so neither is memoizable — which is why
//! campaign job materialization stacks it only for deterministic static
//! cells.

use crate::job::hash_mix;
use gshe_attacks::{Oracle, OracleStack};
use gshe_logic::{Netlist, NodeKind, PatternBlock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently-locked shards.
pub const SHARDS: usize = 16;

/// The "unbounded" entry cap (the historical behaviour and the default).
pub const UNBOUNDED: u64 = u64::MAX;

/// Key: netlist (or cone) fingerprint, then the packed block
/// ([`pack_block`]) — input lanes masked to the valid patterns, then the
/// pattern count. Masking makes blocks that differ only in garbage bits
/// of invalid lanes share one entry; the count word keeps prefix blocks
/// distinct.
type Key = (u64, Vec<u64>);

/// One independently-locked shard: the entry map plus an insert-order
/// ring over the same keys. Entries only leave through ring-ordered
/// eviction, so map and ring stay in lockstep.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<Key, Vec<u64>>,
    ring: VecDeque<Key>,
}

/// A process-wide cache of oracle block responses, safe to share across
/// workers.
#[derive(Debug)]
pub struct OracleCache {
    shards: [Mutex<Shard>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Hits/misses of cone-keyed probes (a subset of `hits`/`misses`).
    cone_hits: AtomicU64,
    cone_misses: AtomicU64,
    /// Widest cone key probed so far, in 64-bit words.
    cone_key_words: AtomicU64,
    /// Entries evicted by the cap so far.
    evictions: AtomicU64,
    /// Maximum resident entries ([`UNBOUNDED`] = no cap).
    entry_cap: AtomicU64,
    /// Round-robin cursor selecting the next eviction shard.
    evict_cursor: AtomicUsize,
}

impl Default for OracleCache {
    fn default() -> Self {
        OracleCache {
            shards: Default::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cone_hits: AtomicU64::new(0),
            cone_misses: AtomicU64::new(0),
            cone_key_words: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entry_cap: AtomicU64::new(UNBOUNDED),
            evict_cursor: AtomicUsize::new(0),
        }
    }
}

impl OracleCache {
    /// An empty, unbounded cache behind an [`Arc`], ready to hand to
    /// workers.
    pub fn shared() -> Arc<OracleCache> {
        Arc::new(OracleCache::default())
    }

    /// An empty cache bounded to at most `cap` resident entries (0 is
    /// treated as [`UNBOUNDED`], matching "no cap configured").
    pub fn shared_with_cap(cap: u64) -> Arc<OracleCache> {
        let cache = OracleCache::default();
        cache
            .entry_cap
            .store(if cap == 0 { UNBOUNDED } else { cap }, Ordering::Relaxed);
        Arc::new(cache)
    }

    /// The configured entry cap ([`UNBOUNDED`] when none).
    pub fn entry_cap(&self) -> u64 {
        self.entry_cap.load(Ordering::Relaxed)
    }

    /// Entries evicted by the cap so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Cap enforcement, called after an insert: while the cache holds
    /// more than the cap, evict the **oldest entry** (insert-order ring)
    /// of a round-robin-selected shard. Per-entry eviction keeps the
    /// working set warm — a cap-1-over insert drops exactly one stale
    /// block instead of a whole shard's worth of live ones — and the
    /// just-inserted entry is its shard's newest, so it always survives.
    fn enforce_cap(&self, keep: usize) {
        let cap = self.entry_cap.load(Ordering::Relaxed);
        if cap == UNBOUNDED {
            return;
        }
        while self.entries() > cap {
            let victim = self.evict_cursor.fetch_add(1, Ordering::Relaxed) % SHARDS;
            if victim == keep {
                // Prefer evicting elsewhere so the shard just inserted
                // into keeps its whole ring; fall through only when every
                // other shard is already empty (the fresh entry is its
                // ring's newest, so even then it survives).
                let others_occupied = self
                    .shards
                    .iter()
                    .enumerate()
                    .any(|(i, s)| i != keep && !s.lock().unwrap().map.is_empty());
                if others_occupied {
                    continue;
                }
            }
            let evicted = {
                let mut shard = self.shards[victim].lock().unwrap();
                match shard.ring.pop_front() {
                    Some(key) => {
                        shard.map.remove(&key);
                        true
                    }
                    None => false,
                }
            };
            if evicted {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                gshe_obs::count("cache.evictions", 1);
            }
        }
    }

    /// Looks up `block` for the netlist identified by `fingerprint`,
    /// computing and memoizing the packed output lanes via `compute` on a
    /// miss.
    ///
    /// `compute` runs *outside* the shard lock so concurrent workers on
    /// the same shard never serialize their simulations; entries are
    /// immutable, so the rare duplicate compute under a race is harmless
    /// (first insert wins).
    pub fn get_or_insert_block(
        &self,
        fingerprint: u64,
        block: &PatternBlock,
        compute: impl FnOnce() -> Vec<u64>,
    ) -> Vec<u64> {
        self.get_or_insert_packed(fingerprint, pack_block(block), false, compute)
    }

    /// Like [`OracleCache::get_or_insert_block`] over an already-packed
    /// key — the scalar hot path packs straight from `&[bool]` so a hit
    /// allocates nothing beyond the key words. `cone` attributes the
    /// probe to the cone-keyed statistics.
    fn get_or_insert_packed(
        &self,
        fingerprint: u64,
        packed: Vec<u64>,
        cone: bool,
        compute: impl FnOnce() -> Vec<u64>,
    ) -> Vec<u64> {
        if cone {
            self.cone_key_words
                .fetch_max(packed.len() as u64, Ordering::Relaxed);
        }
        let key = (fingerprint, packed);
        let shard_index = (hash_key(&key) as usize) % SHARDS;
        let shard = &self.shards[shard_index];
        if let Some(hit) = shard.lock().unwrap().map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            gshe_obs::count("cache.hits", 1);
            if cone {
                self.cone_hits.fetch_add(1, Ordering::Relaxed);
                gshe_obs::count("cache.cone_hits", 1);
            }
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        gshe_obs::count("cache.misses", 1);
        if cone {
            self.cone_misses.fetch_add(1, Ordering::Relaxed);
            gshe_obs::count("cache.cone_misses", 1);
        }
        let value = compute();
        {
            let mut guard = shard.lock().unwrap();
            if let std::collections::hash_map::Entry::Vacant(slot) = guard.map.entry(key.clone()) {
                slot.insert(value.clone());
                guard.ring.push_back(key);
            }
        }
        self.enforce_cap(shard_index);
        value
    }

    /// (cache hits, cache misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// (hits, misses) of cone-keyed probes so far — the subset of
    /// [`OracleCache::stats`] answered through [`ConeKey`]s.
    pub fn cone_stats(&self) -> (u64, u64) {
        (
            self.cone_hits.load(Ordering::Relaxed),
            self.cone_misses.load(Ordering::Relaxed),
        )
    }

    /// Widest cone key probed so far, in 64-bit words (0 when no cone
    /// probe has happened). At a small cone this stays a handful of
    /// words even on 8k-input designs — the key-width win the cone path
    /// exists for.
    pub fn cone_key_words(&self) -> u64 {
        self.cone_key_words.load(Ordering::Relaxed)
    }

    /// Number of distinct blocks currently cached, across all shards.
    pub fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len() as u64)
            .sum()
    }
}

/// Packs a block into its cache-key words: input lanes masked to the
/// valid patterns, then the pattern count (so `[p]` and `[p, q]` with a
/// shared prefix differ, and garbage bits beyond `count` never split
/// logically-identical blocks).
///
/// Single-pattern blocks — the scalar-query hot path of a `dip_batch=1`
/// attack — use a dense form instead ([`pack_bits`]): the pattern
/// bit-packed across inputs plus the arity word (`⌈n/64⌉ + 1` words
/// rather than `n + 1`), so per-query hashing and resident-key size stay
/// at the pre-block-key level.
fn pack_block(block: &PatternBlock) -> Vec<u64> {
    if block.count == 1 {
        return pack_bits(block.lanes.iter().map(|&lane| lane & 1 == 1));
    }
    let mask = block.valid_mask();
    let mut words: Vec<u64> = block.lanes.iter().map(|&lane| lane & mask).collect();
    words.push(block.count as u64);
    words
}

/// The dense single-pattern key form shared by [`pack_block`]'s
/// `count == 1` arm and the scalar-query path: pattern bits packed across
/// inputs, then the input arity. The arity word keeps same-fingerprint
/// queries of different widths (a caller bug the oracle would panic on)
/// from ever aliasing a cached entry, and keeps the form disjoint from
/// the multi-pattern encoding (whose word count differs whenever
/// `n > 1`, and whose trailing count is `>= 2` at `n <= 1`).
fn pack_bits(bits: impl ExactSizeIterator<Item = bool>) -> Vec<u64> {
    let len = bits.len();
    let mut words = vec![0u64; len.div_ceil(64) + 1];
    for (i, bit) in bits.enumerate() {
        if bit {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    *words.last_mut().expect("non-empty") = len as u64;
    words
}

fn hash_key(key: &Key) -> u64 {
    let mut h = key.0;
    for &w in &key.1 {
        h = hash_mix(h ^ w);
    }
    h
}

/// A stable structural fingerprint of a netlist, independent of memory
/// addresses: hashes the node kinds, wiring, and output list.
pub fn netlist_fingerprint(netlist: &Netlist) -> u64 {
    let mut h = hash_mix(netlist.len() as u64);
    for node in netlist.nodes() {
        let tag = match node.kind {
            NodeKind::Input => 0x11,
            NodeKind::Const(c) => 0x20 | c as u64,
            NodeKind::Gate1 { f, a } => 0x3000 | ((f as u64) << 32) | (a.index() as u64),
            NodeKind::Gate2 { f, a, b } => {
                0x4000
                    | ((f.truth_table() as u64) << 48)
                    | ((a.index() as u64) << 24)
                    | (b.index() as u64)
            }
        };
        h = hash_mix(h ^ tag);
    }
    for out in netlist.outputs() {
        h = hash_mix(h ^ (0x5000 | out.index() as u64));
    }
    h
}

/// The cone-input key space of one `(netlist, cone)` pair: the
/// full-design input ordinals the attacked cone actually reads, plus a
/// fingerprint mixing the netlist fingerprint with that ordinal list
/// under a salt. Install on a [`CacheLayer`] **only** when every query
/// reaching it is guaranteed to carry `false` on all non-listed input
/// positions — the invariant `gshe_attacks::CoiOracle`'s scatter
/// provides — so the full output lanes are a pure function of the
/// listed lanes and keying on them alone is sound.
#[derive(Debug, Clone)]
pub struct ConeKey {
    /// Full-design input ordinals the cone reads, ascending.
    inputs: Vec<usize>,
    /// Salted mix of the netlist fingerprint and the ordinal list.
    fingerprint: u64,
}

impl ConeKey {
    /// Builds the key space for the cone reading `inputs` (full-design
    /// input ordinals) of the netlist identified by `full_fingerprint`.
    /// The salt keeps cone entries disjoint from full-key entries even
    /// for a cone that happens to read every input.
    pub fn new(full_fingerprint: u64, inputs: Vec<usize>) -> Self {
        let mut h = hash_mix(full_fingerprint ^ 0xC04E_1B17_5A17_ED01);
        h = hash_mix(h ^ inputs.len() as u64);
        for &i in &inputs {
            h = hash_mix(h ^ i as u64);
        }
        ConeKey {
            inputs,
            fingerprint: h,
        }
    }

    /// Number of cone inputs (the sub-pattern width, in bits).
    pub fn width(&self) -> usize {
        self.inputs.len()
    }
}

/// Packs the cone-input sub-pattern of `block` under `cone`'s key
/// space: the listed lanes masked to the valid patterns plus the count
/// word, or the dense [`pack_bits`] form for a single pattern — the
/// same two encodings as [`pack_block`], restricted to the cone
/// columns.
fn pack_block_cone(block: &PatternBlock, cone: &ConeKey) -> Vec<u64> {
    if block.count == 1 {
        return pack_bits(ConeBits {
            lanes: &block.lanes,
            ordinals: cone.inputs.iter(),
        });
    }
    let mask = block.valid_mask();
    let mut words: Vec<u64> = cone.inputs.iter().map(|&i| block.lanes[i] & mask).collect();
    words.push(block.count as u64);
    words
}

/// Exact-size adaptor feeding a cone's bit columns into [`pack_bits`].
struct ConeBits<'a> {
    lanes: &'a [u64],
    ordinals: std::slice::Iter<'a, usize>,
}

impl Iterator for ConeBits<'_> {
    type Item = bool;
    fn next(&mut self) -> Option<bool> {
        self.ordinals.next().map(|&i| self.lanes[i] & 1 == 1)
    }
}

impl ExactSizeIterator for ConeBits<'_> {
    fn len(&self) -> usize {
        self.ordinals.len()
    }
}

/// The caching layer: a `query_block`-first combinator answering through
/// the campaign-wide [`OracleCache`], falling through to the inner oracle
/// on a miss. Query accounting stays per-pattern and per-layer-instance
/// (the inner oracle only counts misses).
///
/// Only sound over a *deterministic, non-rotating* inner oracle — the
/// one stack composition whose answers are a pure function of the input
/// block.
#[derive(Debug, Clone)]
pub struct CacheLayer<O> {
    inner: O,
    fingerprint: u64,
    cache: Arc<OracleCache>,
    cone: Option<ConeKey>,
    count: u64,
}

impl<O: Oracle> CacheLayer<O> {
    /// Stacks the cache over `inner`, whose netlist is identified by
    /// `fingerprint` (see [`netlist_fingerprint`]).
    pub fn new(inner: O, fingerprint: u64, cache: Arc<OracleCache>) -> Self {
        CacheLayer {
            inner,
            fingerprint,
            cache,
            cone: None,
            count: 0,
        }
    }

    /// Switches this layer to cone-input keys. See [`ConeKey`] for the
    /// soundness contract the caller must uphold.
    pub fn with_cone(mut self, cone: ConeKey) -> Self {
        self.cone = Some(cone);
        self
    }
}

impl<O: Oracle> Oracle for CacheLayer<O> {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        // Scalar queries share the block key space (a single pattern
        // packs to the same dense form as a 1-pattern block), but pack
        // straight from the inputs: a hit — the case the cache exists
        // for — allocates nothing beyond the key words.
        self.count += 1;
        let timed = gshe_obs::enabled().then(std::time::Instant::now);
        let inner = &mut self.inner;
        let (fingerprint, packed) = match &self.cone {
            Some(cone) => (
                cone.fingerprint,
                pack_bits(cone.inputs.iter().map(|&i| inputs[i])),
            ),
            None => (self.fingerprint, pack_bits(inputs.iter().copied())),
        };
        let lanes =
            self.cache
                .get_or_insert_packed(fingerprint, packed, self.cone.is_some(), || {
                    inner.query_block(&PatternBlock::from_patterns(&[inputs.to_vec()]))
                });
        if let Some(t0) = timed {
            gshe_obs::record("cache.query_ns", t0.elapsed().as_nanos() as u64);
        }
        lanes.iter().map(|lane| lane & 1 == 1).collect()
    }

    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        self.count += block.count as u64;
        let timed = gshe_obs::enabled().then(std::time::Instant::now);
        let inner = &mut self.inner;
        let out = match &self.cone {
            Some(cone) => self.cache.get_or_insert_packed(
                cone.fingerprint,
                pack_block_cone(block, cone),
                true,
                || inner.query_block(block),
            ),
            None => self
                .cache
                .get_or_insert_block(self.fingerprint, block, || inner.query_block(block)),
        };
        if let Some(t0) = timed {
            gshe_obs::record("cache.query_block_ns", t0.elapsed().as_nanos() as u64);
        }
        out
    }

    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn queries(&self) -> u64 {
        self.count
    }
}

/// The campaign's deterministic cached oracle: the caching layer over the
/// bare exact stack sharing a campaign netlist.
pub type CachedOracle<'a> = CacheLayer<OracleStack<'a>>;

impl<'a> CachedOracle<'a> {
    /// Stacks the campaign cache over an exact base for `netlist`.
    pub fn over(netlist: &'a Netlist, cache: Arc<OracleCache>) -> Self {
        CacheLayer::new(
            OracleStack::exact(netlist),
            netlist_fingerprint(netlist),
            cache,
        )
    }

    /// Like [`CachedOracle::over`], keyed on the cone-input sub-pattern:
    /// `cone_inputs` are the full-design input ordinals of the cone the
    /// attack will run through (see
    /// [`gshe_attacks::cone_inputs`](gshe_attacks::coi::cone_inputs)).
    /// Sound only when every query arrives through the matching
    /// `CoiOracle` scatter — see [`ConeKey`].
    pub fn over_cone(
        netlist: &'a Netlist,
        cache: Arc<OracleCache>,
        cone_inputs: Vec<usize>,
    ) -> Self {
        let fingerprint = netlist_fingerprint(netlist);
        CacheLayer::new(OracleStack::exact(netlist), fingerprint, cache)
            .with_cone(ConeKey::new(fingerprint, cone_inputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};

    #[test]
    fn cache_hits_on_repeat_queries_across_oracles() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared();
        let pattern = [true, false, true, false, true];

        let mut a = CachedOracle::over(&nl, Arc::clone(&cache));
        let ya = a.query(&pattern);
        assert_eq!(cache.stats(), (0, 1));
        assert_eq!(cache.entries(), 1);

        // A *different* oracle instance over the same netlist hits.
        let mut b = CachedOracle::over(&nl, Arc::clone(&cache));
        let yb = b.query(&pattern);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.entries(), 1);
        assert_eq!(ya, yb);
        assert_eq!(ya, nl.evaluate(&pattern));

        // Query counting is per-oracle, unaffected by caching.
        assert_eq!(a.queries(), 1);
        assert_eq!(b.queries(), 1);
    }

    #[test]
    fn fingerprint_is_structural() {
        let c17 = parse_bench(C17_BENCH).unwrap();
        let fp_a = netlist_fingerprint(&c17);
        // Identical structure → identical fingerprint, regardless of
        // allocation identity.
        assert_eq!(netlist_fingerprint(&c17.clone()), fp_a);

        // A genuinely different circuit gets a different fingerprint.
        let tiny = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        assert_ne!(netlist_fingerprint(&tiny), fp_a);
    }

    #[test]
    fn block_key_ignores_garbage_bits_and_keeps_count() {
        // Two logically identical partial blocks that differ only in the
        // invalid-lane garbage must share one entry; a different count is
        // a different key.
        let a = PatternBlock {
            lanes: vec![0b01, 0b10, 0b11, 0b00, 0b01],
            count: 2,
        };
        let mut garbage = a.clone();
        for lane in &mut garbage.lanes {
            *lane |= 0xFFFF_0000;
        }
        assert_eq!(pack_block(&a), pack_block(&garbage));
        let longer = PatternBlock {
            lanes: a.lanes.clone(),
            count: 3,
        };
        assert_ne!(pack_block(&a), pack_block(&longer));

        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared();
        let mut o = CachedOracle::over(&nl, Arc::clone(&cache));
        let ya = o.query_block(&a);
        let yb = o.query_block(&garbage);
        assert_eq!(cache.stats(), (1, 1), "garbage bits must not split keys");
        assert_eq!(ya, yb);
    }

    #[test]
    fn single_pattern_keys_are_dense_and_shared_with_scalar_queries() {
        // The scalar hot path (dip_batch = 1) must not pay n-word keys:
        // a single pattern packs to ⌈n/64⌉ + 1 words, and a scalar query
        // and a 1-pattern block query over the same pattern share one
        // entry (both route through the same packed form).
        let one = PatternBlock::from_patterns(&[vec![true, false, true, false, true]]);
        assert_eq!(pack_block(&one), vec![0b10101, 5]);
        // The arity word keeps different-width patterns (a caller bug)
        // from aliasing: [T] and [T, F] pack to distinct keys.
        assert_ne!(
            pack_bits([true].into_iter()),
            pack_bits([true, false].into_iter())
        );

        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared();
        let mut o = CachedOracle::over(&nl, Arc::clone(&cache));
        let y_scalar = o.query(&[true, false, true, false, true]);
        let lanes = o.query_block(&one);
        assert_eq!(cache.stats(), (1, 1), "scalar and 1-block share a key");
        for (bit, lane) in y_scalar.iter().zip(&lanes) {
            assert_eq!(*bit, lane & 1 == 1);
        }
    }

    #[test]
    fn entry_cap_evicts_coarsely_and_counts() {
        // A capped cache must never hold more entries than the cap after
        // an insert settles, must count what it dropped, and must keep
        // answering correctly (eviction costs recomputation only).
        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared_with_cap(8);
        assert_eq!(cache.entry_cap(), 8);
        let mut o = CachedOracle::over(&nl, Arc::clone(&cache));
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|k| (p >> k) & 1 == 1).collect())
            .collect();
        let answers: Vec<Vec<bool>> = patterns.iter().map(|p| o.query(p)).collect();
        assert!(
            cache.entries() <= 8,
            "cap not enforced: {} entries",
            cache.entries()
        );
        assert!(cache.evictions() > 0, "32 inserts into cap 8 must evict");
        // Evicted patterns recompute to the same answers.
        for (p, y) in patterns.iter().zip(&answers) {
            assert_eq!(o.query(p), *y);
        }
        // An unbounded cache never evicts.
        let unbounded = OracleCache::shared();
        assert_eq!(unbounded.entry_cap(), UNBOUNDED);
        let mut o = CachedOracle::over(&nl, Arc::clone(&unbounded));
        for p in &patterns {
            let _ = o.query(p);
        }
        assert_eq!(unbounded.evictions(), 0);
        assert_eq!(unbounded.entries(), 32);
        // Cap 0 means "no cap configured".
        assert_eq!(OracleCache::shared_with_cap(0).entry_cap(), UNBOUNDED);
    }

    #[test]
    fn block_queries_hit_count_and_match_simulation() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared();
        let mut o = CachedOracle::over(&nl, Arc::clone(&cache));
        let patterns: Vec<Vec<bool>> = (0..10u32)
            .map(|p| (0..5).map(|k| (p >> k) & 1 == 1).collect())
            .collect();
        let block = PatternBlock::from_patterns(&patterns);
        let lanes = o.query_block(&block);
        assert_eq!(o.queries(), 10);
        assert_eq!(cache.stats(), (0, 1), "one probe per block, not ten");
        for (k, p) in patterns.iter().enumerate() {
            let y = nl.evaluate(p);
            for (i, &bit) in y.iter().enumerate() {
                assert_eq!(bit, (lanes[i] >> k) & 1 == 1);
            }
        }
        // The identical block replayed (e.g. a deterministic cell's second
        // trial) costs one hash lookup and zero simulation.
        let again = o.query_block(&block);
        assert_eq!(again, lanes);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(o.queries(), 20);
    }

    #[test]
    fn per_entry_eviction_keeps_the_newest_insert_resident() {
        // cap 1: every new distinct block evicts the previous one, never
        // itself — the insert-order ring's recency guarantee, which the
        // old whole-shard clearing could not give.
        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared_with_cap(1);
        let mut o = CachedOracle::over(&nl, Arc::clone(&cache));
        for p in 0..8u32 {
            let pattern: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            let first = o.query(&pattern);
            assert_eq!(cache.entries(), 1, "cap 1 after insert {p}");
            // The immediate replay must hit: the fresh entry survived.
            let (hits_before, _) = cache.stats();
            assert_eq!(o.query(&pattern), first);
            assert_eq!(
                cache.stats().0,
                hits_before + 1,
                "insert {p} evicted itself"
            );
        }
        assert_eq!(
            cache.evictions(),
            7,
            "each insert after the first evicts one"
        );
    }

    /// Two independent cones; only the first is camouflaged, so the COI
    /// projection engages with cone inputs {a, b}.
    fn split_design() -> (gshe_logic::Netlist, gshe_camo::KeyedNetlist) {
        use gshe_logic::{Bf2, NetlistBuilder};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut b = NetlistBuilder::new("split");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let e = b.input("d");
        let g1 = b.gate2("g1", Bf2::AND, a, c);
        let g2 = b.gate2("g2", Bf2::OR, d, e);
        b.output(g1);
        b.output(g2);
        let nl = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let keyed =
            gshe_camo::camouflage(&nl, &[g1], gshe_camo::CamoScheme::GsheAll16, &mut rng).unwrap();
        (nl, keyed)
    }

    #[test]
    fn cone_keyed_hits_are_byte_identical_to_full_key_and_uncached() {
        use gshe_attacks::{cone_inputs, CoiMode, CoiOracle, CoiProjection, NetlistOracle};

        let (nl, keyed) = split_design();
        let proj = CoiProjection::build(&keyed, CoiMode::On).expect("projection engages");
        let inputs = cone_inputs(&keyed, CoiMode::On).expect("cone inputs");
        assert_eq!(inputs.len(), 2, "only a, b feed the cloaked cone");

        // Three stacks answering the same cone-interface queries: cone-
        // keyed cache, full-key cache, and no cache at all.
        let cone_cache = OracleCache::shared();
        let full_cache = OracleCache::shared();
        let mut cone_inner = CachedOracle::over_cone(&nl, Arc::clone(&cone_cache), inputs.clone());
        let mut full_inner = CachedOracle::over(&nl, Arc::clone(&full_cache));
        let mut bare_inner = NetlistOracle::new(&nl);
        let mut cone_keyed = CoiOracle::new(&mut cone_inner, &proj);
        let mut full_keyed = CoiOracle::new(&mut full_inner, &proj);
        let mut uncached = CoiOracle::new(&mut bare_inner, &proj);

        // Every cone input combination, scalar and block form.
        for p in 0..4u32 {
            let pattern: Vec<bool> = (0..2).map(|k| (p >> k) & 1 == 1).collect();
            let y = cone_keyed.query(&pattern);
            assert_eq!(y, full_keyed.query(&pattern), "scalar p={p}");
            assert_eq!(y, uncached.query(&pattern), "scalar p={p}");
        }
        let patterns: Vec<Vec<bool>> = (0..3u32)
            .map(|p| (0..2).map(|k| (p >> k) & 1 == 1).collect())
            .collect();
        let block = PatternBlock::from_patterns(&patterns);
        let lanes = cone_keyed.query_block(&block);
        assert_eq!(lanes, full_keyed.query_block(&block), "block");
        assert_eq!(lanes, uncached.query_block(&block), "block");

        // A partial block differing only in garbage bits of invalid
        // lanes must *hit* the cone-keyed entry and answer identically.
        let mut garbage = block.clone();
        for lane in &mut garbage.lanes {
            *lane |= 0xFFFF_0000;
        }
        let (hits_before, misses_before) = cone_cache.cone_stats();
        assert_eq!(cone_keyed.query_block(&garbage), lanes);
        let (hits_after, misses_after) = cone_cache.cone_stats();
        assert_eq!(
            hits_after,
            hits_before + 1,
            "garbage lanes split a cone key"
        );
        assert_eq!(misses_after, misses_before);

        // Cone keys are narrow: sub-pattern words + count, not the full
        // input width.
        assert!(cone_cache.cone_key_words() >= 1);
        assert!(cone_cache.cone_key_words() <= 3);
        let (cone_hits, cone_misses) = cone_cache.cone_stats();
        assert_eq!((cone_hits, cone_misses), cone_cache.stats());
        assert!(cone_hits > 0 && cone_misses > 0);

        // A second job over the same cone (a later trial) hits the warm
        // cache through a fresh oracle instance.
        let mut second_inner = CachedOracle::over_cone(&nl, Arc::clone(&cone_cache), inputs);
        let mut second = CoiOracle::new(&mut second_inner, &proj);
        let misses_before = cone_cache.stats().1;
        assert_eq!(second.query_block(&block), lanes);
        assert_eq!(cone_cache.stats().1, misses_before, "warm trial re-misses");
    }

    #[test]
    fn cone_and_full_keys_never_alias() {
        // Same netlist, same pattern content: the cone-keyed probe and
        // the full-key probe must live under distinct fingerprints even
        // when the cone reads every input.
        let nl = parse_bench(C17_BENCH).unwrap();
        let cache = OracleCache::shared();
        let all_inputs: Vec<usize> = (0..5).collect();
        let mut cone = CachedOracle::over_cone(&nl, Arc::clone(&cache), all_inputs);
        let mut full = CachedOracle::over(&nl, Arc::clone(&cache));
        let pattern = [true, false, true, false, true];
        let ya = cone.query(&pattern);
        let yb = full.query(&pattern);
        assert_eq!(ya, yb, "same chip, same pattern");
        assert_eq!(cache.stats(), (0, 2), "salted fingerprints keep keys apart");
        assert_eq!(cache.entries(), 2);
    }
}
