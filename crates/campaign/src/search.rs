//! Profile search: the defender's inverse problem.
//!
//! Campaign grids answer "how well does *this* error profile hold up?";
//! the search answers the question the paper's defender actually has:
//! **what is the cheapest profile that still wins?** Fewer stochastic
//! switches mean fewer aggressively-clocked (power-hungry, timing-fragile)
//! GSHE devices, and lower rates mean gentler operating points — so cost
//! is the pair *(noisy-switch count, mean per-switch rate)* and the
//! deliverable is the Pareto front of winning profiles.
//!
//! [`ProfileSearch`] (1+λ)-evolves dense per-switch rate vectors over the
//! cloaked cells of one keyed benchmark:
//!
//! * **generation 0** starts from *physics*, not arbitrary vectors: for
//!   each spec'd clock period, the device Monte Carlo's uniform rate
//!   ([`ClockRateTable`]) spread by each [`NoiseShape`] (uniform /
//!   output-cone / depth-gradient), plus the all-quiet baseline — every
//!   seed candidate is a realizable operating point;
//! * each later generation mutates the current front (drop a switch,
//!   halve a rate — strictly cheaper neighbors; raising mutations only
//!   when no winner exists yet), dedups against everything already
//!   scored, and evaluates λ fresh candidates;
//! * **scoring** runs trials × attacks through the session pool: each
//!   trial is one [`gshe_attacks::dip_engine`] refinement at the spec'd
//!   batch width ([`DEFAULT_BATCH_WIDTH`] by default) against
//!   [`OracleStack::noisy`] — or [`OracleStack::rotating_noisy`] when the
//!   spec carries a rotation budget, searching the *combined*-defense
//!   frontier. The defense wins a trial when the attack fails to recover
//!   a functionally-correct key.
//!
//! ## Reproducibility
//!
//! Every random choice derives from the spec seed: gate selection and
//! transform seeds use the campaign derivation, each trial's oracle seed
//! composes the candidate's profile salt with the rotation salt by the
//! XOR discipline of [`crate::job`] (`rotation_salt(period) ^
//! profile_salt ^ trial`), and mutation draws come from a dedicated
//! main-thread RNG. Scoring tasks land in submission order whatever the
//! thread count, so a whole search is replayable from one seed —
//! [`SearchReport::deterministic_json`] is byte-identical across
//! `threads = 1` and `threads = N`.

use crate::cache::CachedOracle;
use crate::job::{
    hash_mix, hash_str, noise_profile, rotation_salt, select_seed, transform_seed, AttackSeeds,
    NoiseShape,
};
use crate::physical::{is_valid_clock_period, ClockRateTable};
use crate::report::{json_f64, json_str};
use crate::spec::{
    parse_array, parse_scheme, parse_string, parse_string_array, scheme_name, strip_comment,
    valid_attack_names, valid_scheme_names,
};
use crate::EvalSession;
use gshe_attacks::{
    verify_key, AttackConfig, AttackKind, AttackRunner, AttackStatus, OracleStack,
    DEFAULT_BATCH_WIDTH,
};
use gshe_camo::{CamoScheme, KeyedNetlist};
use gshe_logic::{ErrorProfile, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Salt folded into trial oracle seeds for the candidate-profile
/// dimension (composes by XOR with [`rotation_salt`], mirroring the
/// campaign grid's salt discipline).
fn profile_salt(profile: &ErrorProfile) -> u64 {
    hash_mix(profile.fingerprint() ^ 0x9F0F_11E5)
}

/// The valid TOML keys of a search spec, in documentation order.
pub const SEARCH_KEYS: [&str; 17] = [
    "name",
    "benchmark",
    "scale",
    "level",
    "scheme",
    "attacks",
    "rotation_period",
    "clock_periods_ns",
    "trials",
    "generations",
    "lambda",
    "target_success",
    "seed",
    "timeout_secs",
    "threads",
    "cache_cap",
    "dip_batch",
];

/// A declarative description of one profile search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// Search name (report header, output file stem).
    pub name: String,
    /// The one benchmark under study.
    pub benchmark: String,
    /// Benchmark-scale divisor.
    pub scale: usize,
    /// Protection level (fraction of gates camouflaged).
    pub level: f64,
    /// Camouflaging scheme.
    pub scheme: CamoScheme,
    /// Attacks every candidate must defeat.
    pub attacks: Vec<AttackKind>,
    /// Rotation budget: `0` searches the noise-only frontier; `n > 0`
    /// scores candidates against the **combined** defense
    /// ([`OracleStack::rotating_noisy`] at period `n`) — the cheapest
    /// noise *given* that rotation budget.
    pub rotation_period: u64,
    /// Clock periods (ns) seeding generation 0 via the device Monte
    /// Carlo; empty uses the spec default `[0.8, 2.0, 6.0]`.
    pub clock_periods_ns: Vec<f64>,
    /// Attack trials per (candidate, attack).
    pub trials: u64,
    /// Mutation generations after the physics-seeded generation 0.
    pub generations: u64,
    /// Offspring per generation (the λ of 1+λ).
    pub lambda: usize,
    /// Highest attacker success rate a candidate may show and still win
    /// (the target confidence; 0.0 = the defense must shut the attack
    /// out completely).
    pub target_success: f64,
    /// Master seed; the whole search replays from it.
    pub seed: u64,
    /// Wall-clock budget per attack trial.
    pub timeout: Duration,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Oracle-cache entry cap for the session (0 = unbounded).
    pub cache_cap: u64,
    /// DIP batch width scoring runs at.
    pub dip_batch: usize,
}

impl Default for SearchSpec {
    fn default() -> Self {
        SearchSpec {
            name: "profile-search".to_string(),
            benchmark: "ex1010".to_string(),
            scale: 400,
            level: 0.15,
            scheme: CamoScheme::GsheAll16,
            attacks: vec![AttackKind::Sat],
            rotation_period: 0,
            clock_periods_ns: Vec::new(),
            trials: 2,
            generations: 3,
            lambda: 4,
            target_success: 0.0,
            seed: 1,
            timeout: Duration::from_secs(30),
            threads: 0,
            cache_cap: 1 << 16,
            dip_batch: DEFAULT_BATCH_WIDTH,
        }
    }
}

impl SearchSpec {
    /// The clock periods seeding generation 0 (the default span covers
    /// the device's deterministic-to-stochastic regime, Fig. 4).
    pub fn seed_clock_periods(&self) -> Vec<f64> {
        if self.clock_periods_ns.is_empty() {
            vec![0.8, 2.0, 6.0]
        } else {
            self.clock_periods_ns.clone()
        }
    }

    /// Parses a search spec from the same minimal TOML subset campaign
    /// specs use (see [`crate::CampaignSpec::parse_toml`]); a `[search]`
    /// table header is accepted and ignored.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn parse_toml(text: &str) -> Result<SearchSpec, String> {
        let mut spec = SearchSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() || line.starts_with('[') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let fail = |what: &str| format!("line {}: {what}", lineno + 1);
            match key {
                "name" => spec.name = parse_string(value).ok_or_else(|| fail("bad string"))?,
                "benchmark" => {
                    spec.benchmark = parse_string(value).ok_or_else(|| fail("bad string"))?
                }
                "scale" => spec.scale = value.parse().map_err(|_| fail("bad integer"))?,
                "level" => spec.level = value.parse().map_err(|_| fail("bad number"))?,
                "scheme" => {
                    let name = parse_string(value).ok_or_else(|| fail("bad string"))?;
                    spec.scheme = parse_scheme(&name).ok_or_else(|| {
                        fail(&format!(
                            "unknown scheme `{name}` (valid: {})",
                            valid_scheme_names()
                        ))
                    })?;
                }
                "attacks" => {
                    let names =
                        parse_string_array(value).ok_or_else(|| fail("bad string array"))?;
                    spec.attacks = names
                        .iter()
                        .map(|n| {
                            AttackKind::parse(n).ok_or_else(|| {
                                fail(&format!(
                                    "unknown attack `{n}` (valid: {})",
                                    valid_attack_names()
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "rotation_period" => {
                    spec.rotation_period = value.parse().map_err(|_| fail("bad integer"))?
                }
                "clock_periods_ns" => {
                    let periods = parse_array::<f64>(value)
                        .ok_or_else(|| fail("bad number array (clock periods in ns)"))?;
                    if let Some(bad) = periods.iter().find(|p| !is_valid_clock_period(**p)) {
                        return Err(fail(&format!(
                            "clock period must be a positive number of ns, got {bad}"
                        )));
                    }
                    spec.clock_periods_ns = periods;
                }
                "trials" => spec.trials = value.parse().map_err(|_| fail("bad integer"))?,
                "generations" => {
                    spec.generations = value.parse().map_err(|_| fail("bad integer"))?
                }
                "lambda" => spec.lambda = value.parse().map_err(|_| fail("bad integer"))?,
                "target_success" => {
                    spec.target_success = value.parse().map_err(|_| fail("bad number"))?
                }
                "seed" => spec.seed = value.parse().map_err(|_| fail("bad integer"))?,
                "timeout_secs" => {
                    spec.timeout =
                        Duration::from_secs(value.parse().map_err(|_| fail("bad integer"))?)
                }
                "threads" => spec.threads = value.parse().map_err(|_| fail("bad integer"))?,
                "cache_cap" => spec.cache_cap = value.parse().map_err(|_| fail("bad integer"))?,
                "dip_batch" => spec.dip_batch = value.parse().map_err(|_| fail("bad integer"))?,
                other => {
                    return Err(fail(&format!(
                        "unknown key `{other}` (valid keys: {})",
                        SEARCH_KEYS.join(", ")
                    )))
                }
            }
        }
        Ok(spec)
    }
}

/// One candidate defense: a dense rate vector over the keyed netlist's
/// cloaked cells (index i = `camo_gates()[i]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Per-switch error rates, aligned with the keyed netlist's camo
    /// gates.
    pub rates: Vec<f64>,
    /// Human-readable provenance (`"clock:2ns:uniform"`,
    /// `"g2:drop(clock:2ns:uniform)"`, …).
    pub origin: String,
}

impl Candidate {
    /// Switches with a nonzero rate.
    pub fn noisy_switches(&self) -> usize {
        self.rates.iter().filter(|&&r| r > 0.0).count()
    }

    /// Mean rate over *all* cloaked switches (so lowering any rate lowers
    /// the cost, even without silencing a switch).
    pub fn mean_rate(&self) -> f64 {
        if self.rates.is_empty() {
            0.0
        } else {
            self.rates.iter().sum::<f64>() / self.rates.len() as f64
        }
    }
}

/// A candidate plus its measured attack resistance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    /// The candidate itself.
    pub candidate: Candidate,
    /// Generation the candidate was proposed in (0 = physics seeds).
    pub generation: u64,
    /// Switches with a nonzero rate (the first cost axis).
    pub noisy_switches: usize,
    /// Mean per-switch rate (the second cost axis).
    pub mean_rate: f64,
    /// Fraction of attack runs that recovered a functionally-correct key.
    pub success_rate: f64,
    /// Total attack runs scored (trials × attacks).
    pub attack_runs: u64,
    /// Mean oracle queries per attack run.
    pub mean_queries: f64,
    /// The candidate defeats every attack at the target confidence.
    pub wins: bool,
}

/// Everything a profile search produced.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The spec the search ran.
    pub spec: SearchSpec,
    /// Every candidate scored, in evaluation order.
    pub evaluated: Vec<ScoredCandidate>,
    /// Indices into `evaluated`: the winning Pareto front, sorted by
    /// (noisy switches, mean rate).
    pub front: Vec<usize>,
    /// Worker threads the search ran on.
    pub threads: usize,
    /// Total wall-clock time.
    pub wall_time: Duration,
    /// Oracle cache (hits, misses, entries, evictions, cap) at the end of
    /// the search.
    pub cache: (u64, u64, u64, u64, u64),
}

impl SearchReport {
    /// The winning Pareto-front rows, cheapest first.
    pub fn front_rows(&self) -> Vec<&ScoredCandidate> {
        self.front.iter().map(|&i| &self.evaluated[i]).collect()
    }

    /// Full JSON, including wall-clock timings and cache stats.
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// JSON with every timing and machine-dependent field omitted: a pure
    /// function of the search spec, byte-identical at any thread count.
    pub fn deterministic_json(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, timing: bool) -> String {
        let mut out = String::new();
        out.push('{');
        json_str(&mut out, "search", &self.spec.name);
        out.push(',');
        json_str(&mut out, "benchmark", &self.spec.benchmark);
        out.push(',');
        json_str(&mut out, "scheme", scheme_name(self.spec.scheme));
        let _ = write!(
            out,
            ",\"level\":{},\"attacks\":[",
            json_f64(self.spec.level)
        );
        for (i, attack) in self.spec.attacks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", attack.name());
        }
        let _ = write!(
            out,
            "],\"rotation_period\":{},\"target_success\":{},\"generations\":{},\"lambda\":{}",
            self.spec.rotation_period,
            json_f64(self.spec.target_success),
            self.spec.generations,
            self.spec.lambda,
        );
        if timing {
            let (hits, misses, entries, evictions, cap) = self.cache;
            let _ = write!(
                out,
                ",\"threads\":{},\"wall_time_secs\":{},\"cache_hits\":{hits},\
                 \"cache_misses\":{misses},\"cache_entries\":{entries},\
                 \"cache_evictions\":{evictions}",
                self.threads,
                json_f64(self.wall_time.as_secs_f64()),
            );
            if cap != crate::cache::UNBOUNDED {
                let _ = write!(out, ",\"cache_cap\":{cap}");
            }
        }
        out.push_str(",\"front\":[");
        for (i, &idx) in self.front.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_candidate(&mut out, &self.evaluated[idx]);
        }
        out.push_str("],\"evaluated\":[");
        for (i, row) in self.evaluated.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_candidate(&mut out, row);
        }
        out.push_str("]}");
        out
    }

    /// CSV of every evaluated candidate (with an `on_front` marker).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "origin,generation,noisy_switches,mean_rate,success_rate,wins,on_front,\
             attack_runs,mean_queries\n",
        );
        for (i, row) in self.evaluated.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{}",
                row.candidate.origin,
                row.generation,
                row.noisy_switches,
                row.mean_rate,
                row.success_rate,
                row.wins,
                self.front.contains(&i),
                row.attack_runs,
                row.mean_queries,
            );
        }
        out
    }
}

fn render_candidate(out: &mut String, row: &ScoredCandidate) {
    out.push('{');
    json_str(out, "origin", &row.candidate.origin);
    let _ = write!(
        out,
        ",\"generation\":{},\"noisy_switches\":{},\"mean_rate\":{},\
         \"success_rate\":{},\"wins\":{},\"attack_runs\":{},\"mean_queries\":{},\"rates\":[",
        row.generation,
        row.noisy_switches,
        json_f64(row.mean_rate),
        json_f64(row.success_rate),
        row.wins,
        row.attack_runs,
        json_f64(row.mean_queries),
    );
    for (i, rate) in row.candidate.rates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_f64(*rate));
    }
    out.push_str("]}");
}

/// Rates below this floor are treated as "silence the switch" by the
/// halving mutation — physically, drives this reliable are deterministic.
const RATE_FLOOR: f64 = 1e-4;

/// One attack-trial outcome: (attacker recovered a correct key, queries).
type TrialOutcome = (bool, u64);

/// The search driver: holds the session, spec, and the one keyed
/// benchmark every candidate defends.
pub struct ProfileSearch<'s> {
    session: &'s EvalSession,
    spec: SearchSpec,
    netlist: Arc<Netlist>,
    keyed: Arc<KeyedNetlist>,
    transform: u64,
}

impl<'s> ProfileSearch<'s> {
    /// Materializes the benchmark and its camouflaged form through the
    /// session (gate selection / transform seeds use the campaign
    /// derivation, so the search defends exactly the instance a campaign
    /// at the same seed would attack).
    ///
    /// # Errors
    ///
    /// Propagates benchmark resolution and camouflage failures; rejects a
    /// spec with no attacks (scoring would be a 0/0 success rate).
    pub fn new(session: &'s EvalSession, spec: SearchSpec) -> Result<Self, String> {
        if spec.attacks.is_empty() {
            return Err(format!(
                "search spec `{}` lists no attacks — nothing to defeat (valid: {})",
                spec.name,
                valid_attack_names()
            ));
        }
        let select = select_seed(spec.seed, &spec.benchmark, spec.level);
        let transform = transform_seed(select, spec.scheme);
        let seeds = AttackSeeds {
            select,
            transform,
            oracle: 0,
        };
        let netlist = session.netlist(&spec.benchmark, spec.scale, spec.seed)?;
        let keyed = session.keyed(
            &spec.benchmark,
            spec.scale,
            spec.seed,
            spec.level,
            spec.scheme,
            &seeds,
        )?;
        if keyed.camo_gates().is_empty() {
            return Err(format!(
                "benchmark `{}` at level {} cloaks no gates — nothing to search",
                spec.benchmark, spec.level
            ));
        }
        Ok(ProfileSearch {
            session,
            spec,
            netlist,
            keyed,
            transform,
        })
    }

    /// The keyed netlist under defense.
    pub fn keyed(&self) -> &KeyedNetlist {
        &self.keyed
    }

    /// The search spec.
    pub fn spec(&self) -> &SearchSpec {
        &self.spec
    }

    /// Materializes a candidate's dense [`ErrorProfile`] over the full
    /// netlist.
    pub fn profile_of(&self, candidate: &Candidate) -> ErrorProfile {
        let mut rates = vec![0.0; self.netlist.len()];
        for (gate, &rate) in self.keyed.camo_gates().iter().zip(&candidate.rates) {
            rates[gate.node.index()] = rate;
        }
        ErrorProfile::from_rates(rates)
    }

    fn candidate_from_profile(&self, profile: &ErrorProfile, origin: String) -> Candidate {
        Candidate {
            rates: self
                .keyed
                .camo_gates()
                .iter()
                .map(|g| profile.rate(g.node))
                .collect(),
            origin,
        }
    }

    /// Generation 0: physics-derived operating points — for each seed
    /// clock period, the Monte-Carlo rate spread by every [`NoiseShape`] —
    /// plus the all-quiet baseline (which a sound instance must *reject*,
    /// anchoring the front's "cheaper neighbor loses" property).
    pub fn seed_candidates(&self) -> Vec<Candidate> {
        let mut table = ClockRateTable::new();
        let mut out: Vec<Candidate> = vec![Candidate {
            rates: vec![0.0; self.keyed.camo_gates().len()],
            origin: "baseline:quiet".to_string(),
        }];
        let mut seen: Vec<u64> = out.iter().map(|c| self.fingerprint(c)).collect();
        for clock_ns in self.spec.seed_clock_periods() {
            let rate = table.rate_for(clock_ns);
            for shape in NoiseShape::ALL {
                let profile = noise_profile(&self.keyed, shape, rate);
                let candidate = self.candidate_from_profile(
                    &profile,
                    format!("clock:{clock_ns}ns:{}", shape.name()),
                );
                let fp = self.fingerprint(&candidate);
                if !seen.contains(&fp) {
                    seen.push(fp);
                    out.push(candidate);
                }
            }
        }
        out
    }

    fn fingerprint(&self, candidate: &Candidate) -> u64 {
        self.profile_of(candidate).fingerprint()
    }

    /// Scores `candidates` (trials × attacks each) through the session
    /// pool in one batch; results in candidate order.
    pub fn score(&self, generation: u64, candidates: Vec<Candidate>) -> Vec<ScoredCandidate> {
        let spec = &self.spec;
        let trials = spec.trials.max(1);
        let mut tasks: Vec<Box<dyn FnOnce() -> TrialOutcome + Send>> = Vec::new();
        for candidate in &candidates {
            let profile = self.profile_of(candidate);
            let salt = profile_salt(&profile);
            for &attack in &spec.attacks {
                for trial in 0..trials {
                    let oracle_seed = hash_mix(
                        self.transform
                            ^ hash_str(attack.name())
                            ^ rotation_salt(spec.rotation_period)
                            ^ salt
                            ^ trial,
                    );
                    let profile = profile.clone();
                    let netlist = Arc::clone(&self.netlist);
                    let keyed = Arc::clone(&self.keyed);
                    let cache = Arc::clone(self.session.cache());
                    let config = AttackConfig {
                        timeout: spec.timeout,
                        ..Default::default()
                    }
                    .with_dip_batch(spec.dip_batch);
                    let period = spec.rotation_period;
                    tasks.push(Box::new(move || {
                        let _span = gshe_obs::span("search.trial");
                        gshe_obs::count("search.trials", 1);
                        let runner = AttackRunner::with_config(attack, config, oracle_seed);
                        // Build the stack from the candidate's dimensions,
                        // exactly like campaign job materialization: quiet
                        // static candidates are deterministic chips and
                        // ride the session cache.
                        let out = match (period, profile.is_quiet()) {
                            (0, true) => {
                                let mut oracle = CachedOracle::over(&netlist, cache);
                                runner.run(&keyed, &mut oracle)
                            }
                            (0, false) => {
                                let mut oracle = OracleStack::noisy(&keyed, profile, oracle_seed);
                                runner.run(&keyed, &mut oracle)
                            }
                            (p, true) => {
                                let mut oracle = OracleStack::rotating(&keyed, p, oracle_seed);
                                runner.run(&keyed, &mut oracle)
                            }
                            (p, false) => {
                                let mut oracle =
                                    OracleStack::rotating_noisy(&keyed, profile, p, oracle_seed);
                                runner.run(&keyed, &mut oracle)
                            }
                        };
                        let attacker_won = out.status == AttackStatus::Success
                            && out
                                .key
                                .as_ref()
                                .and_then(|key| verify_key(&netlist, &keyed, key).ok())
                                .map(|v| v.functionally_equivalent)
                                .unwrap_or(false);
                        (attacker_won, out.queries)
                    }));
                }
            }
        }
        let outcomes = self.session.run_tasks(tasks);
        let runs_per = (spec.attacks.len() as u64) * trials;
        candidates
            .into_iter()
            .enumerate()
            .map(|(i, candidate)| {
                let slice = &outcomes[i * runs_per as usize..(i + 1) * runs_per as usize];
                let attacker_wins = slice.iter().filter(|(won, _)| *won).count() as u64;
                let success_rate = attacker_wins as f64 / runs_per as f64;
                let mean_queries =
                    slice.iter().map(|(_, q)| q).sum::<u64>() as f64 / runs_per as f64;
                ScoredCandidate {
                    noisy_switches: candidate.noisy_switches(),
                    mean_rate: candidate.mean_rate(),
                    success_rate,
                    attack_runs: runs_per,
                    mean_queries,
                    wins: success_rate <= spec.target_success + 1e-12,
                    generation,
                    candidate,
                }
            })
            .collect()
    }

    /// Runs the full search: physics seeds, then `generations` rounds of
    /// λ mutations of the current front. Returns the report with every
    /// scored candidate and the winning Pareto front.
    pub fn run(&self) -> SearchReport {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(hash_mix(self.spec.seed ^ 0x5EA2_C4ED));
        let mut archive: Vec<ScoredCandidate> = Vec::new();
        let mut seen: Vec<u64> = Vec::new();

        let seeds = self.seed_candidates();
        seen.extend(seeds.iter().map(|c| self.fingerprint(c)));
        archive.extend(self.score(0, seeds));

        for generation in 1..=self.spec.generations {
            let front = pareto_front(&archive);
            let climbing = front.is_empty();
            let parents: Vec<usize> = if climbing {
                // No winner yet: climb from the most resistant candidates.
                best_losers(&archive)
            } else {
                front
            };
            let mut mutants = Vec::new();
            for slot in 0..self.spec.lambda.max(1) {
                let parent = &archive[parents[slot % parents.len()]];
                for _attempt in 0..8 {
                    let candidate = mutate(&parent.candidate, climbing, &mut rng);
                    let Some(candidate) = candidate else { break };
                    let fp = self.fingerprint(&candidate);
                    if !seen.contains(&fp) {
                        seen.push(fp);
                        mutants.push(candidate);
                        break;
                    }
                }
            }
            if mutants.is_empty() {
                break;
            }
            archive.extend(self.score(generation, mutants));
        }

        let mut front = pareto_front(&archive);
        front.sort_by(|&a, &b| {
            let (ra, rb) = (&archive[a], &archive[b]);
            ra.noisy_switches
                .cmp(&rb.noisy_switches)
                .then(ra.mean_rate.total_cmp(&rb.mean_rate))
                .then(a.cmp(&b))
        });
        let cache = self.session.cache();
        let (hits, misses) = cache.stats();
        SearchReport {
            spec: self.spec.clone(),
            evaluated: archive,
            front,
            threads: self.session.threads(),
            wall_time: start.elapsed(),
            cache: (
                hits,
                misses,
                cache.entries(),
                cache.evictions(),
                cache.entry_cap(),
            ),
        }
    }
}

/// Indices of the winning Pareto front over (noisy switches, mean rate):
/// winners no other winner dominates (≤ on both axes, < on one).
pub fn pareto_front(archive: &[ScoredCandidate]) -> Vec<usize> {
    let winners: Vec<usize> = (0..archive.len()).filter(|&i| archive[i].wins).collect();
    winners
        .iter()
        .copied()
        .filter(|&i| {
            let c = &archive[i];
            !winners.iter().any(|&j| {
                if i == j {
                    return false;
                }
                let d = &archive[j];
                let no_worse = d.noisy_switches <= c.noisy_switches && d.mean_rate <= c.mean_rate;
                let better = d.noisy_switches < c.noisy_switches || d.mean_rate < c.mean_rate;
                // Exact cost ties: the earlier evaluation wins the slot.
                no_worse && (better || j < i)
            })
        })
        .collect()
}

/// When no candidate wins yet, climb from the most attack-resistant
/// candidates (lowest success rate; cost breaks ties downward).
fn best_losers(archive: &[ScoredCandidate]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..archive.len()).collect();
    order.sort_by(|&a, &b| {
        archive[a]
            .success_rate
            .total_cmp(&archive[b].success_rate)
            .then(archive[a].mean_rate.total_cmp(&archive[b].mean_rate))
            .then(a.cmp(&b))
    });
    order.truncate(3.min(order.len()));
    order
}

/// One mutation: cheaper neighbors of winners (drop a switch / halve a
/// rate), stronger neighbors (`climbing`) when nothing wins yet (revive a
/// switch at the parent's max rate / double a rate). Returns `None` when
/// the parent has no applicable move.
fn mutate(parent: &Candidate, climbing: bool, rng: &mut StdRng) -> Option<Candidate> {
    let noisy: Vec<usize> = (0..parent.rates.len())
        .filter(|&i| parent.rates[i] > 0.0)
        .collect();
    let mut rates = parent.rates.clone();
    if climbing {
        let quiet: Vec<usize> = (0..rates.len()).filter(|&i| rates[i] == 0.0).collect();
        let max_rate = rates.iter().copied().fold(0.25, f64::max).min(0.5);
        if !quiet.is_empty() && (noisy.is_empty() || rng.gen_bool(0.5)) {
            let i = quiet[rng.gen_range(0..quiet.len())];
            rates[i] = max_rate;
            return Some(Candidate {
                rates,
                origin: format!("g{}:raise({})", i, parent.origin),
            });
        }
        if noisy.is_empty() {
            return None;
        }
        let i = noisy[rng.gen_range(0..noisy.len())];
        rates[i] = (rates[i] * 2.0).min(0.5);
        return Some(Candidate {
            rates,
            origin: format!("g{}:boost({})", i, parent.origin),
        });
    }
    if noisy.is_empty() {
        return None;
    }
    let i = noisy[rng.gen_range(0..noisy.len())];
    if rng.gen_bool(0.5) {
        rates[i] = 0.0;
        Some(Candidate {
            rates,
            origin: format!("g{}:drop({})", i, parent.origin),
        })
    } else {
        let halved = rates[i] / 2.0;
        rates[i] = if halved < RATE_FLOOR { 0.0 } else { halved };
        Some(Candidate {
            rates,
            origin: format!("g{}:halve({})", i, parent.origin),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(count: usize, mean: f64, wins: bool) -> ScoredCandidate {
        ScoredCandidate {
            candidate: Candidate {
                rates: (0..4).map(|i| if i < count { mean } else { 0.0 }).collect(),
                origin: "t".into(),
            },
            generation: 0,
            noisy_switches: count,
            mean_rate: mean,
            success_rate: if wins { 0.0 } else { 1.0 },
            attack_runs: 1,
            mean_queries: 0.0,
            wins,
        }
    }

    #[test]
    fn pareto_front_keeps_only_nondominated_winners() {
        let archive = vec![
            scored(3, 0.3, true),  // dominated by (2, 0.2)
            scored(2, 0.2, true),  // front
            scored(1, 0.4, true),  // front (fewer switches, higher mean)
            scored(0, 0.0, false), // loser, never on the front
            scored(2, 0.1, true),  // front (dominates nothing? no: dominates (2,0.2))
        ];
        let front = pareto_front(&archive);
        assert_eq!(front, vec![2, 4]);
    }

    #[test]
    fn pareto_front_breaks_exact_ties_toward_the_earlier_candidate() {
        let archive = vec![scored(1, 0.2, true), scored(1, 0.2, true)];
        assert_eq!(pareto_front(&archive), vec![0]);
    }

    #[test]
    fn mutations_are_strictly_cheaper_for_winning_parents() {
        let parent = Candidate {
            rates: vec![0.4, 0.0, 0.2, 0.1],
            origin: "p".into(),
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let child = mutate(&parent, false, &mut rng).unwrap();
            let cheaper_count = child.noisy_switches() < parent.noisy_switches();
            let cheaper_mean = child.mean_rate() < parent.mean_rate();
            assert!(cheaper_count || cheaper_mean, "{child:?}");
            // Only one switch moves per mutation.
            let moved = child
                .rates
                .iter()
                .zip(&parent.rates)
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(moved, 1);
        }
        // A quiet parent has no cheaper neighbor.
        let quiet = Candidate {
            rates: vec![0.0; 4],
            origin: "q".into(),
        };
        assert!(mutate(&quiet, false, &mut rng).is_none());
        // Climbing mutations strengthen instead.
        let child = mutate(&quiet, true, &mut rng).unwrap();
        assert!(child.mean_rate() > 0.0);
    }

    #[test]
    fn spec_parses_from_toml_and_rejects_unknown_keys() {
        let text = r#"
[search]
name = "s"
benchmark = "ex1010"
scale = 400
level = 0.15
scheme = "gshe16"
attacks = ["sat", "appsat"]
rotation_period = 4
clock_periods_ns = [0.8, 6.0]
trials = 3
generations = 2
lambda = 5
target_success = 0.25
seed = 9
timeout_secs = 20
threads = 2
"#;
        let spec = SearchSpec::parse_toml(text).unwrap();
        assert_eq!(spec.name, "s");
        assert_eq!(spec.benchmark, "ex1010");
        assert_eq!(spec.scale, 400);
        assert_eq!(spec.level, 0.15);
        assert_eq!(spec.scheme, CamoScheme::GsheAll16);
        assert_eq!(spec.attacks, [AttackKind::Sat, AttackKind::AppSat]);
        assert_eq!(spec.rotation_period, 4);
        assert_eq!(spec.clock_periods_ns, [0.8, 6.0]);
        assert_eq!(spec.trials, 3);
        assert_eq!(spec.generations, 2);
        assert_eq!(spec.lambda, 5);
        assert_eq!(spec.target_success, 0.25);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.timeout, Duration::from_secs(20));
        assert_eq!(spec.threads, 2);

        let err = SearchSpec::parse_toml("bogus = 1").unwrap_err();
        assert!(err.contains("valid keys:"), "{err}");
        assert!(err.contains("target_success"), "{err}");
        let err = SearchSpec::parse_toml(r#"scheme = "nope""#).unwrap_err();
        assert!(err.contains("gshe16"), "{err}");
        assert!(SearchSpec::parse_toml("clock_periods_ns = [0.0]").is_err());
    }

    #[test]
    fn empty_attack_list_is_rejected_at_setup() {
        // runs_per would be 0 and every success rate 0/0 = NaN — a silent
        // "no winning profile" result. Reject loudly instead.
        let spec = SearchSpec {
            attacks: Vec::new(),
            ..SearchSpec::default()
        };
        let session = EvalSession::new(1);
        let err = match ProfileSearch::new(&session, spec) {
            Err(e) => e,
            Ok(_) => panic!("empty attack list accepted"),
        };
        assert!(err.contains("no attacks"), "{err}");
    }

    #[test]
    fn search_defends_the_campaign_instance_at_the_same_seed() {
        // The documented equivalence: a search and a campaign at the same
        // (seed, benchmark, level, scheme) share one materialization — on
        // a shared session the campaign run reuses the search's keyed
        // netlist instead of minting a second one.
        let session = EvalSession::new(1);
        let spec = SearchSpec {
            seed: 5,
            generations: 0,
            ..SearchSpec::default()
        };
        let search = ProfileSearch::new(&session, spec).unwrap();
        assert_eq!(session.cached_keyed(), 1);
        let campaign = crate::CampaignSpec {
            benchmarks: vec![search.spec().benchmark.clone()],
            scale: search.spec().scale,
            levels: vec![search.spec().level],
            schemes: vec![search.spec().scheme],
            seed: search.spec().seed,
            ..Default::default()
        };
        session.run(&campaign).unwrap();
        assert_eq!(
            session.cached_keyed(),
            1,
            "campaign minted a second keyed netlist — seed derivations diverged"
        );
    }

    #[test]
    fn default_clock_seeds_span_the_regime() {
        let spec = SearchSpec::default();
        assert_eq!(spec.seed_clock_periods(), [0.8, 2.0, 6.0]);
        let custom = SearchSpec {
            clock_periods_ns: vec![1.5],
            ..SearchSpec::default()
        };
        assert_eq!(custom.seed_clock_periods(), [1.5]);
    }

    #[test]
    fn candidate_costs_measure_count_and_mean() {
        let c = Candidate {
            rates: vec![0.4, 0.0, 0.2, 0.2],
            origin: "t".into(),
        };
        assert_eq!(c.noisy_switches(), 3);
        assert!((c.mean_rate() - 0.2).abs() < 1e-12);
        let empty = Candidate {
            rates: Vec::new(),
            origin: "e".into(),
        };
        assert_eq!(empty.mean_rate(), 0.0);
    }

    #[test]
    fn report_json_and_csv_cover_front_and_evaluated() {
        let report = SearchReport {
            spec: SearchSpec::default(),
            evaluated: vec![scored(0, 0.0, false), scored(1, 0.25, true)],
            front: vec![1],
            threads: 2,
            wall_time: Duration::from_secs(1),
            cache: (1, 2, 3, 4, 1 << 16),
        };
        let det = report.deterministic_json();
        assert!(det.contains("\"front\":[{"));
        assert!(det.contains("\"evaluated\":["));
        assert!(det.contains("\"noisy_switches\":1"));
        assert!(!det.contains("wall_time"));
        let full = report.to_json();
        assert!(full.contains("\"wall_time_secs\""));
        assert!(full.contains("\"cache_cap\":65536"));
        let csv = report.to_csv();
        assert!(csv.lines().count() == 3);
        assert!(csv.contains(",true,true,"), "{csv}");
        assert_eq!(report.front_rows().len(), 1);
    }
}
