//! Physical operating points: deriving oracle error rates from the device
//! Monte Carlo instead of abstract numbers.
//!
//! Sec. V-B's knob is *physical*: a switch driven at spin current `I_S`
//! and clocked with period `t_clk` misses its deadline with a probability
//! set by the switching-delay distribution (Fig. 4). This module hosts
//! the derivation ([`error_rate_for_clock`], [`error_profile_for_drives`];
//! re-exported at the historical `gshe_core::stochastic` paths) and the
//! campaign-facing piece: [`ClockRateTable`], the memoized
//! clock-period → error-rate map behind the spec-level `clock_periods_ns`
//! grid dimension, which lets campaigns sweep clock periods end to end —
//! device Monte Carlo → per-cell rate → noise profile → attack.

use gshe_device::{MonteCarlo, MonteCarloConfig, SwitchParams};
use gshe_logic::{ErrorProfile, NodeId};

/// Spin current (A) every cloaked cell is driven at in a spec-level
/// `clock_periods_ns` sweep: the paper's nominal 20 µA operating point,
/// where clock periods between ~0.8 ns and ~6 ns span the full
/// deterministic-to-stochastic regime (Fig. 4).
pub const CLOCK_SWEEP_DRIVE_CURRENT: f64 = 20e-6;

/// Monte Carlo samples per operating point in a `clock_periods_ns` sweep:
/// enough for a stable rate estimate, cheap enough that expansion stays
/// interactive (each distinct period costs one sweep, memoized).
pub const CLOCK_SWEEP_MC_SAMPLES: usize = 256;

/// Monte Carlo seed for `clock_periods_ns` sweeps. Fixed — the derived
/// rate is a device property, so it must not drift with the campaign
/// seed (two campaigns at different seeds sweep the *same* physical
/// operating points).
pub const CLOCK_SWEEP_MC_SEED: u64 = 0x6A7E_0DD5;

/// The validity rule for a spec-level clock period: finite and strictly
/// positive nanoseconds. Shared by the CLI flag parser, the TOML parser,
/// and grid expansion so the three surfaces cannot diverge.
pub fn is_valid_clock_period(clock_ns: f64) -> bool {
    clock_ns.is_finite() && clock_ns > 0.0
}

/// Estimates the per-evaluation error rate of a switch driven at spin
/// current `i_s` and clocked with period `t_clk`: the probability that a
/// thermal switching event misses the clock deadline.
pub fn error_rate_for_clock(
    params: &SwitchParams,
    i_s: f64,
    t_clk: f64,
    samples: usize,
    seed: u64,
) -> f64 {
    let mc = MonteCarlo::new(MonteCarloConfig {
        params: *params,
        samples,
        seed,
        threads: 0,
    });
    1.0 - mc.switching_probability(i_s, t_clk)
}

/// One switch's drive point: which netlist node it implements and how it
/// is driven (spin current and clock period — the two per-switch knobs of
/// Sec. V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchDrive {
    /// The netlist node the switch realizes.
    pub node: NodeId,
    /// Spin current, A.
    pub i_s: f64,
    /// Clock period, s.
    pub t_clk: f64,
}

/// Derives a dense per-node [`ErrorProfile`] from per-switch drive points:
/// each listed switch's flip rate comes from the device Monte Carlo
/// ([`error_rate_for_clock`]); unlisted nodes are deterministic.
///
/// Distinct `(i_s, t_clk)` pairs are measured once and shared — a fabric
/// with thousands of switches at a handful of operating points costs a
/// handful of Monte Carlo sweeps.
///
/// # Panics
///
/// Panics if a drive's node index is outside `0..len`.
pub fn error_profile_for_drives(
    params: &SwitchParams,
    len: usize,
    drives: &[SwitchDrive],
    samples: usize,
    seed: u64,
) -> ErrorProfile {
    let mut rates = vec![0.0; len];
    let mut measured: Vec<(u64, u64, f64)> = Vec::new();
    for drive in drives {
        let key = (drive.i_s.to_bits(), drive.t_clk.to_bits());
        let rate = match measured.iter().find(|(i, t, _)| (*i, *t) == key) {
            Some(&(_, _, r)) => r,
            None => {
                let r = error_rate_for_clock(params, drive.i_s, drive.t_clk, samples, seed);
                measured.push((key.0, key.1, r));
                r
            }
        };
        rates[drive.node.index()] = rate;
    }
    ErrorProfile::from_rates(rates)
}

/// A memoized clock-period → per-cell error-rate table over uniform
/// drives ([`CLOCK_SWEEP_DRIVE_CURRENT`] at every cloaked cell): the
/// engine behind the spec-level `clock_periods_ns` dimension. Each
/// distinct clock period costs one Monte Carlo sweep per table lifetime,
/// however many grid cells reference it.
#[derive(Debug, Clone)]
pub struct ClockRateTable {
    params: SwitchParams,
    measured: Vec<(u64, f64)>,
}

impl ClockRateTable {
    /// An empty table over the paper's Table I device.
    pub fn new() -> Self {
        ClockRateTable {
            params: SwitchParams::table_i(),
            measured: Vec::new(),
        }
    }

    /// The uniform per-cell error rate at clock period `clock_ns`
    /// (nanoseconds), measured on first use and memoized after.
    ///
    /// # Panics
    ///
    /// Panics if `clock_ns` is not a positive finite number.
    pub fn rate_for(&mut self, clock_ns: f64) -> f64 {
        assert!(
            is_valid_clock_period(clock_ns),
            "clock period must be positive, got {clock_ns} ns"
        );
        let key = clock_ns.to_bits();
        if let Some(&(_, rate)) = self.measured.iter().find(|(k, _)| *k == key) {
            return rate;
        }
        let rate = error_rate_for_clock(
            &self.params,
            CLOCK_SWEEP_DRIVE_CURRENT,
            clock_ns * 1e-9,
            CLOCK_SWEEP_MC_SAMPLES,
            CLOCK_SWEEP_MC_SEED,
        );
        self.measured.push((key, rate));
        rate
    }

    /// Distinct operating points measured so far.
    pub fn measured_points(&self) -> usize {
        self.measured.len()
    }
}

impl Default for ClockRateTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_table_memoizes_per_operating_point() {
        let mut table = ClockRateTable::new();
        let fast = table.rate_for(0.8);
        let slow = table.rate_for(6.0);
        assert_eq!(table.measured_points(), 2);
        // Repeat lookups are free and identical.
        assert_eq!(table.rate_for(0.8), fast);
        assert_eq!(table.rate_for(6.0), slow);
        assert_eq!(table.measured_points(), 2);
        // Fig. 4: aggressive clocks err, relaxed clocks don't.
        assert!(fast > 0.2, "0.8 ns clock should err often: {fast}");
        assert!(slow < 0.05, "6 ns clock is near-deterministic: {slow}");
    }

    #[test]
    #[should_panic(expected = "clock period must be positive")]
    fn clock_table_rejects_nonpositive_periods() {
        let _ = ClockRateTable::new().rate_for(0.0);
    }
}
