//! A persistent work-stealing thread pool for campaign jobs.
//!
//! Jobs are coarse (one protect→attack→measure experiment each) and their
//! runtimes vary by orders of magnitude — a timed-out SAT attack costs
//! seconds while a cache-hit measurement costs microseconds — so static
//! chunking wastes workers. Every worker owns a deque seeded round-robin
//! at submission; a worker pops from the *front* of its own deque and,
//! when empty, steals from the *back* of a sibling's, so the pool drains
//! imbalanced queues without a central dispatcher. Everything is
//! `std::sync` — the build environment has no external registry, so
//! `crossbeam` is off the table.
//!
//! The pool is **persistent** ([`WorkerPool`]): workers spawn once and
//! sleep on a condvar between batches, so an [`crate::EvalSession`] that
//! scores thousands of search candidates pays the thread-spawn cost once
//! per session instead of once per scoring call. The one-shot [`run_all`]
//! free function (spawn, drain, join) remains for callers that genuinely
//! run a single batch.
//!
//! Results are returned **in submission order**, which is what makes
//! campaign reports byte-identical across `threads = 1` and `threads = N`:
//! scheduling affects only *when* a job runs, never *which RNG stream* it
//! sees (seeds are derived from job identity) nor *where* its result lands.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// An erased pending task; the closure stores its own result and performs
/// its own batch accounting.
type ErasedTask = Box<dyn FnOnce() + Send>;

/// Per-worker activity counters, updated by the worker itself. These are
/// always on (plain relaxed atomics, independent of the `gshe_obs`
/// switch) so the pool-utilization report footer works out of the box;
/// they never influence scheduling or results.
#[derive(Default)]
struct WorkerCounters {
    /// Tasks this worker executed (own-queue pops plus steals).
    tasks: AtomicU64,
    /// Tasks this worker stole from a sibling's queue.
    steals: AtomicU64,
    /// Nanoseconds spent executing tasks.
    busy_ns: AtomicU64,
    /// Nanoseconds spent parked on the condvar waiting for work.
    idle_ns: AtomicU64,
}

/// Snapshot of one worker's activity counters (see [`WorkerPool::worker_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Tasks executed by this worker.
    pub tasks: u64,
    /// Tasks stolen from siblings' queues.
    pub steals: u64,
    /// Nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Nanoseconds spent idle waiting for work.
    pub idle_ns: u64,
}

impl WorkerStats {
    /// Busy fraction of this worker's observed lifetime, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / total as f64
    }

    /// Element-wise difference, saturating at zero (for before/after deltas).
    pub fn delta_from(&self, earlier: &WorkerStats) -> WorkerStats {
        WorkerStats {
            tasks: self.tasks.saturating_sub(earlier.tasks),
            steals: self.steals.saturating_sub(earlier.steals),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
            idle_ns: self.idle_ns.saturating_sub(earlier.idle_ns),
        }
    }
}

/// Aggregates a slice of per-worker stats into one summary line:
/// `(tasks, steals, mean utilization)`.
pub fn pool_summary(stats: &[WorkerStats]) -> (u64, u64, f64) {
    let tasks: u64 = stats.iter().map(|w| w.tasks).sum();
    let steals: u64 = stats.iter().map(|w| w.steals).sum();
    let utilization = if stats.is_empty() {
        0.0
    } else {
        stats.iter().map(WorkerStats::utilization).sum::<f64>() / stats.len() as f64
    };
    (tasks, steals, utilization)
}

/// Queue state shared by the workers of one [`WorkerPool`].
struct PoolState {
    /// Per-worker deques. Tasks are pushed round-robin at submission.
    queues: Vec<VecDeque<ErasedTask>>,
    /// Set once by [`WorkerPool::drop`]; workers exit when their queues
    /// drain afterwards.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers that work arrived (or shutdown began).
    work: Condvar,
    /// One counter block per worker, indexed by worker id.
    counters: Vec<WorkerCounters>,
}

/// Completion tracking for one submitted batch.
struct Batch<R> {
    /// Result slots in submission order; a panicking task stores `Err`.
    slots: Mutex<Vec<Option<Result<R, String>>>>,
    /// (remaining task count, condvar the submitter waits on).
    remaining: Mutex<usize>,
    done: Condvar,
}

/// A persistent work-stealing pool: workers spawn at construction and
/// live until drop, executing batches submitted via
/// [`WorkerPool::run_all`]. Batches from one thread run strictly in
/// submission order; the submitter blocks until its batch drains.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..threads).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work: Condvar::new(),
            counters: (0..threads).map(|_| WorkerCounters::default()).collect(),
        });
        let workers = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, me))
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshots every worker's cumulative activity counters (indexed by
    /// worker id). Callers wanting per-batch numbers take a snapshot
    /// before and after and use [`WorkerStats::delta_from`].
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared
            .counters
            .iter()
            .map(|c| WorkerStats {
                tasks: c.tasks.load(Ordering::Relaxed),
                steals: c.steals.load(Ordering::Relaxed),
                busy_ns: c.busy_ns.load(Ordering::Relaxed),
                idle_ns: c.idle_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Executes `tasks` across the workers with work stealing; returns the
    /// results in submission order. Blocks until the whole batch drains.
    ///
    /// A panicking task poisons nothing: the panic is caught per-task and
    /// re-raised here after the batch drains, so sibling jobs still
    /// complete.
    pub fn run_all<R: Send + 'static>(&self, tasks: Vec<Box<dyn FnOnce() -> R + Send>>) -> Vec<R> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let batch = Arc::new(Batch {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });

        {
            let mut state = self.shared.state.lock().unwrap();
            let workers = state.queues.len();
            for (index, run) in tasks.into_iter().enumerate() {
                let batch = Arc::clone(&batch);
                let erased: ErasedTask = Box::new(move || {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run))
                        .map_err(|payload| panic_message(&payload));
                    batch.slots.lock().unwrap()[index] = Some(outcome);
                    let mut remaining = batch.remaining.lock().unwrap();
                    *remaining -= 1;
                    if *remaining == 0 {
                        batch.done.notify_all();
                    }
                });
                state.queues[index % workers].push_back(erased);
            }
        }
        self.shared.work.notify_all();

        let mut remaining = batch.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).unwrap();
        }
        drop(remaining);

        let collected = std::mem::take(&mut *batch.slots.lock().unwrap());
        collected
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot.expect("every task ran") {
                Ok(r) => r,
                Err(msg) => panic!("campaign job {i} panicked: {msg}"),
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, me: usize) {
    let counters = &shared.counters[me];
    loop {
        let task = {
            let mut state = shared.state.lock().unwrap();
            loop {
                // Own queue first (front), then steal (back).
                if let Some((task, stolen)) = pop_or_steal(&mut state, me) {
                    counters.tasks.fetch_add(1, Ordering::Relaxed);
                    if stolen {
                        counters.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    break Some(task);
                }
                if state.shutdown {
                    break None;
                }
                let parked = Instant::now();
                state = shared.work.wait(state).unwrap();
                counters
                    .idle_ns
                    .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        };
        match task {
            Some(task) => {
                let started = Instant::now();
                {
                    let _span = gshe_obs::span("pool.task");
                    task();
                }
                counters
                    .busy_ns
                    .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            None => return,
        }
    }
}

/// Pops the next task for worker `me`; the flag reports whether it was
/// stolen from a sibling's queue rather than popped from `me`'s own.
fn pop_or_steal(state: &mut PoolState, me: usize) -> Option<(ErasedTask, bool)> {
    if let Some(task) = state.queues[me].pop_front() {
        return Some((task, false));
    }
    let n = state.queues.len();
    (1..n).find_map(|offset| {
        state.queues[(me + offset) % n]
            .pop_back()
            .map(|task| (task, true))
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One-shot convenience: spawns an ephemeral pool, runs `tasks`, joins.
/// Callers that run more than one batch should hold a [`WorkerPool`]
/// (usually via an [`crate::EvalSession`]) instead.
pub fn run_all<R: Send + 'static>(
    threads: usize,
    tasks: Vec<Box<dyn FnOnce() -> R + Send>>,
) -> Vec<R> {
    WorkerPool::new(threads).run_all(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn boxed(
        fs: Vec<impl FnOnce() -> usize + Send + 'static>,
    ) -> Vec<Box<dyn FnOnce() -> usize + Send>> {
        fs.into_iter()
            .map(|f| Box::new(f) as Box<dyn FnOnce() -> usize + Send>)
            .collect()
    }

    #[test]
    fn results_arrive_in_submission_order() {
        for threads in [1, 2, 4, 8] {
            let tasks = boxed((0..50).map(|i| move || i * i).collect::<Vec<_>>());
            let out = run_all(threads, tasks);
            assert_eq!(
                out,
                (0..50).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn persistent_pool_survives_many_batches() {
        // The EvalSession pattern: one pool, many scoring calls. Workers
        // must wake for every batch and results must stay ordered.
        let pool = WorkerPool::new(3);
        for round in 0..20usize {
            let tasks = boxed(
                (0..7)
                    .map(move |i| move || round * 100 + i)
                    .collect::<Vec<_>>(),
            );
            let out = pool.run_all(tasks);
            assert_eq!(out, (0..7).map(|i| round * 100 + i).collect::<Vec<_>>());
        }
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn imbalanced_queues_get_stolen() {
        // Thread 0's queue holds all the slow tasks (round-robin over 2
        // workers with slow tasks at even indices); stealing must spread
        // them or the wall clock doubles.
        let slow_ran = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                let slow_ran = Arc::clone(&slow_ran);
                Box::new(move || {
                    if i % 2 == 0 {
                        std::thread::sleep(Duration::from_millis(40));
                        slow_ran.fetch_add(1, Ordering::SeqCst);
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let start = std::time::Instant::now();
        let out = run_all(4, tasks);
        let elapsed = start.elapsed();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(slow_ran.load(Ordering::SeqCst), 4);
        // 4 slow tasks × 40 ms on 4 workers ≈ 40–80 ms; without stealing
        // they serialize on worker 0 at 160 ms.
        assert!(
            elapsed < Duration::from_millis(150),
            "no stealing? took {elapsed:?}"
        );
    }

    #[test]
    fn zero_threads_degrades_to_one() {
        let out = run_all(0, boxed(vec![|| 7usize]));
        assert_eq!(out, vec![7]);
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.run_all(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn task_panic_is_reported_after_drain() {
        let completed = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                let completed = Arc::clone(&completed);
                Box::new(move || {
                    if i == 2 {
                        panic!("job exploded");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run_all(tasks)));
        assert!(result.is_err());
        assert_eq!(
            completed.load(Ordering::SeqCst),
            5,
            "siblings must still run"
        );
        // The pool keeps working after a panicking batch.
        assert_eq!(pool.run_all(boxed(vec![|| 3usize])), vec![3]);
    }

    #[test]
    fn worker_stats_account_for_every_task() {
        let pool = WorkerPool::new(2);
        let tasks = boxed(
            (0..10usize)
                .map(|i| {
                    move || {
                        std::thread::sleep(Duration::from_millis(1));
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
        let before = pool.worker_stats();
        let _ = pool.run_all(tasks);
        let after = pool.worker_stats();
        assert_eq!(after.len(), 2);
        let deltas: Vec<WorkerStats> = after
            .iter()
            .zip(&before)
            .map(|(now, then)| now.delta_from(then))
            .collect();
        let (tasks, steals, utilization) = pool_summary(&deltas);
        assert_eq!(tasks, 10, "every task attributed to some worker");
        assert!(steals <= 10);
        assert!((0.0..=1.0).contains(&utilization));
        assert!(
            deltas.iter().any(|w| w.busy_ns > 0),
            "sleeping tasks must register busy time"
        );
    }

    #[test]
    fn drop_joins_workers_without_wedging() {
        let pool = WorkerPool::new(4);
        let _ = pool.run_all(boxed(vec![|| 1usize, || 2]));
        drop(pool); // must return promptly
    }
}
