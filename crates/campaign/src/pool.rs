//! A work-stealing thread pool for campaign jobs.
//!
//! Jobs are coarse (one protect→attack→measure experiment each) and their
//! runtimes vary by orders of magnitude — a timed-out SAT attack costs
//! seconds while a cache-hit measurement costs microseconds — so static
//! chunking wastes workers. Here every worker owns a deque seeded
//! round-robin at submission; a worker pops from the *front* of its own
//! deque and, when empty, steals from the *back* of a sibling's, so the
//! pool drains imbalanced queues without a central dispatcher. Everything
//! is `std::sync` — the build environment has no external registry, so
//! `crossbeam` is off the table.
//!
//! Results are returned **in submission order**, which is what makes
//! campaign reports byte-identical across `threads = 1` and `threads = N`:
//! scheduling affects only *when* a job runs, never *which RNG stream* it
//! sees (seeds are derived from job identity) nor *where* its result lands.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One pending task: its submission index plus the closure to run.
struct Task<R> {
    index: usize,
    run: Box<dyn FnOnce() -> R + Send>,
}

/// Result slots shared between workers, indexed by submission order.
type ResultSlots<R> = Arc<Mutex<Vec<Option<Result<R, String>>>>>;

/// Executes `tasks` on `threads` workers with work stealing; returns the
/// results in submission order.
///
/// A panicking task poisons nothing: the panic is caught per-task and
/// re-raised after the pool drains, so sibling jobs still complete.
pub fn run_all<R: Send + 'static>(
    threads: usize,
    tasks: Vec<Box<dyn FnOnce() -> R + Send>>,
) -> Vec<R> {
    let threads = threads.max(1);
    let n = tasks.len();

    // Per-worker deques, seeded round-robin.
    let queues: Vec<Arc<Mutex<VecDeque<Task<R>>>>> = (0..threads)
        .map(|_| Arc::new(Mutex::new(VecDeque::new())))
        .collect();
    for (index, run) in tasks.into_iter().enumerate() {
        queues[index % threads]
            .lock()
            .unwrap()
            .push_back(Task { index, run });
    }

    let results: ResultSlots<R> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));

    std::thread::scope(|scope| {
        for me in 0..threads {
            let queues = queues.clone();
            let results = Arc::clone(&results);
            scope.spawn(move || {
                loop {
                    // Own queue first (front), then steal (back).
                    let task = pop_own(&queues[me]).or_else(|| steal(&queues, me));
                    let Some(task) = task else { break };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task.run))
                        .map_err(|payload| panic_message(&payload));
                    results.lock().unwrap()[task.index] = Some(outcome);
                }
            });
        }
    });

    let collected = Arc::into_inner(results)
        .expect("workers joined")
        .into_inner()
        .expect("results lock clean");
    collected
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot.expect("every task ran") {
            Ok(r) => r,
            Err(msg) => panic!("campaign job {i} panicked: {msg}"),
        })
        .collect()
}

fn pop_own<R>(queue: &Mutex<VecDeque<Task<R>>>) -> Option<Task<R>> {
    queue.lock().unwrap().pop_front()
}

fn steal<R>(queues: &[Arc<Mutex<VecDeque<Task<R>>>>], me: usize) -> Option<Task<R>> {
    let n = queues.len();
    (1..n).find_map(|offset| queues[(me + offset) % n].lock().unwrap().pop_back())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn boxed(
        fs: Vec<impl FnOnce() -> usize + Send + 'static>,
    ) -> Vec<Box<dyn FnOnce() -> usize + Send>> {
        fs.into_iter()
            .map(|f| Box::new(f) as Box<dyn FnOnce() -> usize + Send>)
            .collect()
    }

    #[test]
    fn results_arrive_in_submission_order() {
        for threads in [1, 2, 4, 8] {
            let tasks = boxed((0..50).map(|i| move || i * i).collect::<Vec<_>>());
            let out = run_all(threads, tasks);
            assert_eq!(
                out,
                (0..50).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn imbalanced_queues_get_stolen() {
        // Thread 0's queue holds all the slow tasks (round-robin over 2
        // workers with slow tasks at even indices); stealing must spread
        // them or the wall clock doubles.
        let slow_ran = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                let slow_ran = Arc::clone(&slow_ran);
                Box::new(move || {
                    if i % 2 == 0 {
                        std::thread::sleep(Duration::from_millis(40));
                        slow_ran.fetch_add(1, Ordering::SeqCst);
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let start = std::time::Instant::now();
        let out = run_all(4, tasks);
        let elapsed = start.elapsed();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(slow_ran.load(Ordering::SeqCst), 4);
        // 4 slow tasks × 40 ms on 4 workers ≈ 40–80 ms; without stealing
        // they serialize on worker 0 at 160 ms.
        assert!(
            elapsed < Duration::from_millis(150),
            "no stealing? took {elapsed:?}"
        );
    }

    #[test]
    fn zero_threads_degrades_to_one() {
        let out = run_all(0, boxed(vec![|| 7usize]));
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out: Vec<usize> = run_all(4, Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn task_panic_is_reported_after_drain() {
        let completed = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                let completed = Arc::clone(&completed);
                Box::new(move || {
                    if i == 2 {
                        panic!("job exploded");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_all(2, tasks)));
        assert!(result.is_err());
        assert_eq!(
            completed.load(Ordering::SeqCst),
            5,
            "siblings must still run"
        );
    }
}
