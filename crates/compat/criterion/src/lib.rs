//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io registry, so this workspace
//! vendors the slice of Criterion's API that `crates/bench/benches` uses:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, and [`black_box`].
//!
//! Instead of Criterion's statistical pipeline, each benchmark runs a short
//! warm-up followed by `sample_size` timed iterations and reports min /
//! mean / max wall-clock per iteration. Passing `--test` (as `cargo test
//! --benches` does for `harness = false` targets) runs every closure once
//! and skips timing, so benches double as smoke tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark driver: collects and runs benchmark closures.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = argv.iter().any(|a| a == "--test");
        // First non-flag argument filters benchmarks by substring, matching
        // Criterion's CLI convention.
        let filter = argv.iter().find(|a| !a.starts_with('-')).cloned();
        Criterion {
            sample_size: 100,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            rounds: if self.test_mode { 1 } else { self.sample_size },
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {name} ... ok");
            return;
        }
        let mut line = format!("{name:<48}");
        if bencher.samples.is_empty() {
            line.push_str(" (no samples)");
        } else {
            let min = bencher.samples.iter().min().unwrap();
            let max = bencher.samples.iter().max().unwrap();
            let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
            let _ = write!(
                line,
                " [{} .. {} .. {}] ({} samples)",
                fmt_duration(*min),
                fmt_duration(mean),
                fmt_duration(*max),
                bencher.samples.len()
            );
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<N: ToString, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.to_string());
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function-name/parameter identifier pair.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing harness passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass (also the only pass in `--test` mode).
        black_box(routine());
        for _ in 0..self.rounds {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configure(filter: Option<&str>, test_mode: bool) -> Criterion {
        Criterion {
            sample_size: 3,
            test_mode,
            filter: filter.map(str::to_string),
        }
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut runs = 0usize;
        configure(None, false).bench_function("counting", |b| {
            b.iter(|| runs += 1);
        });
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut runs = 0usize;
        configure(None, true).bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 2);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut runs = 0usize;
        configure(Some("zzz"), false).bench_function("abc", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = configure(None, true);
        let mut group = c.benchmark_group("g");
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| ()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
