//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io registry, so this workspace
//! vendors the slice of proptest's API that the test suites use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`, `ident in strategy`
//! and `ident: Type` parameters), range/tuple/`any`/`prop::collection::vec`
//! strategies, and the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case is
//! reported with its seed and case index instead of a minimized input. Case
//! generation is deterministic per test (seeded from the case index), so
//! failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Runner configuration: how many cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A value generator ("strategy" in proptest terms).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Rng::gen_bool(rng, 0.5)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen::<u64>(rng) as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy producing arbitrary values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Namespaced strategy constructors (`prop::collection::vec` et al.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rand::Rng::gen_range(rng, self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size_range)`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a `proptest!` test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub mod __rt {
    //! Internal runtime used by the [`proptest!`](crate::proptest) expansion.
    pub use rand::SeedableRng;

    /// Runs `body` for each case with a per-case deterministic RNG.
    pub fn run_cases(
        test_name: &str,
        config: crate::ProptestConfig,
        mut body: impl FnMut(&mut crate::TestRng) -> Result<(), String>,
    ) {
        // Per-test stream: hash the name so sibling tests draw distinct data.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        for case in 0..config.cases {
            let mut rng = <crate::TestRng as SeedableRng>::seed_from_u64(h ^ (case as u64) << 1);
            if let Err(msg) = body(&mut rng) {
                panic!("proptest case {case}/{} failed: {msg}", config.cases);
            }
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return Err(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Declares property tests. Supports the subset of upstream syntax used in
/// this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u8..16, flag: bool) {
///         prop_assert!(x < 16 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__rt::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                $config,
                |__proptest_rng| {
                    $crate::__proptest_bind! { rng = __proptest_rng; $($params)* }
                    #[allow(unreachable_code)]
                    {
                        $body
                        Ok(())
                    }
                },
            );
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( rng = $rng:ident; ) => {};
    ( rng = $rng:ident; $name:ident in $strategy:expr, $($rest:tt)* ) => {
        let $name = $crate::Strategy::generate(&($strategy), $rng);
        $crate::__proptest_bind! { rng = $rng; $($rest)* }
    };
    ( rng = $rng:ident; $name:ident in $strategy:expr ) => {
        let $name = $crate::Strategy::generate(&($strategy), $rng);
    };
    ( rng = $rng:ident; $name:ident : $ty:ty, $($rest:tt)* ) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind! { rng = $rng; $($rest)* }
    };
    ( rng = $rng:ident; $name:ident : $ty:ty ) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges and `any` bind and stay in bounds.
        #[test]
        fn binds_work(x in 0u8..16, y in 1usize..=8, f in -1.0f64..1.0, b: bool) {
            prop_assert!(x < 16);
            prop_assert!((1..=8).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = b;
        }

        /// Nested collection + tuple strategies generate within spec.
        #[test]
        fn collections_work(
            rows in prop::collection::vec(
                prop::collection::vec((1i64..8, any::<bool>()), 1..4),
                1..20,
            ),
        ) {
            prop_assert!(!rows.is_empty() && rows.len() < 20);
            for row in &rows {
                prop_assert!(!row.is_empty() && row.len() < 4);
                for &(v, _) in row {
                    prop_assert!((1..8).contains(&v));
                }
            }
        }
    }

    #[test]
    fn failing_case_reports() {
        let result = std::panic::catch_unwind(|| {
            crate::__rt::run_cases("t", ProptestConfig::with_cases(4), |_| {
                Err("boom".to_string())
            })
        });
        assert!(result.is_err());
    }
}
