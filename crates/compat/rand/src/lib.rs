//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors the small slice of `rand`'s 0.8 API that the
//! reproduction uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], [`rngs::ThreadRng`],
//! and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — high-quality and fully deterministic per seed, which is all
//! the repository relies on (it never assumes the upstream ChaCha stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random-number generator: the subset of `rand::Rng` used here.
///
/// Implemented for anything that can produce uniform `u64`s via
/// [`RngCore`]; all derived methods are provided.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        match range.sample_from(&mut || self.next_u64()) {
            Ok(v) => v,
            Err(e) => panic!("gen_range: {e}"),
        }
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        // 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Core entropy source: uniform `u64`s.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from a raw `u64` (the `Standard` distribution).
pub trait Standard: Sized {
    /// Maps one uniform `u64` to a uniform value of `Self`.
    fn sample(word: u64) -> Self;
}

impl Standard for u64 {
    fn sample(word: u64) -> Self {
        word
    }
}
impl Standard for u32 {
    fn sample(word: u64) -> Self {
        (word >> 32) as u32
    }
}
impl Standard for bool {
    fn sample(word: u64) -> Self {
        word >> 63 == 1
    }
}
impl Standard for f64 {
    fn sample(word: u64) -> Self {
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range; `Err` message when empty.
    #[doc(hidden)]
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> Result<T, &'static str>;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> Result<$t, &'static str> {
                if self.start >= self.end {
                    return Err("empty range");
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_mod(next(), span);
                Ok((self.start as i128 + v as i128) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> Result<$t, &'static str> {
                let (lo, hi) = (*self.start(), *self.end());
                if lo > hi {
                    return Err("empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widening_mod(next(), span);
                Ok((lo as i128 + v as i128) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform-enough reduction of a 64-bit word into `[0, span)` via the
/// widening-multiply trick (Lemire); `span` fits in 65 bits here.
fn widening_mod(word: u64, span: u128) -> u128 {
    (word as u128 * span) >> 64
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> Result<f64, &'static str> {
        if self.start >= self.end {
            return Err("empty range");
        }
        let u = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        Ok(self.start + u * (self.end - self.start))
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> Result<f64, &'static str> {
        let (lo, hi) = (*self.start(), *self.end());
        if lo > hi {
            return Err("empty range");
        }
        let u = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        Ok(lo + u * (hi - lo))
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> Result<f32, &'static str> {
        if self.start >= self.end {
            return Err("empty range");
        }
        let u = (next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        Ok(self.start + u * (self.end - self.start))
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Placeholder for `rand`'s thread-local generator. Only used as a type
    /// parameter (e.g. `None::<&mut ThreadRng>`); constructing one yields a
    /// fixed-seed [`StdRng`] stream.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(StdRng);

    impl Default for ThreadRng {
        fn default() -> Self {
            ThreadRng(StdRng::seed_from_u64(0x7_EAD))
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, the subset of `rand::seq::SliceRandom` used here.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
