//! # gshe-timing
//!
//! Static timing analysis over [`gshe_logic::Netlist`]s, path-delay
//! distribution extraction (paper Fig. 6), and the **delay-aware hybrid
//! CMOS–GSHE replacement** study of Sec. V-A: replacing CMOS gates on
//! non-critical paths with the 1.55 ns GSHE primitive *"such that no delay
//! overheads can be expected"*, which the paper finds covers 5–15% of all
//! gates on the IBM superblue circuits.
//!
//! ```
//! use gshe_logic::{Bf2, NetlistBuilder};
//! use gshe_timing::{DelayModel, TimingAnalysis};
//!
//! let mut b = NetlistBuilder::new("chain");
//! let x = b.input("x");
//! let y = b.input("y");
//! let g1 = b.gate2("g1", Bf2::NAND, x, y);
//! let g2 = b.gate2("g2", Bf2::NOR, g1, y);
//! b.output(g2);
//! let nl = b.finish().unwrap();
//!
//! let model = DelayModel::cmos_45nm();
//! let sta = TimingAnalysis::analyze(&nl, &model.node_delays(&nl));
//! assert!(sta.critical_delay() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay_model;
pub mod hybrid;
pub mod paths;
pub mod sta;

pub use delay_model::{DelayModel, Technology, GSHE_DELAY};
pub use hybrid::{delay_aware_replace, HybridResult};
pub use paths::{path_delay_histogram, PathHistogram};
pub use sta::TimingAnalysis;
