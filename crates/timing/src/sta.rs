//! Static timing analysis: arrival times, required times, slack.

use gshe_logic::Netlist;

/// Result of one STA pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingAnalysis {
    arrival: Vec<f64>,
    required: Vec<f64>,
    critical: f64,
}

impl TimingAnalysis {
    /// Runs STA over `nl` with per-node delays `delays` (seconds, indexed
    /// by node). Arrival at a node includes the node's own delay; primary
    /// outputs are required at the critical delay (zero-slack on the
    /// critical path).
    ///
    /// # Panics
    ///
    /// Panics if `delays.len() != nl.len()`.
    pub fn analyze(nl: &Netlist, delays: &[f64]) -> Self {
        assert_eq!(delays.len(), nl.len(), "delay vector width mismatch");
        let n = nl.len();
        let mut arrival = vec![0.0f64; n];
        for (i, node) in nl.nodes().enumerate() {
            let in_arr = node
                .kind
                .fanins()
                .map(|f| arrival[f.index()])
                .fold(0.0f64, f64::max);
            arrival[i] = in_arr + delays[i];
        }
        let critical = nl
            .outputs()
            .iter()
            .map(|o| arrival[o.index()])
            .fold(0.0f64, f64::max);

        // Required times, backward pass.
        let mut required = vec![f64::INFINITY; n];
        for &o in nl.outputs() {
            required[o.index()] = required[o.index()].min(critical);
        }
        for (i, node) in nl.nodes().enumerate().rev() {
            if required[i].is_infinite() {
                continue; // dead logic constrains nothing
            }
            let at_inputs = required[i] - delays[i];
            for f in node.kind.fanins() {
                required[f.index()] = required[f.index()].min(at_inputs);
            }
        }
        TimingAnalysis {
            arrival,
            required,
            critical,
        }
    }

    /// Arrival time of every node, s.
    pub fn arrivals(&self) -> &[f64] {
        &self.arrival
    }

    /// Required time of every node, s (`∞` for dead logic).
    pub fn required(&self) -> &[f64] {
        &self.required
    }

    /// Slack of node `i`: `required − arrival`.
    pub fn slack(&self, i: usize) -> f64 {
        self.required[i] - self.arrival[i]
    }

    /// The critical (maximum output arrival) delay, s.
    pub fn critical_delay(&self) -> f64 {
        self.critical
    }

    /// Indices of nodes on a critical path (zero slack within `eps`).
    pub fn critical_nodes(&self, eps: f64) -> Vec<usize> {
        (0..self.arrival.len())
            .filter(|&i| self.slack(i).abs() <= eps)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_logic::{Bf2, NetlistBuilder};

    /// x → g1 → g2 → out, plus a short side branch y → g3 → out2.
    fn two_path_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.gate2("g1", Bf2::NAND, x, y);
        let g2 = b.gate2("g2", Bf2::NAND, g1, y);
        let g3 = b.gate2("g3", Bf2::NOR, y, x);
        b.output(g2);
        b.output(g3);
        b.finish().unwrap()
    }

    #[test]
    fn arrival_times_accumulate() {
        let nl = two_path_netlist();
        // unit delays on gates only
        let d = vec![0.0, 0.0, 1.0, 1.0, 1.0];
        let sta = TimingAnalysis::analyze(&nl, &d);
        assert_eq!(sta.arrivals()[2], 1.0); // g1
        assert_eq!(sta.arrivals()[3], 2.0); // g2
        assert_eq!(sta.arrivals()[4], 1.0); // g3
        assert_eq!(sta.critical_delay(), 2.0);
    }

    #[test]
    fn slack_is_zero_on_critical_path_and_positive_off_it() {
        let nl = two_path_netlist();
        let d = vec![0.0, 0.0, 1.0, 1.0, 1.0];
        let sta = TimingAnalysis::analyze(&nl, &d);
        assert_eq!(sta.slack(2), 0.0); // g1 on critical path
        assert_eq!(sta.slack(3), 0.0); // g2
        assert_eq!(sta.slack(4), 1.0); // g3 has 1 unit of slack
    }

    #[test]
    fn critical_nodes_lie_on_the_long_path() {
        let nl = two_path_netlist();
        let d = vec![0.0, 0.0, 1.0, 1.0, 1.0];
        let sta = TimingAnalysis::analyze(&nl, &d);
        let crit = sta.critical_nodes(1e-12);
        assert!(crit.contains(&2) && crit.contains(&3));
        assert!(!crit.contains(&4));
    }

    #[test]
    fn increasing_one_delay_moves_the_critical_path() {
        let nl = two_path_netlist();
        let mut d = vec![0.0, 0.0, 1.0, 1.0, 1.0];
        d[4] = 5.0; // g3 becomes critical
        let sta = TimingAnalysis::analyze(&nl, &d);
        assert_eq!(sta.critical_delay(), 5.0);
        assert_eq!(sta.slack(4), 0.0);
        assert_eq!(sta.slack(3), 3.0);
    }

    #[test]
    fn required_time_of_dead_logic_is_infinite() {
        let mut b = NetlistBuilder::new("dead");
        let x = b.input("x");
        let y = b.input("y");
        let live = b.gate2("live", Bf2::AND, x, y);
        let _dead = b.gate2("dead", Bf2::OR, x, y);
        b.output(live);
        let nl = b.finish().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &[0.0, 0.0, 1.0, 1.0]);
        assert!(sta.required()[3].is_infinite());
        assert_eq!(sta.slack(2), 0.0);
    }
}
