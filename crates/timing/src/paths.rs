//! Path-delay distributions (paper Fig. 6).
//!
//! Fig. 6 plots, for each IBM superblue circuit, the number of paths at
//! each delay — biased distributions where most paths are short and a few
//! carry the dominant, critical delays. Enumerating paths explicitly is
//! exponential; [`path_delay_histogram`] instead counts them with a dynamic
//! program over quantized delay bins: the bin-vector of a node is the sum
//! of its fanins' vectors shifted by the node's delay, and PI→PO path
//! counts accumulate at the outputs. Counts are `f64` (superblue-scale
//! circuits have astronomically many paths).

use gshe_logic::Netlist;

/// Histogram of PI→PO path delays.
#[derive(Debug, Clone, PartialEq)]
pub struct PathHistogram {
    /// Bin width, s.
    pub bin_width: f64,
    /// Path count per bin (`counts[k]` covers `[k·w, (k+1)·w)`).
    pub counts: Vec<f64>,
}

impl PathHistogram {
    /// Total number of PI→PO paths.
    pub fn total_paths(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Largest non-empty bin's upper delay edge, s (≈ critical delay).
    pub fn max_delay(&self) -> f64 {
        let last = self
            .counts
            .iter()
            .rposition(|&c| c > 0.0)
            .map_or(0, |i| i + 1);
        last as f64 * self.bin_width
    }

    /// Delay below which `q` of all paths fall (bin resolution).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total_paths();
        let mut acc = 0.0;
        for (k, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= q * total {
                return (k + 1) as f64 * self.bin_width;
            }
        }
        self.max_delay()
    }

    /// `(delay, count)` series for plotting (bin centers).
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(k, &c)| ((k as f64 + 0.5) * self.bin_width, c))
            .collect()
    }
}

/// Computes the PI→PO path-delay histogram of `nl` under per-node `delays`,
/// quantized into `bins` bins of width `bin_width` (delays above the top
/// bin saturate into it).
///
/// # Panics
///
/// Panics if `delays.len() != nl.len()`, `bins == 0`, or
/// `bin_width <= 0`.
pub fn path_delay_histogram(
    nl: &Netlist,
    delays: &[f64],
    bins: usize,
    bin_width: f64,
) -> PathHistogram {
    assert_eq!(delays.len(), nl.len(), "delay vector width mismatch");
    assert!(
        bins > 0 && bin_width > 0.0,
        "bins and bin_width must be positive"
    );

    // Internal resolution: 16 sub-bins per output bin, so gate delays far
    // below the output bin width still accumulate along paths.
    const SUB: usize = 16;
    let quantum = bin_width / SUB as f64;
    let ibins = bins * SUB;
    let shift = |k: usize, d: f64| -> usize { (k + (d / quantum).round() as usize).min(ibins - 1) };

    // dp[i][k] = number of PI→node-i partial paths with delay ≈ k·quantum.
    // Vectors are freed once every fanout has consumed them, keeping the
    // live set proportional to the DAG frontier, not the whole netlist.
    let fanouts = nl.fanouts();
    let mut remaining: Vec<usize> = fanouts.iter().map(|f| f.len()).collect();
    let is_output = {
        let mut v = vec![false; nl.len()];
        for &o in nl.outputs() {
            v[o.index()] = true;
        }
        v
    };
    let mut dp: Vec<Option<Vec<f64>>> = vec![None; nl.len()];
    let mut out = vec![0.0f64; ibins];

    for (i, node) in nl.nodes().enumerate() {
        let mut v = vec![0.0f64; ibins];
        let mut has_fanin = false;
        for f in node.kind.fanins() {
            has_fanin = true;
            let fv = dp[f.index()]
                .as_ref()
                .expect("topological order keeps fanins live");
            for (k, &c) in fv.iter().enumerate() {
                if c > 0.0 {
                    v[shift(k, delays[i])] += c;
                }
            }
        }
        if !has_fanin {
            // A primary input / constant starts one path at its own delay.
            v[shift(0, delays[i])] = 1.0;
        }
        if is_output[i] {
            for (k, &c) in v.iter().enumerate() {
                out[k] += c;
            }
        }
        // Release fanin vectors that are no longer needed.
        for f in node.kind.fanins() {
            let r = &mut remaining[f.index()];
            *r -= 1;
            if *r == 0 && !is_output[f.index()] {
                dp[f.index()] = None;
            }
        }
        if remaining[i] > 0 || is_output[i] {
            dp[i] = Some(v);
        }
    }

    // Fold internal sub-bins into the requested output bins. A node that
    // feeds both an output and other logic is counted once per PO, matching
    // the PI→PO path definition.
    let mut counts = vec![0.0f64; bins];
    for (k, &c) in out.iter().enumerate() {
        counts[(k / SUB).min(bins - 1)] += c;
    }
    PathHistogram { bin_width, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_logic::{Bf2, GeneratorConfig, NetlistBuilder, NetlistGenerator};

    #[test]
    fn diamond_has_two_paths() {
        // x feeds two gates which reconverge: 2 distinct PI→PO paths of
        // equal delay, plus paths from y.
        let mut b = NetlistBuilder::new("d");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.gate2("g1", Bf2::AND, x, y);
        let g2 = b.gate2("g2", Bf2::OR, x, y);
        let g3 = b.gate2("g3", Bf2::XOR, g1, g2);
        b.output(g3);
        let nl = b.finish().unwrap();
        let d = vec![0.0, 0.0, 1.0, 1.0, 1.0];
        let h = path_delay_histogram(&nl, &d, 8, 1.0);
        // Paths: x→g1→g3, x→g2→g3, y→g1→g3, y→g2→g3 — all delay 2.
        assert_eq!(h.total_paths(), 4.0);
        assert_eq!(h.counts[2], 4.0);
    }

    #[test]
    fn chain_has_one_path_at_full_delay() {
        let mut b = NetlistBuilder::new("c");
        let x = b.input("x");
        let y = b.input("y");
        let mut prev = b.gate2("g0", Bf2::NAND, x, y);
        for i in 1..5 {
            prev = b.gate2(format!("g{i}"), Bf2::NAND, prev, y);
        }
        b.output(prev);
        let nl = b.finish().unwrap();
        let d: Vec<f64> = nl
            .nodes()
            .map(|n| if n.kind.is_gate() { 1.0 } else { 0.0 })
            .collect();
        let h = path_delay_histogram(&nl, &d, 16, 1.0);
        // Longest path has delay 5 (x through all five gates). y enters at
        // every stage, adding shorter paths.
        assert!(h.counts[5] >= 1.0);
        assert_eq!(h.max_delay(), 6.0); // bin 5 occupied → edge at 6
    }

    #[test]
    fn histogram_total_matches_path_count_dp() {
        // Cross-check: total paths equals an exact integer DP without
        // binning.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 60).with_seed(3))
            .unwrap()
            .generate();
        let d: Vec<f64> = nl
            .nodes()
            .map(|n| if n.kind.is_gate() { 1.0 } else { 0.0 })
            .collect();
        let h = path_delay_histogram(&nl, &d, 256, 1.0);
        // Exact count.
        let mut paths = vec![0.0f64; nl.len()];
        for (i, node) in nl.nodes().enumerate() {
            let s: f64 = node.kind.fanins().map(|f| paths[f.index()]).sum();
            paths[i] = if node.kind.fanins().count() == 0 {
                1.0
            } else {
                s
            };
        }
        let exact: f64 = nl.outputs().iter().map(|o| paths[o.index()]).sum();
        assert!((h.total_paths() - exact).abs() < 1e-6 * exact.max(1.0));
    }

    #[test]
    fn biased_generator_produces_biased_distribution() {
        // The Fig. 6 shape: median path delay well below the critical
        // delay.
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("t", 64, 32, 3000)
                .with_seed(5)
                .with_chain_bias(0.25),
        )
        .unwrap()
        .generate();
        let d: Vec<f64> = nl
            .nodes()
            .map(|n| if n.kind.is_gate() { 100e-12 } else { 0.0 })
            .collect();
        let h = path_delay_histogram(&nl, &d, 200, 100e-12);
        let median = h.quantile(0.5);
        let max = h.max_delay();
        assert!(
            median < 0.6 * max,
            "median {median:e} vs max {max:e} — distribution not biased"
        );
    }

    #[test]
    fn quantile_is_monotone() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 80).with_seed(9))
            .unwrap()
            .generate();
        let d: Vec<f64> = nl
            .nodes()
            .map(|n| if n.kind.is_gate() { 1.0 } else { 0.0 })
            .collect();
        let h = path_delay_histogram(&nl, &d, 64, 1.0);
        assert!(h.quantile(0.1) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.95));
    }
}
