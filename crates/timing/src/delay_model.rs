//! Gate delay and power models.
//!
//! The CMOS numbers are a load-inclusive 45 nm-class model (gate plus local
//! interconnect), which places large-circuit critical paths in the tens of
//! nanoseconds — the regime Fig. 6 shows for the IBM superblue suite. The
//! GSHE primitive contributes its Fig. 4 mean switching delay of 1.55 ns
//! regardless of function (the paper's hybrid-design assumption, fn. 5).

use gshe_logic::{Bf2, Netlist, NodeKind};

/// Mean GSHE switching delay at I_S = 20 µA, s (paper Sec. III-B).
pub const GSHE_DELAY: f64 = 1.55e-9;

/// Read power of the GSHE primitive, W (Table II "This work").
pub const GSHE_POWER: f64 = 0.2125e-6;

/// Which technology implements a gate in a hybrid design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Technology {
    /// Standard CMOS cell.
    #[default]
    Cmos,
    /// GSHE polymorphic primitive.
    Gshe,
}

/// Per-function CMOS delay/power model.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    /// Delay of an inverter/buffer stage, s.
    pub inv_delay: f64,
    /// Delay of NAND/NOR, s.
    pub nand_delay: f64,
    /// Delay of AND/OR (two-stage), s.
    pub and_delay: f64,
    /// Delay of XOR/XNOR, s.
    pub xor_delay: f64,
    /// Delay of other (compound) two-input functions, s.
    pub other_delay: f64,
    /// Average dynamic+leakage power per CMOS gate, W.
    pub gate_power: f64,
}

impl DelayModel {
    /// Load-inclusive 45 nm-class model.
    pub fn cmos_45nm() -> Self {
        DelayModel {
            inv_delay: 60e-12,
            nand_delay: 100e-12,
            and_delay: 150e-12,
            xor_delay: 200e-12,
            other_delay: 180e-12,
            gate_power: 1.2e-6,
        }
    }

    /// CMOS delay of a two-input function, s.
    pub fn delay_bf2(&self, f: Bf2) -> f64 {
        match f {
            Bf2::NAND | Bf2::NOR => self.nand_delay,
            Bf2::AND | Bf2::OR => self.and_delay,
            Bf2::XOR | Bf2::XNOR => self.xor_delay,
            Bf2::BUF_A | Bf2::BUF_B | Bf2::NOT_A | Bf2::NOT_B => self.inv_delay,
            Bf2::FALSE | Bf2::TRUE => 0.0,
            _ => self.other_delay,
        }
    }

    /// CMOS delay of a node, s (inputs and constants are free).
    pub fn delay_node(&self, kind: &NodeKind) -> f64 {
        match kind {
            NodeKind::Input | NodeKind::Const(_) => 0.0,
            NodeKind::Gate1 { .. } => self.inv_delay,
            NodeKind::Gate2 { f, .. } => self.delay_bf2(*f),
        }
    }

    /// Per-node delay vector for a netlist, all CMOS.
    pub fn node_delays(&self, nl: &Netlist) -> Vec<f64> {
        nl.nodes().map(|n| self.delay_node(&n.kind)).collect()
    }

    /// Per-node delay vector under a hybrid technology assignment.
    ///
    /// # Panics
    ///
    /// Panics if `tech.len() != nl.len()`.
    pub fn node_delays_hybrid(&self, nl: &Netlist, tech: &[Technology]) -> Vec<f64> {
        assert_eq!(tech.len(), nl.len(), "technology assignment width mismatch");
        nl.nodes()
            .zip(tech)
            .map(|(n, &t)| match (t, &n.kind) {
                (_, NodeKind::Input | NodeKind::Const(_)) => 0.0,
                (Technology::Cmos, kind) => self.delay_node(kind),
                (Technology::Gshe, _) => GSHE_DELAY,
            })
            .collect()
    }

    /// Total static power of a hybrid design, W.
    pub fn power_hybrid(&self, nl: &Netlist, tech: &[Technology]) -> f64 {
        nl.nodes()
            .zip(tech)
            .map(|(n, &t)| {
                if !n.kind.is_gate() {
                    0.0
                } else {
                    match t {
                        Technology::Cmos => self.gate_power,
                        Technology::Gshe => GSHE_POWER,
                    }
                }
            })
            .sum()
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::cmos_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_logic::NetlistBuilder;

    #[test]
    fn delay_ordering_is_physical() {
        let m = DelayModel::cmos_45nm();
        assert!(m.inv_delay < m.nand_delay);
        assert!(m.nand_delay < m.and_delay);
        assert!(m.and_delay < m.xor_delay);
        // GSHE is 1-2 orders slower than any CMOS cell (the paper's
        // central trade-off).
        assert!(GSHE_DELAY > 5.0 * m.xor_delay);
    }

    #[test]
    fn gshe_power_beats_cmos() {
        let m = DelayModel::cmos_45nm();
        assert!(GSHE_POWER < m.gate_power);
    }

    #[test]
    fn node_delays_respect_kinds() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.gate2("g", Bf2::XOR, x, y);
        let n = b.gate1("n", gshe_logic::Bf1::Inv, g);
        b.output(n);
        let nl = b.finish().unwrap();
        let m = DelayModel::cmos_45nm();
        let d = m.node_delays(&nl);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[2], m.xor_delay);
        assert_eq!(d[3], m.inv_delay);
    }

    #[test]
    fn hybrid_delays_substitute_gshe() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.gate2("g", Bf2::NAND, x, y);
        b.output(g);
        let nl = b.finish().unwrap();
        let m = DelayModel::cmos_45nm();
        let mut tech = vec![Technology::Cmos; nl.len()];
        tech[2] = Technology::Gshe;
        let d = m.node_delays_hybrid(&nl, &tech);
        assert_eq!(d[2], GSHE_DELAY);
        // Power drops when the gate moves to GSHE.
        let p_cmos = m.power_hybrid(&nl, &[Technology::Cmos; 3]);
        let p_hybrid = m.power_hybrid(&nl, &tech);
        assert!(p_hybrid < p_cmos);
    }
}
