//! Delay-aware hybrid CMOS–GSHE replacement (paper Sec. V-A).
//!
//! The paper replaces CMOS gates on non-critical paths with the GSHE
//! primitive "such that no delay overheads can be expected", reporting
//! 5–15% coverage on the superblue circuits. [`delay_aware_replace`]
//! implements that selection soundly: candidates are gates whose slack
//! covers the CMOS→GSHE delay penalty; batches are accepted only after a
//! full STA re-validation (with binary-search shrinking on violation), so
//! the returned assignment **never** increases the critical delay.

use crate::delay_model::{DelayModel, Technology, GSHE_DELAY};
use crate::sta::TimingAnalysis;
use gshe_logic::{Netlist, NodeId};

/// Result of the delay-aware replacement.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridResult {
    /// Per-node technology assignment.
    pub tech: Vec<Technology>,
    /// Gates moved to GSHE (candidates for camouflaging).
    pub gshe_gates: Vec<NodeId>,
    /// Fraction of all gates moved to GSHE.
    pub fraction: f64,
    /// Critical delay before replacement, s.
    pub baseline_critical: f64,
    /// Critical delay after replacement, s (≤ baseline, enforced).
    pub hybrid_critical: f64,
    /// Static power before replacement, W.
    pub baseline_power: f64,
    /// Static power after replacement, W.
    pub hybrid_power: f64,
    /// STA re-validation passes performed.
    pub sta_passes: usize,
}

/// Replaces as many CMOS gates as possible with GSHE primitives without
/// increasing the critical delay.
///
/// `slack_margin` reserves headroom (seconds) — pass 0.0 for the paper's
/// zero-overhead criterion.
pub fn delay_aware_replace(nl: &Netlist, model: &DelayModel, slack_margin: f64) -> HybridResult {
    let n = nl.len();
    let mut tech = vec![Technology::Cmos; n];
    let base_delays = model.node_delays(nl);
    let base_sta = TimingAnalysis::analyze(nl, &base_delays);
    let baseline_critical = base_sta.critical_delay();
    let mut sta_passes = 1usize;

    let penalty: Vec<f64> = nl
        .nodes()
        .enumerate()
        .map(|(i, node)| {
            if node.kind.is_gate() {
                GSHE_DELAY - base_delays[i]
            } else {
                f64::INFINITY
            }
        })
        .collect();

    let mut current_sta = base_sta;
    loop {
        // Candidates under the *current* assignment: unconverted gates
        // whose slack covers the penalty plus margin. Dead logic (infinite
        // required time) is always convertible.
        let mut candidates: Vec<usize> = (0..n)
            .filter(|&i| {
                tech[i] == Technology::Cmos
                    && penalty[i].is_finite()
                    && current_sta.slack(i) >= penalty[i] + slack_margin
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        // Most slack first: those are safest to convert together.
        candidates.sort_by(|&a, &b| {
            current_sta
                .slack(b)
                .partial_cmp(&current_sta.slack(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Accept the largest prefix that re-validates.
        let mut take = candidates.len();
        let mut accepted = false;
        while take >= 1 {
            for &i in &candidates[..take] {
                tech[i] = Technology::Gshe;
            }
            let delays = model.node_delays_hybrid(nl, &tech);
            let sta = TimingAnalysis::analyze(nl, &delays);
            sta_passes += 1;
            if sta.critical_delay() <= baseline_critical + 1e-15 {
                current_sta = sta;
                accepted = true;
                break;
            }
            // Roll back and halve.
            for &i in &candidates[..take] {
                tech[i] = Technology::Cmos;
            }
            take /= 2;
        }
        if !accepted {
            break;
        }
    }

    let final_delays = model.node_delays_hybrid(nl, &tech);
    let final_sta = TimingAnalysis::analyze(nl, &final_delays);
    let gshe_gates: Vec<NodeId> = (0..n)
        .filter(|&i| tech[i] == Technology::Gshe)
        .map(|i| NodeId(i as u32))
        .collect();
    let gates = nl.gate_count().max(1);
    HybridResult {
        fraction: gshe_gates.len() as f64 / gates as f64,
        gshe_gates,
        baseline_critical,
        hybrid_critical: final_sta.critical_delay(),
        baseline_power: model.power_hybrid(nl, &vec![Technology::Cmos; n]),
        hybrid_power: model.power_hybrid(nl, &tech),
        tech,
        sta_passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_logic::{Bf2, GeneratorConfig, NetlistBuilder, NetlistGenerator};

    #[test]
    fn never_increases_critical_delay() {
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("t", 32, 16, 600)
                .with_seed(7)
                .with_chain_bias(0.3),
        )
        .unwrap()
        .generate();
        let model = DelayModel::cmos_45nm();
        let r = delay_aware_replace(&nl, &model, 0.0);
        assert!(
            r.hybrid_critical <= r.baseline_critical + 1e-15,
            "critical went from {} to {}",
            r.baseline_critical,
            r.hybrid_critical
        );
    }

    #[test]
    fn deep_biased_circuit_yields_replacements() {
        // A circuit with a dominant critical chain leaves slack elsewhere.
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("t", 64, 32, 2000)
                .with_seed(11)
                .with_chain_bias(0.35),
        )
        .unwrap()
        .generate();
        let model = DelayModel::cmos_45nm();
        let r = delay_aware_replace(&nl, &model, 0.0);
        assert!(r.fraction > 0.01, "fraction = {}", r.fraction);
        assert!(r.hybrid_power < r.baseline_power);
    }

    #[test]
    fn shallow_circuit_yields_nothing() {
        // Critical delay below the GSHE delay: no gate can absorb 1.55 ns.
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("t", 16, 8, 60)
                .with_seed(13)
                .with_chain_bias(0.0),
        )
        .unwrap()
        .generate();
        let model = DelayModel::cmos_45nm();
        let r = delay_aware_replace(&nl, &model, 0.0);
        assert!(r.baseline_critical < GSHE_DELAY);
        // Only (transitively) dead logic — nodes with infinite required
        // time, off every PI→PO path — may have been converted; live gates
        // cannot absorb the 1.55 ns penalty.
        let base_sta = TimingAnalysis::analyze(&nl, &model.node_delays(&nl));
        for &g in &r.gshe_gates {
            assert!(
                base_sta.required()[g.index()].is_infinite(),
                "live gate {g} was converted in a shallow circuit"
            );
        }
        assert_eq!(r.hybrid_critical, r.baseline_critical);
    }

    #[test]
    fn margin_reduces_coverage() {
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("t", 32, 16, 1000)
                .with_seed(17)
                .with_chain_bias(0.35),
        )
        .unwrap()
        .generate();
        let model = DelayModel::cmos_45nm();
        let loose = delay_aware_replace(&nl, &model, 0.0);
        let tight = delay_aware_replace(&nl, &model, 5e-9);
        assert!(tight.gshe_gates.len() <= loose.gshe_gates.len());
    }

    #[test]
    fn hand_built_side_branch_is_converted() {
        // Long chain (critical) + one shallow side gate with huge slack.
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let mut prev = b.gate2("c0", Bf2::NAND, x, y);
        for i in 1..40 {
            prev = b.gate2(format!("c{i}"), Bf2::NAND, prev, y);
        }
        let side = b.gate2("side", Bf2::AND, x, y);
        b.output(prev);
        b.output(side);
        let nl = b.finish().unwrap();
        let model = DelayModel::cmos_45nm();
        // Chain delay = 40 × 100 ps = 4 ns > 1.55 ns: side gate fits.
        let r = delay_aware_replace(&nl, &model, 0.0);
        let side_id = nl.find("side").unwrap();
        assert!(
            r.gshe_gates.contains(&side_id),
            "side gate not converted: {r:?}"
        );
        assert!(r.hybrid_critical <= r.baseline_critical + 1e-15);
    }
}
