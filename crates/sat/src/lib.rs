//! # gshe-sat
//!
//! A from-scratch CDCL (conflict-driven clause learning) SAT solver with
//! watched literals, 1UIP learning with clause minimization, EVSIDS
//! branching, phase saving, Luby restarts, LBD-based learnt-clause
//! reduction, incremental clause addition, and solving under assumptions —
//! the substrate under the paper's SAT attacks (refs. 8, 12, 37 of the paper).
//!
//! The solver also enforces an explicit resource budget, mirroring the
//! scalability failures the paper observes ("internal error in 'lglib.c':
//! more than 134,217,724 variables").
//!
//! ```
//! use gshe_sat::{Lit, Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert!(s.model_value(b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod dimacs;
pub mod heap;
pub mod lit;
pub mod solver;
pub mod tseitin;

pub use cnf::{ClauseSink, CnfFormula};
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
pub use tseitin::CircuitEncoder;
