//! # gshe-sat
//!
//! A from-scratch modern CDCL (conflict-driven clause learning) SAT
//! solver — the substrate under the paper's SAT attacks (refs. 8, 12, 37
//! of the paper). Features:
//!
//! - **Arena clause database**: clauses live in one flat `u32` buffer
//!   (header word + inline literals, [`arena::ClauseRef`] offsets) with a
//!   real garbage collector that compacts the arena, rebuilds watch
//!   lists, and remaps reason references — memory stays bounded across
//!   long incremental sessions.
//! - **Propagation**: two watched literals with a blocker-literal fast
//!   path, plus dedicated binary-clause watchers that carry the implied
//!   literal inline so binary propagation never touches the arena.
//! - **Search**: 1UIP learning with clause minimization, EVSIDS
//!   branching, phase saving, Glucose-style adaptive restarts (fast/slow
//!   LBD averages with trail-depth restart blocking; Luby as a fallback
//!   mode), on-the-fly LBD updates, and LBD-tiered learnt-DB reduction on
//!   a geometric schedule — see [`solver::SearchConfig`].
//! - **Incrementality**: clause addition between solves, solving under
//!   assumptions, and model-blocking enumeration primitives.
//! - **Simplification** ([`simplify`]): SatELite-style preprocessing
//!   (backward subsumption, self-subsumption strengthening, bounded
//!   variable elimination with model reconstruction and a
//!   [`solver::Solver::freeze`] contract for incremental use) gated by
//!   [`simplify::SimplifyMode`], plus learnt-clause vivification at
//!   restart boundaries; and Plaisted–Greenbaum single-sided encoding via
//!   [`tseitin::Polarity`].
//!
//! The solver also enforces an explicit resource budget, mirroring the
//! scalability failures the paper observes ("internal error in 'lglib.c':
//! more than 134,217,724 variables").
//!
//! ```
//! use gshe_sat::{Lit, Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert!(s.model_value(b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cnf;
pub mod dimacs;
pub mod heap;
pub mod lit;
pub mod simplify;
pub mod solver;
pub mod tseitin;

pub use cnf::{ClauseSink, CnfFormula};
pub use lit::{Lit, Var};
pub use simplify::{SimplifyMode, SIMPLIFY_AUTO_THRESHOLD};
pub use solver::{RestartMode, SearchConfig, SolveResult, Solver, SolverStats};
pub use tseitin::{CircuitEncoder, Polarity};
