//! Indexed max-heap ordered by variable activity (the VSIDS order heap).

use crate::lit::Var;

/// A binary max-heap over variables keyed by an external activity array,
/// with O(log n) insert/remove and O(1) membership.
#[derive(Debug, Clone, Default)]
pub struct OrderHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl OrderHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        OrderHeap::default()
    }

    /// Ensures capacity for variables `0..n`.
    pub fn grow(&mut self, n: usize) {
        if self.position.len() < n {
            self.position.resize(n, ABSENT);
        }
    }

    /// Number of queued variables.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no variable is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` if `v` is currently queued.
    pub fn contains(&self, v: Var) -> bool {
        self.position.get(v.index()).is_some_and(|&p| p != ABSENT)
    }

    fn less(&self, a: Var, b: Var, activity: &[f64]) -> bool {
        // Max-heap: "less" means lower priority.
        activity[a.index()] < activity[b.index()]
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(self.heap[parent], self.heap[i], activity) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.less(self.heap[best], self.heap[l], activity) {
                best = l;
            }
            if r < self.heap.len() && self.less(self.heap[best], self.heap[r], activity) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i].index()] = i;
        self.position[self.heap[j].index()] = j;
    }

    /// Inserts `v` (no-op if already present).
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow(v.index() + 1);
        if self.contains(v) {
            return;
        }
        self.position[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the highest-activity variable.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.position[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order for `v` after its activity increased.
    pub fn decrease_key(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.position.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    /// Rebuilds the heap from scratch (after a global activity rescale).
    pub fn rebuild(&mut self, activity: &[f64]) {
        let vars: Vec<Var> = self.heap.drain(..).collect();
        for &v in &vars {
            self.position[v.index()] = ABSENT;
        }
        for v in vars {
            self.insert(v, activity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = OrderHeap::new();
        for i in 0..5 {
            h.insert(Var(i), &activity);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop(&activity))
            .map(|v| v.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut h = OrderHeap::new();
        h.insert(Var(0), &activity);
        h.insert(Var(0), &activity);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = OrderHeap::new();
        for i in 0..3 {
            h.insert(Var(i), &activity);
        }
        activity[0] = 10.0;
        h.decrease_key(Var(0), &activity);
        assert_eq!(h.pop(&activity), Some(Var(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0; 4];
        let mut h = OrderHeap::new();
        h.insert(Var(2), &activity);
        assert!(h.contains(Var(2)));
        assert!(!h.contains(Var(1)));
        h.pop(&activity);
        assert!(!h.contains(Var(2)));
        assert!(h.is_empty());
    }

    #[test]
    fn rebuild_preserves_membership() {
        let mut activity = vec![3.0, 1.0, 2.0];
        let mut h = OrderHeap::new();
        for i in 0..3 {
            h.insert(Var(i), &activity);
        }
        // Rescale: order flips.
        activity[0] = 0.1;
        h.rebuild(&activity);
        assert_eq!(h.pop(&activity), Some(Var(2)));
        assert_eq!(h.len(), 2);
    }
}
