//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable index as `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable with a polarity, encoded as `var << 1 | negated`.
///
/// ```
/// use gshe_sat::{Lit, Var};
///
/// let x = Var(3);
/// assert_eq!(!Lit::pos(x), Lit::neg(x));
/// assert_eq!(Lit::pos(x).var(), x);
/// assert!(Lit::pos(x).is_positive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    pub const fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    pub const fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Literal of `v` with the given polarity (`true` → positive).
    pub const fn with_polarity(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if the literal is the positive phase.
    pub const fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code (`2·var + negated`) for watch-list indexing.
    pub const fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub const fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// DIMACS-style integer (1-based, negative when negated).
    pub const fn to_dimacs(self) -> i64 {
        let v = (self.0 >> 1) as i64 + 1;
        if self.0 & 1 == 1 {
            -v
        } else {
            v
        }
    }

    /// Parses a DIMACS-style integer.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn from_dimacs(d: i64) -> Lit {
        assert!(d != 0, "0 is the DIMACS clause terminator, not a literal");
        let v = Var(d.unsigned_abs() as u32 - 1);
        Lit::with_polarity(v, d > 0)
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "~{}", self.var())
        }
    }
}

/// Ternary assignment value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

impl LBool {
    /// Converts a `bool`.
    pub const fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Negation (keeps `Undef`).
    pub const fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        for i in 0..100u32 {
            let v = Var(i);
            let p = Lit::pos(v);
            let n = Lit::neg(v);
            assert_eq!(p.var(), v);
            assert_eq!(n.var(), v);
            assert!(p.is_positive());
            assert!(!n.is_positive());
            assert_eq!(!p, n);
            assert_eq!(!n, p);
            assert_eq!(Lit::from_code(p.code()), p);
        }
    }

    #[test]
    fn dimacs_round_trips() {
        for d in [-5i64, -1, 1, 7, 100] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic(expected = "terminator")]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_negate() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::from_bool(true), LBool::True);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Lit::pos(Var(2)).to_string(), "v2");
        assert_eq!(Lit::neg(Var(2)).to_string(), "~v2");
    }
}
