//! Tseitin encoding of combinational logic into CNF.
//!
//! [`CircuitEncoder`] emits clauses into any [`ClauseSink`] (a live
//! [`crate::Solver`] for incremental attacks, or a [`crate::CnfFormula`]
//! for export). Two-input gates are encoded from their 4-bit truth tables,
//! so every one of the 16 functions the GSHE primitive cloaks — and any
//! key-dependent selection among them — encodes uniformly.

use crate::cnf::ClauseSink;
use crate::lit::Lit;

/// Tseitin encoder over a clause sink.
#[derive(Debug)]
pub struct CircuitEncoder<'a, S: ClauseSink> {
    sink: &'a mut S,
    const_true: Option<Lit>,
}

impl<'a, S: ClauseSink> CircuitEncoder<'a, S> {
    /// Wraps a sink.
    pub fn new(sink: &'a mut S) -> Self {
        CircuitEncoder {
            sink,
            const_true: None,
        }
    }

    /// Releases the underlying sink.
    pub fn into_inner(self) -> &'a mut S {
        self.sink
    }

    /// Allocates a fresh literal (positive phase of a new variable).
    pub fn fresh(&mut self) -> Lit {
        Lit::pos(self.sink.new_var_sink())
    }

    /// Adds a raw clause.
    pub fn clause(&mut self, lits: &[Lit]) {
        self.sink.add_clause_sink(lits);
    }

    /// Asserts that `l` holds.
    pub fn assert(&mut self, l: Lit) {
        self.clause(&[l]);
    }

    /// A literal constrained to `true` (cached).
    pub fn constant(&mut self, value: bool) -> Lit {
        let t = match self.const_true {
            Some(t) => t,
            None => {
                let t = self.fresh();
                self.assert(t);
                self.const_true = Some(t);
                t
            }
        };
        if value {
            t
        } else {
            !t
        }
    }

    /// Constrains `a ↔ b`.
    pub fn equal(&mut self, a: Lit, b: Lit) {
        self.clause(&[!a, b]);
        self.clause(&[a, !b]);
    }

    /// Encodes a two-input gate from its truth-table nibble
    /// (bit `va + 2·vb` = output for inputs `(va, vb)`) and returns the
    /// output literal.
    pub fn gate_tt(&mut self, tt: u8, a: Lit, b: Lit) -> Lit {
        debug_assert!(tt < 16, "truth table must be a nibble");
        let z = self.fresh();
        self.gate_tt_onto(tt, a, b, z);
        z
    }

    /// Like [`CircuitEncoder::gate_tt`] but forces the output onto an
    /// existing literal `z`.
    pub fn gate_tt_onto(&mut self, tt: u8, a: Lit, b: Lit, z: Lit) {
        for row in 0..4u8 {
            let va = row & 1 == 1;
            let vb = row & 2 == 2;
            let out = (tt >> row) & 1 == 1;
            // (a = va ∧ b = vb) → (z = out)
            let la = if va { !a } else { a };
            let lb = if vb { !b } else { b };
            let lz = if out { z } else { !z };
            self.clause(&[la, lb, lz]);
        }
    }

    /// `z = a ∧ b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        self.gate_tt(0b1000, a, b)
    }

    /// `z = a ∨ b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.gate_tt(0b1110, a, b)
    }

    /// `z = a ⊕ b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        self.gate_tt(0b0110, a, b)
    }

    /// `z = ¬(a ⊕ b)`.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        self.gate_tt(0b1001, a, b)
    }

    /// `z = s ? t : e` (multiplexer).
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let z = self.fresh();
        self.clause(&[!s, !t, z]);
        self.clause(&[!s, t, !z]);
        self.clause(&[s, !e, z]);
        self.clause(&[s, e, !z]);
        z
    }

    /// `z = l₀ ∨ l₁ ∨ …` (single fresh output, one big clause + bindings).
    ///
    /// # Panics
    ///
    /// Panics on an empty operand list.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        assert!(!lits.is_empty(), "or_many needs at least one operand");
        if lits.len() == 1 {
            return lits[0];
        }
        let z = self.fresh();
        let mut big = Vec::with_capacity(lits.len() + 1);
        for &l in lits {
            self.clause(&[!l, z]);
            big.push(l);
        }
        big.push(!z);
        self.clause(&big);
        z
    }

    /// `z = l₀ ∧ l₁ ∧ …`.
    ///
    /// # Panics
    ///
    /// Panics on an empty operand list.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        assert!(!lits.is_empty(), "and_many needs at least one operand");
        if lits.len() == 1 {
            return lits[0];
        }
        let z = self.fresh();
        let mut big = Vec::with_capacity(lits.len() + 1);
        for &l in lits {
            self.clause(&[!z, l]);
            big.push(!l);
        }
        big.push(z);
        self.clause(&big);
        z
    }

    /// Constrains at least one of `lits` to differ between the two lists
    /// (`∃i: a[i] ≠ b[i]`), returning the miter output literal that is true
    /// iff they differ.
    ///
    /// # Panics
    ///
    /// Panics if the lists have different lengths or are empty.
    pub fn miter(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        assert_eq!(a.len(), b.len(), "miter needs equal-width buses");
        let diffs: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect();
        self.or_many(&diffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    /// Exhaustively verifies `z = f(a,b)` for the encoded gate.
    fn check_gate_tt(tt: u8) {
        for va in [false, true] {
            for vb in [false, true] {
                let mut s = Solver::new();
                let a = Lit::pos(s.new_var());
                let b = Lit::pos(s.new_var());
                let z = {
                    let mut enc = CircuitEncoder::new(&mut s);
                    enc.gate_tt(tt, a, b)
                };
                let assumptions = [if va { a } else { !a }, if vb { b } else { !b }];
                assert_eq!(s.solve_with(&assumptions), SolveResult::Sat);
                let expect = (tt >> ((va as u8) | ((vb as u8) << 1))) & 1 == 1;
                assert_eq!(s.model_lit(z), expect, "tt={tt:04b} a={va} b={vb}");
            }
        }
    }

    #[test]
    fn all_sixteen_truth_tables_encode_correctly() {
        for tt in 0..16 {
            check_gate_tt(tt);
        }
    }

    #[test]
    fn mux_selects() {
        for sv in [false, true] {
            for tv in [false, true] {
                for ev in [false, true] {
                    let mut s = Solver::new();
                    let sel = Lit::pos(s.new_var());
                    let t = Lit::pos(s.new_var());
                    let e = Lit::pos(s.new_var());
                    let z = CircuitEncoder::new(&mut s).mux(sel, t, e);
                    let asm = [
                        if sv { sel } else { !sel },
                        if tv { t } else { !t },
                        if ev { e } else { !e },
                    ];
                    assert_eq!(s.solve_with(&asm), SolveResult::Sat);
                    assert_eq!(s.model_lit(z), if sv { tv } else { ev });
                }
            }
        }
    }

    #[test]
    fn or_many_and_and_many() {
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..5).map(|_| Lit::pos(s.new_var())).collect();
        let (any, all) = {
            let mut enc = CircuitEncoder::new(&mut s);
            (enc.or_many(&xs), enc.and_many(&xs))
        };
        // All false → any = 0; force and check.
        let neg: Vec<Lit> = xs.iter().map(|&l| !l).collect();
        assert_eq!(s.solve_with(&neg), SolveResult::Sat);
        assert!(!s.model_lit(any));
        assert!(!s.model_lit(all));
        // All true.
        assert_eq!(s.solve_with(&xs), SolveResult::Sat);
        assert!(s.model_lit(any));
        assert!(s.model_lit(all));
        // Mixed.
        let mut asm = xs.clone();
        asm[2] = !asm[2];
        assert_eq!(s.solve_with(&asm), SolveResult::Sat);
        assert!(s.model_lit(any));
        assert!(!s.model_lit(all));
    }

    #[test]
    fn miter_detects_difference() {
        let mut s = Solver::new();
        let a: Vec<Lit> = (0..3).map(|_| Lit::pos(s.new_var())).collect();
        let b: Vec<Lit> = (0..3).map(|_| Lit::pos(s.new_var())).collect();
        let diff = CircuitEncoder::new(&mut s).miter(&a, &b);
        // Force equal buses → diff must be 0.
        let mut asm: Vec<Lit> = Vec::new();
        for i in 0..3 {
            asm.push(a[i]);
            asm.push(b[i]);
        }
        assert_eq!(s.solve_with(&asm), SolveResult::Sat);
        assert!(!s.model_lit(diff));
        // Flip one bit → diff must be 1.
        asm[2] = !asm[2]; // b[1]? index 2 is a[1]; flip it
        assert_eq!(s.solve_with(&asm), SolveResult::Sat);
        assert!(s.model_lit(diff));
    }

    #[test]
    fn constant_is_cached_and_correct() {
        let mut s = Solver::new();
        let (t, f) = {
            let mut enc = CircuitEncoder::new(&mut s);
            (enc.constant(true), enc.constant(false))
        };
        assert_eq!(t, !f);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_lit(t));
        assert!(!s.model_lit(f));
    }

    #[test]
    fn equal_binds_literals() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        CircuitEncoder::new(&mut s).equal(a, b);
        assert_eq!(s.solve_with(&[a, !b]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[a, b]), SolveResult::Sat);
    }
}
