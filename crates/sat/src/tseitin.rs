//! Tseitin encoding of combinational logic into CNF.
//!
//! [`CircuitEncoder`] emits clauses into any [`ClauseSink`] (a live
//! [`crate::Solver`] for incremental attacks, or a [`crate::CnfFormula`]
//! for export). Two-input gates are encoded from their 4-bit truth tables,
//! so every one of the 16 functions the GSHE primitive cloaks — and any
//! key-dependent selection among them — encodes uniformly.
//!
//! Definitions can be emitted single-sided (Plaisted–Greenbaum) via the
//! [`Polarity`]-taking variants: when a defined literal `z` only ever
//! occurs positively downstream (e.g. it is asserted or assumed, never
//! fixed false), the `¬z → ¬f` direction is never needed and its clauses
//! can be dropped. See [`Polarity`] for the exact contract.

use crate::cnf::ClauseSink;
use crate::lit::Lit;

/// Which implication direction of a Tseitin definition `z ↔ f` must be
/// emitted, given how the defined literal `z` is used downstream.
///
/// - [`Polarity::Pos`]: `z` occurs only **positively** downstream (it is
///   asserted, assumed, or appears un-negated inside later clauses). Only
///   `z → f` is needed: a model with `z` false never constrains `f`.
/// - [`Polarity::Neg`]: `z` occurs only negatively; only `f → z` is kept.
/// - [`Polarity::Both`]: full equivalence — required whenever `z` may
///   later be fixed to either value, read from a model *and reused in an
///   added clause*, or compared with [`CircuitEncoder::equal`].
///
/// Single-sided definitions preserve satisfiability of every formula that
/// respects the declared polarity, and models still assign meaningful
/// values to asserted/assumed outputs; but a model may under-constrain an
/// unasserted output (e.g. a `Pos`-encoded miter output can be false in a
/// model even though the buses differ). Callers must therefore not read
/// unassumed single-sided outputs from models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Only the `z → f` clauses (those containing `¬z`).
    Pos,
    /// Only the `f → z` clauses (those containing `z`).
    Neg,
    /// Full equivalence (the default everywhere a literal is reused).
    Both,
}

impl Polarity {
    /// `true` if the `z → f` clauses (containing `¬z`) are emitted.
    pub fn wants_pos(self) -> bool {
        matches!(self, Polarity::Pos | Polarity::Both)
    }

    /// `true` if the `f → z` clauses (containing `z`) are emitted.
    pub fn wants_neg(self) -> bool {
        matches!(self, Polarity::Neg | Polarity::Both)
    }
}

/// Tseitin encoder over a clause sink.
#[derive(Debug)]
pub struct CircuitEncoder<'a, S: ClauseSink> {
    sink: &'a mut S,
    const_true: Option<Lit>,
}

impl<'a, S: ClauseSink> CircuitEncoder<'a, S> {
    /// Wraps a sink.
    pub fn new(sink: &'a mut S) -> Self {
        CircuitEncoder {
            sink,
            const_true: None,
        }
    }

    /// Releases the underlying sink.
    pub fn into_inner(self) -> &'a mut S {
        self.sink
    }

    /// Allocates a fresh literal (positive phase of a new variable).
    pub fn fresh(&mut self) -> Lit {
        Lit::pos(self.sink.new_var_sink())
    }

    /// Adds a raw clause.
    pub fn clause(&mut self, lits: &[Lit]) {
        self.sink.add_clause_sink(lits);
    }

    /// Asserts that `l` holds.
    pub fn assert(&mut self, l: Lit) {
        self.clause(&[l]);
    }

    /// A literal constrained to `true` (cached).
    pub fn constant(&mut self, value: bool) -> Lit {
        let t = match self.const_true {
            Some(t) => t,
            None => {
                let t = self.fresh();
                self.assert(t);
                self.const_true = Some(t);
                t
            }
        };
        if value {
            t
        } else {
            !t
        }
    }

    /// Constrains `a ↔ b`.
    pub fn equal(&mut self, a: Lit, b: Lit) {
        self.clause(&[!a, b]);
        self.clause(&[a, !b]);
    }

    /// Encodes a two-input gate from its truth-table nibble
    /// (bit `va + 2·vb` = output for inputs `(va, vb)`) and returns the
    /// output literal.
    pub fn gate_tt(&mut self, tt: u8, a: Lit, b: Lit) -> Lit {
        debug_assert!(tt < 16, "truth table must be a nibble");
        let z = self.fresh();
        self.gate_tt_onto(tt, a, b, z);
        z
    }

    /// Like [`CircuitEncoder::gate_tt`] but forces the output onto an
    /// existing literal `z`.
    pub fn gate_tt_onto(&mut self, tt: u8, a: Lit, b: Lit, z: Lit) {
        self.gate_tt_onto_pol(tt, a, b, z, Polarity::Both);
    }

    /// [`CircuitEncoder::gate_tt`] with a single-sided definition: a fresh
    /// output constrained only in the direction(s) `pol` declares.
    pub fn gate_tt_pol(&mut self, tt: u8, a: Lit, b: Lit, pol: Polarity) -> Lit {
        debug_assert!(tt < 16, "truth table must be a nibble");
        let z = self.fresh();
        self.gate_tt_onto_pol(tt, a, b, z, pol);
        z
    }

    /// Truth-table gate with Plaisted–Greenbaum polarity control. The
    /// rows where the gate outputs 0 produce the clauses containing `¬z`
    /// (the `z → f` direction, kept for [`Polarity::Pos`]); the rows
    /// outputting 1 produce the clauses containing `z` (`f → z`, kept for
    /// [`Polarity::Neg`]).
    pub fn gate_tt_onto_pol(&mut self, tt: u8, a: Lit, b: Lit, z: Lit, pol: Polarity) {
        for row in 0..4u8 {
            let va = row & 1 == 1;
            let vb = row & 2 == 2;
            let out = (tt >> row) & 1 == 1;
            if out && !pol.wants_neg() {
                continue;
            }
            if !out && !pol.wants_pos() {
                continue;
            }
            // (a = va ∧ b = vb) → (z = out)
            let la = if va { !a } else { a };
            let lb = if vb { !b } else { b };
            let lz = if out { z } else { !z };
            self.clause(&[la, lb, lz]);
        }
    }

    /// `z = a ∧ b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        self.gate_tt(0b1000, a, b)
    }

    /// `z = a ∨ b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.gate_tt(0b1110, a, b)
    }

    /// `z = a ⊕ b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        self.gate_tt(0b0110, a, b)
    }

    /// `z = ¬(a ⊕ b)`.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        self.gate_tt(0b1001, a, b)
    }

    /// `z = s ? t : e` (multiplexer).
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let z = self.fresh();
        self.clause(&[!s, !t, z]);
        self.clause(&[!s, t, !z]);
        self.clause(&[s, !e, z]);
        self.clause(&[s, e, !z]);
        z
    }

    /// `z = l₀ ∨ l₁ ∨ …` (single fresh output, one big clause + bindings).
    ///
    /// # Panics
    ///
    /// Panics on an empty operand list.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.or_many_pol(lits, Polarity::Both)
    }

    /// [`CircuitEncoder::or_many`] with polarity control: the big clause
    /// `(l₀ ∨ … ∨ ¬z)` is the `z → f` side ([`Polarity::Pos`]), the
    /// per-operand bindings `(¬lᵢ ∨ z)` the `f → z` side. A single
    /// operand is passed through unchanged (no definition at all).
    ///
    /// # Panics
    ///
    /// Panics on an empty operand list.
    pub fn or_many_pol(&mut self, lits: &[Lit], pol: Polarity) -> Lit {
        assert!(!lits.is_empty(), "or_many needs at least one operand");
        if lits.len() == 1 {
            return lits[0];
        }
        let z = self.fresh();
        let mut big = Vec::with_capacity(lits.len() + 1);
        for &l in lits {
            if pol.wants_neg() {
                self.clause(&[!l, z]);
            }
            big.push(l);
        }
        if pol.wants_pos() {
            big.push(!z);
            self.clause(&big);
        }
        z
    }

    /// `z = l₀ ∧ l₁ ∧ …`.
    ///
    /// # Panics
    ///
    /// Panics on an empty operand list.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.and_many_pol(lits, Polarity::Both)
    }

    /// [`CircuitEncoder::and_many`] with polarity control: the per-operand
    /// bindings `(¬z ∨ lᵢ)` are the `z → f` side ([`Polarity::Pos`]), the
    /// big clause `(¬l₀ ∨ … ∨ z)` the `f → z` side.
    ///
    /// # Panics
    ///
    /// Panics on an empty operand list.
    pub fn and_many_pol(&mut self, lits: &[Lit], pol: Polarity) -> Lit {
        assert!(!lits.is_empty(), "and_many needs at least one operand");
        if lits.len() == 1 {
            return lits[0];
        }
        let z = self.fresh();
        let mut big = Vec::with_capacity(lits.len() + 1);
        for &l in lits {
            if pol.wants_pos() {
                self.clause(&[!z, l]);
            }
            big.push(!l);
        }
        if pol.wants_neg() {
            big.push(z);
            self.clause(&big);
        }
        z
    }

    /// Constrains at least one of `lits` to differ between the two lists
    /// (`∃i: a[i] ≠ b[i]`), returning the miter output literal that is true
    /// iff they differ.
    ///
    /// # Panics
    ///
    /// Panics if the lists have different lengths or are empty.
    pub fn miter(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        self.miter_pol(a, b, Polarity::Both)
    }

    /// [`CircuitEncoder::miter`] with polarity control. The per-bit XORs
    /// inherit the requested polarity (each xor output occurs downstream
    /// only inside the OR with that same polarity), so a
    /// [`Polarity::Pos`] miter — an output that is only ever *assumed*
    /// true, the DIP-loop case — costs half the xor rows and drops every
    /// per-bit OR binding.
    ///
    /// # Panics
    ///
    /// Panics if the lists have different lengths or are empty.
    pub fn miter_pol(&mut self, a: &[Lit], b: &[Lit], pol: Polarity) -> Lit {
        assert_eq!(a.len(), b.len(), "miter needs equal-width buses");
        let diffs: Vec<Lit> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| self.gate_tt_pol(0b0110, x, y, pol))
            .collect();
        self.or_many_pol(&diffs, pol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    /// Exhaustively verifies `z = f(a,b)` for the encoded gate.
    fn check_gate_tt(tt: u8) {
        for va in [false, true] {
            for vb in [false, true] {
                let mut s = Solver::new();
                let a = Lit::pos(s.new_var());
                let b = Lit::pos(s.new_var());
                let z = {
                    let mut enc = CircuitEncoder::new(&mut s);
                    enc.gate_tt(tt, a, b)
                };
                let assumptions = [if va { a } else { !a }, if vb { b } else { !b }];
                assert_eq!(s.solve_with(&assumptions), SolveResult::Sat);
                let expect = (tt >> ((va as u8) | ((vb as u8) << 1))) & 1 == 1;
                assert_eq!(s.model_lit(z), expect, "tt={tt:04b} a={va} b={vb}");
            }
        }
    }

    #[test]
    fn all_sixteen_truth_tables_encode_correctly() {
        for tt in 0..16 {
            check_gate_tt(tt);
        }
    }

    #[test]
    fn mux_selects() {
        for sv in [false, true] {
            for tv in [false, true] {
                for ev in [false, true] {
                    let mut s = Solver::new();
                    let sel = Lit::pos(s.new_var());
                    let t = Lit::pos(s.new_var());
                    let e = Lit::pos(s.new_var());
                    let z = CircuitEncoder::new(&mut s).mux(sel, t, e);
                    let asm = [
                        if sv { sel } else { !sel },
                        if tv { t } else { !t },
                        if ev { e } else { !e },
                    ];
                    assert_eq!(s.solve_with(&asm), SolveResult::Sat);
                    assert_eq!(s.model_lit(z), if sv { tv } else { ev });
                }
            }
        }
    }

    #[test]
    fn or_many_and_and_many() {
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..5).map(|_| Lit::pos(s.new_var())).collect();
        let (any, all) = {
            let mut enc = CircuitEncoder::new(&mut s);
            (enc.or_many(&xs), enc.and_many(&xs))
        };
        // All false → any = 0; force and check.
        let neg: Vec<Lit> = xs.iter().map(|&l| !l).collect();
        assert_eq!(s.solve_with(&neg), SolveResult::Sat);
        assert!(!s.model_lit(any));
        assert!(!s.model_lit(all));
        // All true.
        assert_eq!(s.solve_with(&xs), SolveResult::Sat);
        assert!(s.model_lit(any));
        assert!(s.model_lit(all));
        // Mixed.
        let mut asm = xs.clone();
        asm[2] = !asm[2];
        assert_eq!(s.solve_with(&asm), SolveResult::Sat);
        assert!(s.model_lit(any));
        assert!(!s.model_lit(all));
    }

    #[test]
    fn miter_detects_difference() {
        let mut s = Solver::new();
        let a: Vec<Lit> = (0..3).map(|_| Lit::pos(s.new_var())).collect();
        let b: Vec<Lit> = (0..3).map(|_| Lit::pos(s.new_var())).collect();
        let diff = CircuitEncoder::new(&mut s).miter(&a, &b);
        // Force equal buses → diff must be 0.
        let mut asm: Vec<Lit> = Vec::new();
        for i in 0..3 {
            asm.push(a[i]);
            asm.push(b[i]);
        }
        assert_eq!(s.solve_with(&asm), SolveResult::Sat);
        assert!(!s.model_lit(diff));
        // Flip one bit → diff must be 1.
        asm[2] = !asm[2]; // b[1]? index 2 is a[1]; flip it
        assert_eq!(s.solve_with(&asm), SolveResult::Sat);
        assert!(s.model_lit(diff));
    }

    #[test]
    fn constant_is_cached_and_correct() {
        let mut s = Solver::new();
        let (t, f) = {
            let mut enc = CircuitEncoder::new(&mut s);
            (enc.constant(true), enc.constant(false))
        };
        assert_eq!(t, !f);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_lit(t));
        assert!(!s.model_lit(f));
    }

    #[test]
    fn pos_polarity_gate_constrains_only_forward() {
        // Pos-encoded AND: assuming z forces both inputs; fixing an input
        // false must NOT force z false (that is the dropped direction).
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        let z = CircuitEncoder::new(&mut s).gate_tt_pol(0b1000, a, b, Polarity::Pos);
        assert_eq!(s.solve_with(&[z]), SolveResult::Sat);
        assert!(s.model_lit(a) && s.model_lit(b), "z → a ∧ b must hold");
        assert_eq!(s.solve_with(&[z, !a]), SolveResult::Unsat);
        // The reverse direction is absent: z may float true-or-false
        // under ¬a, so both completions are satisfiable.
        assert_eq!(s.solve_with(&[!a, z]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[!a]), SolveResult::Sat);
    }

    #[test]
    fn pos_polarity_miter_finds_differences() {
        // The DIP-loop contract: the miter output is only ever assumed
        // true. Under that use, Pos encoding must agree with Both on
        // satisfiability for every input fixing.
        for width in [1usize, 3] {
            for fix in 0..(1u32 << (2 * width)) {
                let mut s_pos = Solver::new();
                let mut s_both = Solver::new();
                let mut results = Vec::new();
                for (s, pol) in [(&mut s_pos, Polarity::Pos), (&mut s_both, Polarity::Both)] {
                    let a: Vec<Lit> = (0..width).map(|_| Lit::pos(s.new_var())).collect();
                    let b: Vec<Lit> = (0..width).map(|_| Lit::pos(s.new_var())).collect();
                    let diff = CircuitEncoder::new(s).miter_pol(&a, &b, pol);
                    let mut asm = vec![diff];
                    for i in 0..width {
                        let va = (fix >> i) & 1 == 1;
                        let vb = (fix >> (width + i)) & 1 == 1;
                        asm.push(if va { a[i] } else { !a[i] });
                        asm.push(if vb { b[i] } else { !b[i] });
                    }
                    results.push(s.solve_with(&asm));
                }
                assert_eq!(results[0], results[1], "width={width} fix={fix:b}");
            }
        }
    }

    #[test]
    fn polarity_halves_gate_clauses() {
        let mut pos = crate::CnfFormula::new();
        let mut both = crate::CnfFormula::new();
        for (f, pol) in [(&mut pos, Polarity::Pos), (&mut both, Polarity::Both)] {
            let mut enc = CircuitEncoder::new(f);
            let a = enc.fresh();
            let b = enc.fresh();
            enc.gate_tt_pol(0b0110, a, b, pol);
        }
        assert_eq!(both.len(), 4);
        assert_eq!(pos.len(), 2, "xor has two 0-rows");
    }

    #[test]
    fn equal_binds_literals() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        CircuitEncoder::new(&mut s).equal(a, b);
        assert_eq!(s.solve_with(&[a, !b]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[a, b]), SolveResult::Sat);
    }
}
