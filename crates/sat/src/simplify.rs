//! SAT preprocessing and inprocessing: bounded variable elimination,
//! backward subsumption, self-subsumption strengthening, and learnt-clause
//! vivification.
//!
//! The preprocessing pass ([`Solver::preprocess`]) is SatELite-style. It
//! extracts the problem clauses into a side database with per-literal
//! occurrence lists and 64-bit signatures, then interleaves to fixpoint:
//!
//! - **Backward subsumption**: a clause deletes every superset of itself.
//!   Candidates come from the occurrence list of the clause's
//!   least-occurring literal; the signature test (`sig(C) & !sig(D) != 0`
//!   proves C ⊄ D) filters most of them without touching literals.
//! - **Self-subsumption strengthening**: if C \ {l} ⊆ D and ¬l ∈ D, then
//!   resolving C and D on l proves D without ¬l — the literal is removed.
//!   Scanning both polarities of the pivot literal's occurrence lists makes
//!   the check complete for single-literal strengthenings.
//! - **Bounded variable elimination (BVE)**: a variable whose
//!   non-tautological resolvent count does not exceed the number of clauses
//!   it occurs in (and whose resolvents stay short) is eliminated by clause
//!   distribution: all its clauses are replaced by their pairwise
//!   resolvents. Pure literals are the degenerate zero-resolvent case.
//!
//! # Soundness under incremental use
//!
//! BVE preserves satisfiability, not logical equivalence, so three
//! invariants keep the incremental API honest:
//!
//! 1. **Freezing** ([`Solver::freeze`]): frozen variables are never
//!    eliminated. Callers freeze every variable they later read from
//!    models *across solves*, pass as an assumption, or name in future
//!    clauses. Assumption variables of the engaging solve are treated as
//!    frozen automatically, and model values are reconstructed for every
//!    variable (invariant 2), so one-shot use needs no freezing at all.
//! 2. **Model reconstruction**: each elimination pushes its variable and
//!    removed clauses onto a stack; after `Sat` the stack is replayed in
//!    reverse ([`Solver::solve_with`]), assigning each eliminated variable
//!    the polarity its removed clauses demand. `model()` therefore stays
//!    total and satisfies every clause ever added. Reverse order resolves
//!    dependencies: a record can only mention variables eliminated
//!    *earlier*, which are reconstructed *later*.
//! 3. **Reintroduction**: `add_clause`, `solve_with` assumptions, and
//!    `freeze` on an eliminated variable transparently restore its removed
//!    clauses (transitively — stored clauses may name other eliminated
//!    variables) and pop the records, so elimination is never observable.
//!
//! The removed clauses are stored as literal vectors, not arena
//! references, so records survive arena garbage collection.
//!
//! Inprocessing is clause **vivification** at restart boundaries
//! ([`Solver::maybe_vivify`]): for a budgeted batch of long learnt
//! clauses, assert the negation of each literal in turn and propagate;
//! a conflict or satisfied literal proves a shorter clause, which replaces
//! the original. The clause under probe is detached first so it cannot
//! propagate against itself.

use std::time::Instant;

use crate::arena::ClauseRef;
use crate::lit::{LBool, Lit, Var};
use crate::solver::Solver;

/// Problem-clause count at which [`SimplifyMode::Auto`] engages
/// preprocessing. Chosen (like the COI threshold) so the seeded small
/// traces and committed golden baselines never engage and stay
/// byte-identical; superblue-scale miters engage.
pub const SIMPLIFY_AUTO_THRESHOLD: usize = 100_000;

/// Restarts between vivification rounds.
const VIVIFY_RESTART_PERIOD: u32 = 8;
/// Learnt clauses probed per vivification round.
const VIVIFY_CLAUSE_BUDGET: usize = 64;
/// Propagations spent per vivification round.
const VIVIFY_PROP_BUDGET: u64 = 200_000;
/// Skip BVE candidates whose occurrence-list product exceeds this (the
/// quadratic resolvent scan would dominate preprocessing time).
const ELIM_PRODUCT_CAP: usize = 1024;
/// Resolvents longer than this veto the elimination.
const ELIM_RESOLVENT_CAP: usize = 20;
/// Preprocessing runs elimination rounds to fixpoint, capped here.
const ELIM_MAX_ROUNDS: usize = 10;

/// When the solver runs the preprocessing pass (set via
/// [`Solver::set_simplify`]; threaded from the campaign `sat_simplify`
/// knob). Mirrors the attack layer's `CoiMode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimplifyMode {
    /// Engage when the problem has at least [`SIMPLIFY_AUTO_THRESHOLD`]
    /// clauses at first solve. The default: small instances (and every
    /// committed golden trace) keep the exact pre-simplification solver
    /// trajectory.
    #[default]
    Auto,
    /// Engage at a custom clause-count threshold.
    AutoAt(usize),
    /// Always preprocess.
    On,
    /// Never preprocess or vivify.
    Off,
}

impl SimplifyMode {
    /// The clause-count threshold above which preprocessing engages, or
    /// `None` if disabled.
    pub fn threshold(self) -> Option<usize> {
        match self {
            SimplifyMode::Auto => Some(SIMPLIFY_AUTO_THRESHOLD),
            SimplifyMode::AutoAt(t) => Some(t),
            SimplifyMode::On => Some(0),
            SimplifyMode::Off => None,
        }
    }

    /// `true` if preprocessing engages for a problem of `clauses` clauses.
    pub fn engages(self, clauses: usize) -> bool {
        self.threshold().is_some_and(|t| clauses >= t)
    }

    /// Parses `"auto"`, `"auto:<clauses>"`, `"on"`, or `"off"`.
    pub fn parse(s: &str) -> Option<SimplifyMode> {
        match s {
            "auto" => Some(SimplifyMode::Auto),
            "on" => Some(SimplifyMode::On),
            "off" => Some(SimplifyMode::Off),
            _ => {
                let t = s.strip_prefix("auto:")?;
                t.parse().ok().map(SimplifyMode::AutoAt)
            }
        }
    }

    /// The canonical spelling accepted by [`SimplifyMode::parse`].
    pub fn name(&self) -> String {
        match self {
            SimplifyMode::Auto => "auto".to_string(),
            SimplifyMode::AutoAt(t) => format!("auto:{t}"),
            SimplifyMode::On => "on".to_string(),
            SimplifyMode::Off => "off".to_string(),
        }
    }
}

/// One elimination: the variable and the clauses distribution removed,
/// stored as literal vectors so the record survives arena GC. Replayed in
/// reverse for model reconstruction; re-added verbatim on reintroduction.
#[derive(Debug, Clone)]
pub(crate) struct ElimRecord {
    pub(crate) var: Var,
    pub(crate) clauses: Vec<Vec<Lit>>,
}

/// Per-solver simplification state.
#[derive(Debug, Clone, Default)]
pub(crate) struct SimpState {
    pub(crate) mode: SimplifyMode,
    /// Variables the caller will reuse across solves — never eliminated.
    pub(crate) frozen: Vec<bool>,
    /// Variables currently removed by BVE.
    pub(crate) eliminated: Vec<bool>,
    /// Elimination history, oldest first.
    pub(crate) elim_stack: Vec<ElimRecord>,
    /// Preprocessing runs once per solver lifetime (variables created
    /// afterwards are trivially safe); vivification keeps running.
    pub(crate) preprocessed: bool,
    /// Restart countdown to the next vivification round.
    pub(crate) restarts_since_vivify: u32,
    /// Round-robin cursor into the learnt list for vivification.
    pub(crate) vivify_cursor: usize,
}

/// 64-bit clause signature: one bit per variable bucket. `sig(c) & !sig(d)
/// != 0` proves some variable of `c` is missing from `d`, so `c ⊄ d`.
fn signature(lits: &[Lit]) -> u64 {
    lits.iter().fold(0u64, |s, l| s | 1u64 << (l.var().0 & 63))
}

/// A clause in the preprocessing side database.
#[derive(Debug)]
struct SClause {
    /// Sorted by literal code; dedup'd; never tautological.
    lits: Vec<Lit>,
    sig: u64,
    dead: bool,
}

/// The preprocessing side database: clauses + lazy per-literal occurrence
/// lists (dead entries are skipped on scan) + a local unit queue.
struct SimpDb {
    clauses: Vec<SClause>,
    /// Occurrence lists by literal code. Entries go stale when a clause
    /// dies or is strengthened; scans re-check membership.
    occ: Vec<Vec<usize>>,
    /// Live occurrence counts by literal code (kept exact).
    occ_count: Vec<usize>,
    /// Local level-0 assignment from units discovered while simplifying.
    assign: Vec<LBool>,
    /// Units to replay onto the solver trail at rebuild.
    units: Vec<Lit>,
    /// Subsumption work queue of clause indices.
    queue: Vec<usize>,
    in_queue: Vec<bool>,
    /// An empty clause (or contradictory units) was derived.
    contradiction: bool,
    subsumed: u64,
    strengthened: u64,
}

impl SimpDb {
    fn new(num_vars: usize) -> Self {
        SimpDb {
            clauses: Vec::new(),
            occ: vec![Vec::new(); num_vars * 2],
            occ_count: vec![0; num_vars * 2],
            assign: vec![LBool::Undef; num_vars],
            units: Vec::new(),
            queue: Vec::new(),
            in_queue: Vec::new(),
            contradiction: false,
            subsumed: 0,
            strengthened: 0,
        }
    }

    fn value(&self, l: Lit) -> LBool {
        let v = self.assign[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Adds a clause (sorted/dedup'd/non-tautological by the caller except
    /// for sorting, which is redone here because arena literal order is
    /// scrambled by watch swaps). Length-1 clauses go to the unit queue.
    fn add(&mut self, mut lits: Vec<Lit>) {
        debug_assert!(!self.contradiction);
        lits.sort_unstable();
        match lits.len() {
            0 => {
                self.contradiction = true;
                return;
            }
            1 => {
                self.assign_unit(lits[0]);
                return;
            }
            _ => {}
        }
        let idx = self.clauses.len();
        let sig = signature(&lits);
        for &l in &lits {
            self.occ[l.code()].push(idx);
            self.occ_count[l.code()] += 1;
        }
        self.clauses.push(SClause {
            lits,
            sig,
            dead: false,
        });
        self.in_queue.push(true);
        self.queue.push(idx);
    }

    /// Marks `idx` dead and drops its occurrence counts (lists stay lazy).
    fn kill(&mut self, idx: usize) {
        let c = &mut self.clauses[idx];
        if c.dead {
            return;
        }
        c.dead = true;
        for i in 0..self.clauses[idx].lits.len() {
            let l = self.clauses[idx].lits[i];
            self.occ_count[l.code()] -= 1;
        }
    }

    /// Removes `lit` from clause `idx` (which must contain it), updating
    /// signature and occurrence counts; re-queues the clause. Shrinking to
    /// one literal converts the clause into a unit.
    fn remove_lit(&mut self, idx: usize, lit: Lit) {
        debug_assert!(!self.clauses[idx].dead);
        let c = &mut self.clauses[idx];
        let pos = c.lits.iter().position(|&l| l == lit).expect("lit present");
        c.lits.remove(pos);
        c.sig = signature(&c.lits);
        self.occ_count[lit.code()] -= 1;
        if self.clauses[idx].lits.len() == 1 {
            let u = self.clauses[idx].lits[0];
            self.kill(idx);
            self.assign_unit(u);
        } else if !self.in_queue[idx] {
            self.in_queue[idx] = true;
            self.queue.push(idx);
        }
    }

    /// Applies a unit locally: satisfied clauses die, falsified literals
    /// are stripped (worklist-driven, so cascades terminate).
    fn assign_unit(&mut self, l: Lit) {
        let mut work = vec![l];
        while let Some(l) = work.pop() {
            if self.contradiction {
                return;
            }
            match self.value(l) {
                LBool::True => continue,
                LBool::False => {
                    self.contradiction = true;
                    return;
                }
                LBool::Undef => {}
            }
            self.assign[l.var().index()] = LBool::from_bool(l.is_positive());
            self.units.push(l);
            let sat: Vec<usize> = self.occ[l.code()].clone();
            for idx in sat {
                if !self.clauses[idx].dead {
                    self.kill(idx);
                }
            }
            let falsified: Vec<usize> = self.occ[(!l).code()].clone();
            for idx in falsified {
                if self.clauses[idx].dead || !self.clauses[idx].lits.contains(&!l) {
                    continue;
                }
                // remove_lit may itself queue units; let the recursion in
                // assign_unit's worklist below handle them by re-entering
                // through the same path.
                self.remove_lit(idx, !l);
                if self.contradiction {
                    return;
                }
            }
        }
    }

    /// Drains the subsumption queue: each queued clause deletes its
    /// supersets and strengthens near-supersets (self-subsumption).
    fn subsume_fixpoint(&mut self) {
        while let Some(i) = self.queue.pop() {
            self.in_queue[i] = false;
            if self.contradiction {
                return;
            }
            if self.clauses[i].dead {
                continue;
            }
            self.backward_subsume(i);
        }
    }

    /// Subsumption/strengthening candidates for clause `i`, scanned via
    /// both polarities of its least-occurring literal: `D ⊇ C` requires
    /// `l ∈ D` (positive list); strengthening `D` on pivot `l` itself
    /// requires `¬l ∈ D` (negative list). Any other pivot's strengthening
    /// still has `l ∈ D`. So the two lists cover every case.
    fn backward_subsume(&mut self, i: usize) {
        let best = *self.clauses[i]
            .lits
            .iter()
            .min_by_key(|&&l| self.occ_count[l.code()] + self.occ_count[(!l).code()])
            .expect("clauses are non-empty");
        let mut cands: Vec<usize> = Vec::new();
        cands.extend_from_slice(&self.occ[best.code()]);
        cands.extend_from_slice(&self.occ[(!best).code()]);
        for j in cands {
            if j == i || self.clauses[j].dead || self.clauses[i].dead {
                continue;
            }
            let (ci, cj) = (&self.clauses[i], &self.clauses[j]);
            if cj.lits.len() < ci.lits.len() || ci.sig & !cj.sig != 0 {
                continue;
            }
            match subset_or_strengthen(&ci.lits, &cj.lits) {
                Subset::No => {}
                Subset::Yes => {
                    self.kill(j);
                    self.subsumed += 1;
                }
                Subset::Strengthen(l) => {
                    self.strengthened += 1;
                    self.remove_lit(j, l);
                    if self.contradiction {
                        return;
                    }
                }
            }
        }
    }

    /// Live occurrence indices of `l`, compacting the lazy list in place.
    fn live_occ(&mut self, l: Lit) -> Vec<usize> {
        let clauses = &self.clauses;
        self.occ[l.code()].retain(|&idx| !clauses[idx].dead && clauses[idx].lits.contains(&l));
        self.occ[l.code()].clone()
    }

    /// One bounded-elimination attempt for `v`. On success the removed
    /// clauses are recorded, resolvents added, and `true` returned.
    fn try_eliminate(&mut self, v: Var, stack: &mut Vec<ElimRecord>) -> bool {
        let pos = self.live_occ(Lit::pos(v));
        let neg = self.live_occ(Lit::neg(v));
        if pos.is_empty() && neg.is_empty() {
            return false; // free variable: nothing to distribute
        }
        if pos.len() * neg.len() > ELIM_PRODUCT_CAP {
            return false;
        }
        let limit = pos.len() + neg.len();
        let mut resolvents: Vec<Vec<Lit>> = Vec::new();
        for &pi in &pos {
            for &ni in &neg {
                if let Some(r) = resolve(&self.clauses[pi].lits, &self.clauses[ni].lits, v) {
                    if r.len() > ELIM_RESOLVENT_CAP {
                        return false;
                    }
                    resolvents.push(r);
                    if resolvents.len() > limit {
                        return false;
                    }
                }
            }
        }
        let mut record = ElimRecord {
            var: v,
            clauses: Vec::with_capacity(limit),
        };
        for &idx in pos.iter().chain(neg.iter()) {
            record.clauses.push(self.clauses[idx].lits.clone());
            self.kill(idx);
        }
        stack.push(record);
        for r in resolvents {
            self.add(r);
            if self.contradiction {
                break;
            }
        }
        true
    }
}

/// Subset test with one flipped literal allowed: is every literal of
/// `small` in `big`, except at most one whose *negation* is? Both inputs
/// sorted by code.
enum Subset {
    No,
    Yes,
    /// `small` strengthens `big` by removing this literal of `big`.
    Strengthen(Lit),
}

fn subset_or_strengthen(small: &[Lit], big: &[Lit]) -> Subset {
    let mut flipped: Option<Lit> = None;
    for &l in small {
        if big.binary_search(&l).is_ok() {
            continue;
        }
        if big.binary_search(&!l).is_ok() {
            if flipped.is_some() {
                return Subset::No;
            }
            flipped = Some(!l);
            continue;
        }
        return Subset::No;
    }
    match flipped {
        None => Subset::Yes,
        Some(l) => Subset::Strengthen(l),
    }
}

/// Resolvent of `a` (containing `v`) and `b` (containing `¬v`) on `v`, or
/// `None` if tautological. Sorted and dedup'd.
fn resolve(a: &[Lit], b: &[Lit], v: Var) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = Vec::with_capacity(a.len() + b.len() - 2);
    out.extend(a.iter().copied().filter(|l| l.var() != v));
    out.extend(b.iter().copied().filter(|l| l.var() != v));
    out.sort_unstable();
    out.dedup();
    for w in out.windows(2) {
        if w[1] == !w[0] {
            return None;
        }
    }
    Some(out)
}

impl Solver {
    /// Sets when preprocessing engages (default [`SimplifyMode::Auto`]).
    /// Takes effect at the next solve; has no effect once preprocessing
    /// has already run.
    pub fn set_simplify(&mut self, mode: SimplifyMode) {
        self.simp.mode = mode;
    }

    /// The current simplification mode.
    pub fn simplify_mode(&self) -> SimplifyMode {
        self.simp.mode
    }

    /// Protects `v` from variable elimination. Call for every variable
    /// whose model value is read across later `add_clause` calls, passed
    /// as an assumption in *later* solves, or named in future clauses —
    /// i.e. the incremental interface of the formula. Freezing an already
    /// eliminated variable reintroduces it.
    pub fn freeze(&mut self, v: Var) {
        if self.is_eliminated(v) {
            self.reintroduce(v);
        }
        self.simp.frozen[v.index()] = true;
    }

    /// Releases the [`Solver::freeze`] protection of `v`.
    pub fn melt(&mut self, v: Var) {
        self.simp.frozen[v.index()] = false;
    }

    /// `true` if `v` is protected from elimination.
    pub fn is_frozen(&self, v: Var) -> bool {
        self.simp.frozen.get(v.index()).copied().unwrap_or(false)
    }

    /// `true` if `v` is currently removed by variable elimination.
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.simp
            .eliminated
            .get(v.index())
            .copied()
            .unwrap_or(false)
    }

    /// LBDs of the currently retained learnt clauses (diagnostics; the
    /// drill harness dumps their distribution).
    pub fn learnt_lbds(&self) -> Vec<u32> {
        self.learnts.iter().map(|&c| self.arena.lbd(c)).collect()
    }

    /// Runs the preprocessing pass now, regardless of the configured mode
    /// or threshold. Returns `false` if the formula was proven
    /// unsatisfiable. Idempotent in effect (rerunning simplifies the
    /// already simplified formula).
    pub fn preprocess(&mut self) -> bool {
        self.simp.preprocessed = false;
        self.preprocess_with(&[])
    }

    /// The preprocessing pass: extract → simplify → rebuild. Variables in
    /// `extra_frozen` (the engaging solve's assumptions) are protected for
    /// this pass only.
    pub(crate) fn preprocess_with(&mut self, extra_frozen: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        assert_eq!(
            self.decision_level(),
            0,
            "preprocessing runs at decision level 0"
        );
        self.simp.preprocessed = true;
        let t = Instant::now();
        if !self.propagate().is_none() {
            self.ok = false;
            return false;
        }

        let n = self.num_vars();
        // Untouchable set: caller-frozen, this solve's assumptions,
        // level-0 assigned, and anything a learnt clause mentions (learnts
        // keep their arena form, so their variables must survive).
        let mut frozen = self.simp.frozen.clone();
        for &l in extra_frozen {
            frozen[l.var().index()] = true;
        }
        for (f, a) in frozen.iter_mut().zip(&self.assign) {
            *f |= *a != LBool::Undef;
        }
        for &c in &self.learnts {
            for k in 0..self.arena.len(c) {
                frozen[self.arena.lit(c, k).var().index()] = true;
            }
        }

        // Extract the problem clauses under the level-0 assignment.
        let mut db = SimpDb::new(n);
        for ci in 0..self.clauses.len() {
            let c = self.clauses[ci];
            let len = self.arena.len(c);
            let mut lits: Vec<Lit> = Vec::with_capacity(len);
            let mut satisfied = false;
            for k in 0..len {
                let l = self.arena.lit(c, k);
                match self.value_lit(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => lits.push(l),
                }
            }
            if !satisfied {
                debug_assert!(
                    lits.len() >= 2,
                    "post-propagation clauses have ≥2 free lits"
                );
                db.add(lits);
            }
        }

        // Simplify: subsumption fixpoint, then elimination rounds (each
        // queues its resolvents back into the subsumption queue).
        db.subsume_fixpoint();
        let mut eliminated = 0u64;
        for _round in 0..ELIM_MAX_ROUNDS {
            if db.contradiction {
                break;
            }
            // Cheapest candidates first: occurrence product approximates
            // the resolvent work and resolvent count.
            let mut cands: Vec<(usize, u32)> = (0..n as u32)
                .filter(|&v| {
                    let vi = v as usize;
                    !frozen[vi] && !self.simp.eliminated[vi]
                })
                .map(|v| {
                    let p = db.occ_count[Lit::pos(Var(v)).code()];
                    let q = db.occ_count[Lit::neg(Var(v)).code()];
                    (p * q, v)
                })
                .filter(|&(_, v)| {
                    let vv = Var(v);
                    db.occ_count[Lit::pos(vv).code()] + db.occ_count[Lit::neg(vv).code()] > 0
                })
                .collect();
            cands.sort_unstable();
            let mut this_round = 0u64;
            for (_, v) in cands {
                if db.contradiction {
                    break;
                }
                let vv = Var(v);
                if self.simp.eliminated[v as usize] {
                    continue;
                }
                if db.try_eliminate(vv, &mut self.simp.elim_stack) {
                    self.simp.eliminated[v as usize] = true;
                    this_round += 1;
                }
            }
            eliminated += this_round;
            db.subsume_fixpoint();
            if this_round == 0 {
                break;
            }
        }

        self.stats.elim_vars += eliminated;
        self.stats.subsumed += db.subsumed;
        self.stats.strengthened += db.strengthened;

        if db.contradiction {
            self.ok = false;
            self.stats.simplify_ns += t.elapsed().as_nanos() as u64;
            return false;
        }

        // Rebuild: drop every old problem clause from the arena, re-alloc
        // the survivors and resolvents, and rebuild all watch lists from
        // scratch (learnts keep their arena slots), mirroring the GC.
        //
        // Every current assignment is a level-0 fact whose reason may be
        // one of the clauses about to be deleted. Level-0 reasons are
        // never consulted again (conflict analysis stops above level 0),
        // but a dangling reference would break the next arena compaction —
        // clear them all.
        for r in self.reason.iter_mut() {
            *r = ClauseRef::NONE;
        }
        for ci in 0..self.clauses.len() {
            let c = self.clauses[ci];
            self.arena.delete(c);
        }
        self.clauses.clear();
        self.clear_watches();
        for sc in db.clauses.iter().filter(|sc| !sc.dead) {
            debug_assert!(sc.lits.len() >= 2);
            let lits = sc.lits.clone();
            self.attach_clause(&lits, false, 0);
        }
        for li in 0..self.learnts.len() {
            let c = self.learnts[li];
            self.attach_watches(c);
        }
        // Replay locally discovered units onto the real trail.
        for &u in &db.units {
            match self.value_lit(u) {
                LBool::True => {}
                LBool::False => {
                    self.ok = false;
                    break;
                }
                LBool::Undef => {
                    self.enqueue(u, ClauseRef::NONE);
                }
            }
        }
        if self.ok && !self.propagate().is_none() {
            self.ok = false;
        }
        if self.ok {
            self.maybe_gc();
        }
        self.stats.simplify_ns += t.elapsed().as_nanos() as u64;
        self.ok
    }

    /// Restores `v` (and, transitively, any eliminated variable its stored
    /// clauses mention) by re-adding the clauses removed at elimination.
    /// Called from `add_clause` / `solve_with` / `freeze`; level 0 only.
    pub(crate) fn reintroduce(&mut self, v: Var) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut pending: Vec<Vec<Lit>> = Vec::new();
        let mut work = vec![v];
        while let Some(v) = work.pop() {
            if !self.simp.eliminated[v.index()] {
                continue;
            }
            self.simp.eliminated[v.index()] = false;
            let pos = self
                .simp
                .elim_stack
                .iter()
                .position(|r| r.var == v)
                .expect("eliminated variable has a record");
            let rec = self.simp.elim_stack.remove(pos);
            for cl in rec.clauses {
                for &l in &cl {
                    if self.simp.eliminated[l.var().index()] {
                        work.push(l.var());
                    }
                }
                pending.push(cl);
            }
            self.heap.insert(v, &self.activity);
        }
        for cl in pending {
            if !self.add_clause_inner(&cl) {
                return;
            }
        }
    }

    /// Extends the current model over eliminated variables by replaying
    /// the elimination stack in reverse: each variable defaults to false
    /// and flips to the polarity demanded by the first of its removed
    /// clauses that the model does not already satisfy. (The resolvents
    /// guarantee no two removed clauses demand opposite polarities.)
    pub(crate) fn extend_model(&mut self) {
        for rec in self.simp.elim_stack.iter().rev() {
            let mut value = false;
            'clauses: for cl in &rec.clauses {
                let mut own: Option<Lit> = None;
                for &l in cl {
                    if l.var() == rec.var {
                        own = Some(l);
                        continue;
                    }
                    if self.model[l.var().index()] == l.is_positive() {
                        continue 'clauses; // satisfied without rec.var
                    }
                }
                let l = own.expect("record clauses contain their variable");
                value = l.is_positive();
                break;
            }
            self.model[rec.var.index()] = value;
        }
        #[cfg(debug_assertions)]
        for rec in &self.simp.elim_stack {
            for cl in &rec.clauses {
                debug_assert!(
                    cl.iter()
                        .any(|&l| self.model[l.var().index()] == l.is_positive()),
                    "reconstructed model violates a removed clause"
                );
            }
        }
    }

    /// Inprocessing hook, called at restart boundaries. Every
    /// [`VIVIFY_RESTART_PERIOD`]th restart, probes a budgeted batch of
    /// long learnt clauses by asserting literal negations and propagating;
    /// proven-shorter clauses are replaced. Returns `false` if the formula
    /// was proven unsatisfiable.
    pub(crate) fn maybe_vivify(&mut self) -> bool {
        if !self.simp.preprocessed {
            return true; // simplification never engaged
        }
        self.simp.restarts_since_vivify += 1;
        if self.simp.restarts_since_vivify < VIVIFY_RESTART_PERIOD {
            return true;
        }
        self.simp.restarts_since_vivify = 0;
        self.cancel_until(0);
        let t = Instant::now();
        let prop_start = self.stats.propagations;
        let mut probed = 0usize;
        let mut any_deleted = false;
        let total = self.learnts.len();
        let mut scanned = 0usize;
        while scanned < total
            && probed < VIVIFY_CLAUSE_BUDGET
            && self.stats.propagations - prop_start < VIVIFY_PROP_BUDGET
        {
            let idx = self.simp.vivify_cursor % self.learnts.len().max(1);
            self.simp.vivify_cursor = idx + 1;
            scanned += 1;
            let c = self.learnts[idx];
            if self.arena.is_deleted(c) || self.arena.len(c) < 3 || self.locked(c) {
                continue;
            }
            probed += 1;
            if !self.vivify_clause(c) {
                self.stats.simplify_ns += t.elapsed().as_nanos() as u64;
                return false;
            }
            if self.arena.is_deleted(c) {
                any_deleted = true;
            }
        }
        if any_deleted {
            let arena = &self.arena;
            self.learnts.retain(|&c| !arena.is_deleted(c));
            self.stats.learnts = self.learnts.len() as u64;
        }
        self.stats.simplify_ns += t.elapsed().as_nanos() as u64;
        true
    }

    /// Probes one learnt clause. The clause is detached first so it cannot
    /// propagate against itself. Returns `false` on proven inconsistency.
    fn vivify_clause(&mut self, c: ClauseRef) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let lits: Vec<Lit> = (0..self.arena.len(c))
            .map(|k| self.arena.lit(c, k))
            .collect();
        self.detach_watches(c);
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        // Outcome: None = no shrink; Some(new) = replace by `new` (empty ⇒
        // the clause is satisfied at level 0 and simply dropped).
        let mut outcome: Option<Vec<Lit>> = None;
        for &l in &lits {
            match self.value_lit(l) {
                LBool::True => {
                    if self.level[l.var().index()] == 0 {
                        // Permanently satisfied: drop the clause.
                        outcome = Some(Vec::new());
                    } else {
                        // Assumed prefix implies l: prefix ∪ {l} is a
                        // shorter clause.
                        kept.push(l);
                        outcome = Some(kept.clone());
                    }
                    break;
                }
                LBool::False => {
                    if self.level[l.var().index()] == 0 {
                        continue; // permanently falsified literal: strip it
                    }
                    continue; // implied-false by the prefix: redundant
                }
                LBool::Undef => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(!l, ClauseRef::NONE);
                    kept.push(l);
                    if !self.propagate().is_none() {
                        // Prefix alone is contradictory: it is a clause.
                        outcome = Some(kept.clone());
                        break;
                    }
                }
            }
        }
        if outcome.is_none() && kept.len() < lits.len() {
            outcome = Some(kept);
        }
        self.cancel_until(0);
        match outcome {
            None => {
                self.attach_watches(c);
                true
            }
            Some(new) if new.len() == lits.len() => {
                self.attach_watches(c);
                true
            }
            Some(new) => {
                let old_lbd = self.arena.lbd(c);
                self.arena.delete(c);
                self.stats.strengthened += (lits.len() - new.len()) as u64;
                match new.len() {
                    0 => true, // satisfied at level 0: deleted outright
                    1 => {
                        if !self.enqueue(new[0], ClauseRef::NONE) {
                            self.ok = false;
                            return false;
                        }
                        if !self.propagate().is_none() {
                            self.ok = false;
                            return false;
                        }
                        true
                    }
                    len => {
                        let lbd = old_lbd.min(len as u32 - 1).max(1);
                        // attach_clause pushes to `learnts`; the deleted
                        // original is retained out by the caller.
                        self.attach_clause(&new, true, lbd);
                        true
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    #[test]
    fn mode_parse_round_trips() {
        for mode in [
            SimplifyMode::Auto,
            SimplifyMode::AutoAt(512),
            SimplifyMode::On,
            SimplifyMode::Off,
        ] {
            assert_eq!(SimplifyMode::parse(&mode.name()), Some(mode));
        }
        assert_eq!(SimplifyMode::parse("sometimes"), None);
        assert_eq!(SimplifyMode::parse("auto:"), None);
        assert!(SimplifyMode::On.engages(0));
        assert!(!SimplifyMode::Off.engages(usize::MAX));
        assert!(!SimplifyMode::Auto.engages(SIMPLIFY_AUTO_THRESHOLD - 1));
        assert!(SimplifyMode::Auto.engages(SIMPLIFY_AUTO_THRESHOLD));
        assert!(SimplifyMode::AutoAt(3).engages(3));
    }

    #[test]
    fn subsumption_removes_supersets() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[0], v[1], v[2]]);
        s.add_clause(&[v[0], v[1], v[3]]);
        assert!(s.preprocess());
        assert!(s.stats().subsumed >= 2);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_lit(v[0]) || s.model_lit(v[1]));
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (a ∨ b) and (¬a ∨ b ∨ c): resolving on a gives (b ∨ c)… the
        // first clause strengthens the second to (b ∨ c).
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], v[1], v[2]]);
        // Freeze everything so elimination doesn't collapse the instance
        // before strengthening is observable.
        for &l in &v {
            s.freeze(l.var());
        }
        assert!(s.preprocess());
        assert!(s.stats().strengthened >= 1);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn pure_literal_is_eliminated() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[0], v[2]]);
        assert!(s.preprocess());
        assert!(s.stats().elim_vars >= 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        // The reconstructed model must satisfy the original clauses.
        assert!(s.model_lit(v[0]) || s.model_lit(v[1]));
        assert!(s.model_lit(v[0]) || s.model_lit(v[2]));
    }

    #[test]
    fn elimination_preserves_unsat() {
        // Chain a→b→c plus a and ¬c: UNSAT; b is an elimination candidate.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[2]]);
        s.preprocess();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_reconstruction_covers_eliminated_chain() {
        // x0 ↔ x1 ↔ x2 ↔ x3 equality chain with only x0 frozen: the rest
        // may be eliminated, yet the model must keep the chain equal.
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        for w in v.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
            s.add_clause(&[w[0], !w[1]]);
        }
        s.freeze(v[0].var());
        assert!(s.preprocess());
        s.add_clause(&[v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &l in &v {
            assert!(s.model_lit(l), "chain must follow the frozen head");
        }
    }

    #[test]
    fn add_clause_reintroduces_eliminated_vars() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        for w in v.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
            s.add_clause(&[w[0], !w[1]]);
        }
        s.freeze(v[0].var());
        assert!(s.preprocess());
        let was_eliminated = v.iter().any(|&l| s.is_eliminated(l.var()));
        // Constrain an interior variable after preprocessing.
        s.add_clause(&[!v[2]]);
        assert!(!s.is_eliminated(v[2].var()), "add_clause must reintroduce");
        assert_eq!(s.solve(), SolveResult::Sat);
        for &l in &v {
            assert!(!s.model_lit(l), "¬x2 forces the whole chain false");
        }
        // Sanity: the test only bites if elimination actually happened.
        assert!(was_eliminated, "expected BVE to fire on the chain");
    }

    #[test]
    fn assumptions_on_eliminated_vars_reintroduce() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        for w in v.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
            s.add_clause(&[w[0], !w[1]]);
        }
        s.freeze(v[0].var());
        assert!(s.preprocess());
        assert_eq!(s.solve_with(&[v[2]]), SolveResult::Sat);
        assert!(s.model_lit(v[0]) && s.model_lit(v[1]) && s.model_lit(v[2]));
        assert_eq!(s.solve_with(&[!v[2], v[0]]), SolveResult::Unsat);
    }

    #[test]
    fn frozen_vars_survive() {
        let mut s = Solver::new();
        let v = lits(&mut s, 6);
        for w in v.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
        }
        for &l in &v {
            s.freeze(l.var());
        }
        assert!(s.preprocess());
        for &l in &v {
            assert!(!s.is_eliminated(l.var()));
        }
        assert_eq!(s.stats().elim_vars, 0);
    }

    #[test]
    fn preprocess_handles_unsat_formula() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[0], !v[1]]);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[0], !v[1]]);
        assert!(!s.preprocess() || s.solve() == SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn auto_mode_engages_on_first_solve_only_above_threshold() {
        let mut s = Solver::new();
        s.set_simplify(SimplifyMode::AutoAt(1_000_000));
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.stats().elim_vars, 0, "below threshold: untouched");
        let mut s2 = Solver::new();
        s2.set_simplify(SimplifyMode::On);
        let w = lits(&mut s2, 3);
        s2.add_clause(&[w[0], w[1]]);
        s2.add_clause(&[w[0], w[2]]);
        assert_eq!(s2.solve(), SolveResult::Sat);
        assert!(s2.stats().elim_vars > 0, "On engages regardless of size");
    }

    #[test]
    fn resolve_detects_tautologies() {
        let a = Var(0);
        let b = Var(1);
        let c = Var(2);
        let p = vec![Lit::pos(a), Lit::pos(b)];
        let q = vec![Lit::neg(a), Lit::neg(b), Lit::pos(c)];
        assert_eq!(resolve(&p, &q, a), None, "b vs ¬b is tautological");
        let r = vec![Lit::neg(a), Lit::pos(c)];
        assert_eq!(
            resolve(&p, &r, a),
            Some(vec![Lit::pos(b), Lit::pos(c)]),
            "clean resolvent"
        );
    }
}
