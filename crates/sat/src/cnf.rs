//! CNF formula container and the [`ClauseSink`] abstraction.
//!
//! Encoders (e.g. [`crate::tseitin::CircuitEncoder`]) write clauses through
//! [`ClauseSink`], so the same encoding can target a live [`crate::Solver`]
//! (incremental attacks) or a [`CnfFormula`] (DIMACS export, debugging).

use crate::lit::{Lit, Var};

/// Anything clauses can be emitted into.
pub trait ClauseSink {
    /// Adds one clause.
    fn add_clause_sink(&mut self, lits: &[Lit]);
    /// Allocates a fresh variable.
    fn new_var_sink(&mut self) -> Var;
}

/// An owned CNF formula (list of clauses).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CnfFormula {
    clauses: Vec<Vec<Lit>>,
    num_vars: usize,
}

impl CnfFormula {
    /// Creates an empty formula.
    pub fn new() -> Self {
        CnfFormula::default()
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` if there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Registers `n` variables upfront (e.g. when mirroring a netlist).
    pub fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Evaluates the formula under a full assignment (index = var).
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        })
    }

    /// Loads every clause into a solver (or any other sink).
    pub fn copy_into<S: ClauseSink>(&self, sink: &mut S) {
        for _ in 0..self.num_vars {
            sink.new_var_sink();
        }
        for c in &self.clauses {
            sink.add_clause_sink(c);
        }
    }
}

impl ClauseSink for CnfFormula {
    fn add_clause_sink(&mut self, lits: &[Lit]) {
        for l in lits {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(lits.to_vec());
    }

    fn new_var_sink(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    #[test]
    fn formula_collects_clauses_and_vars() {
        let mut f = CnfFormula::new();
        let a = f.new_var_sink();
        let b = f.new_var_sink();
        f.add_clause_sink(&[Lit::pos(a), Lit::neg(b)]);
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
    }

    #[test]
    fn evaluate_checks_all_clauses() {
        let mut f = CnfFormula::new();
        let a = f.new_var_sink();
        let b = f.new_var_sink();
        f.add_clause_sink(&[Lit::pos(a)]);
        f.add_clause_sink(&[Lit::neg(b)]);
        assert!(f.evaluate(&[true, false]));
        assert!(!f.evaluate(&[true, true]));
        assert!(!f.evaluate(&[false, false]));
    }

    #[test]
    fn copy_into_solver_is_equisatisfiable() {
        let mut f = CnfFormula::new();
        let a = f.new_var_sink();
        let b = f.new_var_sink();
        f.add_clause_sink(&[Lit::pos(a), Lit::pos(b)]);
        f.add_clause_sink(&[Lit::neg(a)]);
        let mut s = Solver::new();
        f.copy_into(&mut s);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(b));
    }

    #[test]
    fn clause_widens_var_count() {
        let mut f = CnfFormula::new();
        f.add_clause_sink(&[Lit::pos(Var(9))]);
        assert_eq!(f.num_vars(), 10);
    }
}
