//! Flat clause arena: the solver's clause database as one `u32` buffer.
//!
//! Every clause is a contiguous run of words — one header packing
//! learnt/deleted/protected flags, the LBD, and the size, followed by the
//! literal codes inline:
//!
//! ```text
//! word:   [ header ][ lit0 ][ lit1 ] ... [ lit(size-1) ]
//! header: bit 0      learnt
//!         bit 1      deleted (space is reclaimed by the next compaction)
//!         bit 2      protected (one-round reduction reprieve; see solver)
//!         bits 3-13  LBD, saturating at 2047
//!         bits 14-31 size (number of literals)
//! ```
//!
//! Clauses are identified by their word offset ([`ClauseRef`]), so the
//! whole database is two pointer dereferences away from any watcher and a
//! clause's header and first literals share a cache line — the layout the
//! propagation loop is tuned for. Deleting a clause only sets the header
//! bit and counts the words as wasted; [`ClauseArena::compact`] is the
//! **garbage collector**: it rewrites the buffer without the dead runs and
//! returns an old→new offset table so the solver can remap its clause
//! lists, watch lists, and `reason` references.

use crate::lit::Lit;

const LEARNT: u32 = 1;
const DELETED: u32 = 1 << 1;
const PROTECTED: u32 = 1 << 2;
const LBD_SHIFT: u32 = 3;
const LBD_MAX: u32 = (1 << 11) - 1;
const LBD_MASK: u32 = LBD_MAX << LBD_SHIFT;
const SIZE_SHIFT: u32 = 14;
/// Largest clause the header can describe (2^18 - 1 literals).
pub const MAX_CLAUSE_LEN: usize = (1 << (32 - SIZE_SHIFT)) - 1;

/// A clause handle: the word offset of the clause header in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClauseRef(u32);

impl ClauseRef {
    /// The "no clause" sentinel (decision / unset `reason` marker).
    pub const NONE: ClauseRef = ClauseRef(u32::MAX);

    /// `true` for the [`ClauseRef::NONE`] sentinel.
    pub const fn is_none(self) -> bool {
        self.0 == u32::MAX
    }

    /// The raw word offset.
    pub const fn offset(self) -> u32 {
        self.0
    }
}

/// The clause database: a flat word buffer plus a wasted-space counter.
#[derive(Debug, Clone, Default)]
pub struct ClauseArena {
    words: Vec<u32>,
    wasted: usize,
}

impl ClauseArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ClauseArena::default()
    }

    /// Appends a clause and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `lits` exceeds [`MAX_CLAUSE_LEN`] or the arena would
    /// outgrow the 32-bit offset space.
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        assert!(lits.len() <= MAX_CLAUSE_LEN, "clause too long for header");
        let off = self.words.len();
        assert!(
            off + 1 + lits.len() < u32::MAX as usize,
            "clause arena exceeds 32-bit offsets"
        );
        let header =
            (lits.len() as u32) << SIZE_SHIFT | lbd.min(LBD_MAX) << LBD_SHIFT | u32::from(learnt);
        self.words.push(header);
        self.words.extend(lits.iter().map(|l| l.code() as u32));
        ClauseRef(off as u32)
    }

    /// Number of literals in `c`.
    pub fn len(&self, c: ClauseRef) -> usize {
        (self.words[c.0 as usize] >> SIZE_SHIFT) as usize
    }

    /// `true` if the arena holds no clauses.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The `i`-th literal of `c`.
    pub fn lit(&self, c: ClauseRef, i: usize) -> Lit {
        Lit::from_code(self.words[c.0 as usize + 1 + i] as usize)
    }

    /// Swaps literals `i` and `j` of `c` (watch maintenance).
    pub fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        self.words.swap(c.0 as usize + 1 + i, c.0 as usize + 1 + j);
    }

    /// `true` if `c` was learnt (vs. a problem clause).
    pub fn is_learnt(&self, c: ClauseRef) -> bool {
        self.words[c.0 as usize] & LEARNT != 0
    }

    /// `true` if `c` has been deleted (space not yet reclaimed).
    pub fn is_deleted(&self, c: ClauseRef) -> bool {
        self.words[c.0 as usize] & DELETED != 0
    }

    /// Marks `c` deleted and accounts its words as wasted.
    pub fn delete(&mut self, c: ClauseRef) {
        debug_assert!(!self.is_deleted(c));
        self.words[c.0 as usize] |= DELETED;
        self.wasted += 1 + self.len(c);
    }

    /// The stored LBD ("glue") of `c`.
    pub fn lbd(&self, c: ClauseRef) -> u32 {
        (self.words[c.0 as usize] & LBD_MASK) >> LBD_SHIFT
    }

    /// Overwrites the stored LBD (on-the-fly improvement), saturating.
    pub fn set_lbd(&mut self, c: ClauseRef, lbd: u32) {
        let h = &mut self.words[c.0 as usize];
        *h = (*h & !LBD_MASK) | lbd.min(LBD_MAX) << LBD_SHIFT;
    }

    /// `true` if `c` carries the one-round reduction reprieve.
    pub fn protected(&self, c: ClauseRef) -> bool {
        self.words[c.0 as usize] & PROTECTED != 0
    }

    /// Sets or clears the reduction reprieve.
    pub fn set_protected(&mut self, c: ClauseRef, on: bool) {
        if on {
            self.words[c.0 as usize] |= PROTECTED;
        } else {
            self.words[c.0 as usize] &= !PROTECTED;
        }
    }

    /// Words currently in the buffer (live + dead).
    pub fn used_words(&self) -> usize {
        self.words.len()
    }

    /// Words occupied by deleted clauses, reclaimable by [`Self::compact`].
    pub fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// Garbage-collects the arena: drops every deleted clause and slides
    /// the survivors down, preserving their relative order (allocation
    /// order, so rebuilt watch lists stay deterministic). Returns the
    /// parallel `(old_offsets, new_offsets)` tables — both sorted
    /// ascending — for [`Self::remap`].
    pub fn compact(&mut self) -> (Vec<u32>, Vec<u32>) {
        let mut kept: Vec<u32> = Vec::with_capacity(self.words.len() - self.wasted);
        let mut old = Vec::new();
        let mut new = Vec::new();
        let mut off = 0usize;
        while off < self.words.len() {
            let header = self.words[off];
            let run = 1 + (header >> SIZE_SHIFT) as usize;
            if header & DELETED == 0 {
                old.push(off as u32);
                new.push(kept.len() as u32);
                kept.extend_from_slice(&self.words[off..off + run]);
            }
            off += run;
        }
        self.words = kept;
        self.wasted = 0;
        (old, new)
    }

    /// Translates a pre-compaction handle through the tables
    /// [`Self::compact`] returned.
    ///
    /// # Panics
    ///
    /// Panics if `c` referred to a deleted clause — the solver must never
    /// hold a deleted clause as a `reason` or in its live lists.
    pub fn remap(tables: &(Vec<u32>, Vec<u32>), c: ClauseRef) -> ClauseRef {
        let i = tables
            .0
            .binary_search(&c.0)
            .expect("remapped clause must have survived compaction");
        ClauseRef(tables.1[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(codes: &[u32]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c as usize)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[0, 3, 5]), true, 7);
        assert_eq!(a.len(c), 3);
        assert_eq!(a.lit(c, 1), Lit::from_code(3));
        assert!(a.is_learnt(c));
        assert!(!a.is_deleted(c));
        assert_eq!(a.lbd(c), 7);
        let d = a.alloc(&lits(&[2, 4]), false, 0);
        assert!(!a.is_learnt(d));
        assert_eq!(a.len(d), 2);
    }

    #[test]
    fn lbd_saturates_and_updates() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[0, 2]), true, 1 << 20);
        assert_eq!(a.lbd(c), 2047);
        a.set_lbd(c, 3);
        assert_eq!(a.lbd(c), 3);
        // Flags survive LBD rewrites.
        assert!(a.is_learnt(c));
        assert_eq!(a.len(c), 2);
    }

    #[test]
    fn protected_flag_toggles() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[0, 2, 4]), true, 4);
        assert!(!a.protected(c));
        a.set_protected(c, true);
        assert!(a.protected(c));
        a.set_protected(c, false);
        assert!(!a.protected(c));
        assert_eq!(a.lbd(c), 4);
    }

    #[test]
    fn compact_drops_deleted_and_remaps() {
        let mut a = ClauseArena::new();
        let c0 = a.alloc(&lits(&[0, 2, 4]), false, 0);
        let c1 = a.alloc(&lits(&[1, 3]), true, 2);
        let c2 = a.alloc(&lits(&[5, 7, 9, 11]), true, 4);
        a.delete(c1);
        assert_eq!(a.wasted_words(), 3);
        let before = a.used_words();
        let tables = a.compact();
        assert_eq!(a.used_words(), before - 3);
        assert_eq!(a.wasted_words(), 0);
        let n0 = ClauseArena::remap(&tables, c0);
        let n2 = ClauseArena::remap(&tables, c2);
        assert_eq!(n0, c0, "first clause does not move");
        assert_eq!(a.len(n2), 4);
        assert_eq!(a.lit(n2, 3), Lit::from_code(11));
        assert!(a.is_learnt(n2));
        assert_eq!(a.lbd(n2), 4);
    }

    #[test]
    #[should_panic(expected = "survived compaction")]
    fn remapping_a_deleted_clause_panics() {
        let mut a = ClauseArena::new();
        let c0 = a.alloc(&lits(&[0, 2]), false, 0);
        a.alloc(&lits(&[1, 3]), false, 0);
        a.delete(c0);
        let tables = a.compact();
        let _ = ClauseArena::remap(&tables, c0);
    }

    #[test]
    fn sentinel_is_none() {
        assert!(ClauseRef::NONE.is_none());
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[0, 2]), false, 0);
        assert!(!c.is_none());
        let _ = Var(0); // keep the import honest
    }
}
