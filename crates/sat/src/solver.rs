//! The CDCL solver.

use crate::cnf::ClauseSink;
use crate::heap::OrderHeap;
use crate::lit::{LBool, Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A model was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict or memory budget was exhausted before an answer was
    /// reached — the solver-scale failure mode the paper reports for its
    /// 48-hour attacks.
    Unknown,
}

/// Cumulative search statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Number of decisions.
    pub decisions: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently retained.
    pub learnts: u64,
    /// Learnt clauses deleted by DB reduction.
    pub deleted: u64,
}

/// Component-wise accumulation, used by the campaign layer to roll many
/// per-attack stats up into per-cell and per-run aggregates.
impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.conflicts += rhs.conflicts;
        self.restarts += rhs.restarts;
        self.learnts += rhs.learnts;
        self.deleted += rhs.deleted;
    }
}

/// Resource limits; `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Abort the solve after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Refuse to allocate more variables than this (mirrors the paper's
    /// "more than 134,217,724 variables" lglib failure).
    pub max_vars: Option<usize>,
}

const CLAUSE_NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    lbd: u32,
    deleted: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

/// A CDCL SAT solver (see the crate docs for the feature list).
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: OrderHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<bool>,
    stats: SolverStats,
    budget: Budget,
    learnt_count: usize,
    max_learnts: usize,
    /// Conflict counter since last restart.
    conflicts_since_restart: u64,
    luby_index: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_UNIT: u64 = 100;

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: OrderHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            stats: SolverStats::default(),
            budget: Budget::default(),
            learnt_count: 0,
            max_learnts: 8192,
            conflicts_since_restart: 0,
            luby_index: 0,
        }
    }

    /// Sets the resource budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (problem + retained learnts, minus deleted).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Allocates a fresh variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable budget is exhausted (the paper's lglib-style
    /// scalability wall); check [`Solver::try_new_var`] to handle it.
    pub fn new_var(&mut self) -> Var {
        self.try_new_var().expect("variable budget exhausted")
    }

    /// Allocates a fresh variable unless the budget forbids it.
    pub fn try_new_var(&mut self) -> Option<Var> {
        if let Some(max) = self.budget.max_vars {
            if self.assign.len() >= max {
                return None;
            }
        }
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(CLAUSE_NONE);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        Some(v)
    }

    fn value_lit(&self, l: Lit) -> LBool {
        let v = self.assign[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// The value of `v` in the most recent model.
    ///
    /// # Panics
    ///
    /// Panics if the last [`Solver::solve`] did not return
    /// [`SolveResult::Sat`] or `v` is out of range.
    pub fn model_value(&self, v: Var) -> bool {
        self.model[v.index()]
    }

    /// The value of literal `l` in the most recent model.
    pub fn model_lit(&self, l: Lit) -> bool {
        self.model_value(l.var()) == l.is_positive()
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.value_lit(l) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = l.var();
                self.assign[v.index()] = LBool::from_bool(l.is_positive());
                self.level[v.index()] = self.decision_level();
                self.reason[v.index()] = reason;
                self.phase[v.index()] = l.is_positive();
                self.trail.push(l);
                true
            }
        }
    }

    /// Adds a clause. Returns `false` if the solver became trivially
    /// unsatisfiable. Clauses may be added at any time between `solve`
    /// calls (incremental use).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        // Normalize: sort, dedupe, drop false literals, detect tautology.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: x ∨ ¬x
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(out[0], CLAUSE_NONE) {
                    self.ok = false;
                    return false;
                }
                if self.propagate() != CLAUSE_NONE {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(out, false, 0);
                true
            }
        }
    }

    /// Adds a **blocking clause** forbidding the most recent model's
    /// assignment to `lits`: at least one of them must flip in any future
    /// model. This is the enumeration primitive batched DIP discovery is
    /// built on — solve, read the model, block it, re-solve for the next
    /// distinct one. Returns `false` if the solver became trivially
    /// unsatisfiable (e.g. `lits` is empty: a model over zero literals can
    /// only be blocked by the empty clause).
    ///
    /// # Panics
    ///
    /// Panics if the last [`Solver::solve`] did not return
    /// [`SolveResult::Sat`].
    pub fn block_model(&mut self, lits: &[Lit]) -> bool {
        let clause: Vec<Lit> = lits
            .iter()
            .map(|&l| if self.model_lit(l) { !l } else { l })
            .collect();
        self.add_clause(&clause)
    }

    /// Like [`Solver::block_model`], but gates the blocking clause on the
    /// activation literal `act`: the model is forbidden only while `act`
    /// is passed as an assumption, and solves without it see the formula
    /// as if the clause were never added. This is the scoped-lemma form
    /// enumeration loops need when the blocked assignments must remain
    /// reachable for a later, differently-constrained solve.
    ///
    /// # Panics
    ///
    /// Panics if the last [`Solver::solve`] did not return
    /// [`SolveResult::Sat`].
    pub fn block_model_under(&mut self, act: Lit, lits: &[Lit]) -> bool {
        let mut clause: Vec<Lit> = lits
            .iter()
            .map(|&l| if self.model_lit(l) { !l } else { l })
            .collect();
        clause.push(!act);
        self.add_clause(&clause)
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let id = self.clauses.len() as u32;
        let w0 = Watch {
            clause: id,
            blocker: lits[1],
        };
        let w1 = Watch {
            clause: id,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).code()].push(w0);
        self.watches[(!lits[1]).code()].push(w1);
        self.clauses.push(Clause {
            lits,
            learnt,
            lbd,
            deleted: false,
        });
        if learnt {
            self.learnt_count += 1;
            self.stats.learnts = self.learnt_count as u64;
        }
        id
    }

    /// Boolean constraint propagation. Returns the conflicting clause id or
    /// `CLAUSE_NONE`.
    fn propagate(&mut self) -> u32 {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p (now false) live in watches[p].
            let false_lit = !p;
            let mut watch_list = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0usize;
            let mut conflict = CLAUSE_NONE;
            while i < watch_list.len() {
                let w = watch_list[i];
                // Quick satisfied check via the blocker literal.
                if self.value_lit(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cid = w.clause as usize;
                if self.clauses[cid].deleted {
                    watch_list.swap_remove(i);
                    continue;
                }
                // Make sure the false literal is at position 1.
                {
                    let lits = &mut self.clauses[cid].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cid].lits[0];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    watch_list[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                for k in 2..self.clauses[cid].lits.len() {
                    let l = self.clauses[cid].lits[k];
                    if self.value_lit(l) != LBool::False {
                        self.clauses[cid].lits.swap(1, k);
                        self.watches[(!l).code()].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        watch_list.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    conflict = w.clause;
                    self.qhead = self.trail.len();
                    i += 1;
                    // Keep remaining watches intact.
                    continue;
                }
                let _ = self.enqueue(first, w.clause);
                i += 1;
            }
            self.watches[p.code()].append(&mut watch_list);
            if conflict != CLAUSE_NONE {
                return conflict;
            }
        }
        CLAUSE_NONE
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            self.heap.rebuild(&self.activity);
        }
        self.heap.decrease_key(v, &self.activity);
    }

    /// 1UIP conflict analysis; returns (learnt clause, backtrack level, lbd).
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = conflict;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            debug_assert_ne!(confl, CLAUSE_NONE, "reason must exist below the UIP");
            // Iterate literals of the reason clause (skipping the
            // propagated literal itself).
            let start = usize::from(p.is_some());
            for k in start..self.clauses[confl as usize].lits.len() {
                let q = self.clauses[confl as usize].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var();
            self.seen[v.index()] = false;
            counter -= 1;
            p = Some(lit);
            confl = self.reason[v.index()];
            if counter == 0 {
                break;
            }
        }
        let uip = p.expect("at least one resolution");
        learnt[0] = !uip;

        // Clause minimization: drop literals implied by the rest.
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| i == 0 || !self.literal_is_redundant(l))
            .collect();
        let mut minimized: Vec<Lit> = learnt
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(&l, _)| l)
            .collect();

        // Clear seen flags for the literals we marked.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Backtrack level = max level among minimized[1..].
        let (bt, lbd) = if minimized.len() == 1 {
            (0, 1)
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            let bt = self.level[minimized[1].var().index()];
            let mut levels: Vec<u32> = minimized
                .iter()
                .map(|l| self.level[l.var().index()])
                .collect();
            levels.sort_unstable();
            levels.dedup();
            (bt, levels.len() as u32)
        };
        (minimized, bt, lbd)
    }

    /// A literal is redundant if its reason clause's other literals are all
    /// already marked (seen) or at level 0 — one-step self-subsumption.
    fn literal_is_redundant(&self, l: Lit) -> bool {
        let v = l.var();
        let r = self.reason[v.index()];
        if r == CLAUSE_NONE {
            return false;
        }
        self.clauses[r as usize].lits.iter().all(|&q| {
            q.var() == v || self.seen[q.var().index()] || self.level[q.var().index()] == 0
        })
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = LBool::Undef;
            self.reason[v.index()] = CLAUSE_NONE;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = bound;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        // Keep binary and low-LBD clauses; delete the worse half of the
        // rest (by LBD, ties by length).
        let mut candidates: Vec<(u32, u32, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2 && c.lbd > 3)
            .map(|(i, c)| (c.lbd, i as u32, c.lits.len()))
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(b.2.cmp(&a.2)));
        let locked: Vec<u32> = self.reason.clone();
        let mut deleted = 0u64;
        for &(_, id, _) in candidates.iter().take(candidates.len() / 2) {
            if locked.contains(&id) {
                continue; // clause is a reason for a current assignment
            }
            self.clauses[id as usize].deleted = true;
            self.learnt_count -= 1;
            deleted += 1;
        }
        self.stats.deleted += deleted;
        self.stats.learnts = self.learnt_count as u64;
    }

    /// The Luby restart sequence 1,1,2,1,1,2,4,… (0-indexed).
    fn luby(mut x: u64) -> u64 {
        let mut size: u64 = 1;
        let mut seq: u32 = 0;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under `assumptions` (each forced as a pseudo-decision).
    ///
    /// After `Sat`, the model is available; after any result the solver is
    /// back at decision level 0 and more clauses may be added.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        let result = self.search(assumptions);
        self.cancel_until(0);
        result
    }

    fn search(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.propagate() != CLAUSE_NONE {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let start_conflicts = self.stats.conflicts;
        self.conflicts_since_restart = 0;
        let mut restart_budget = RESTART_UNIT * Self::luby(self.luby_index);

        loop {
            let conflict = self.propagate();
            if conflict != CLAUSE_NONE {
                self.stats.conflicts += 1;
                self.conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                // Conflicts under assumption levels make the assumption set
                // unsatisfiable once analysis would backtrack above them —
                // handled below by clamping.
                let (learnt, bt, lbd) = self.analyze(conflict);
                let assumed = (assumptions.len() as u32).min(self.decision_level());
                if bt < assumed {
                    // The learnt clause flips something at/above an
                    // assumption level: re-propagate from the assumption
                    // boundary; if the learnt clause is violated there, the
                    // assumptions are inconsistent.
                    self.cancel_until(bt);
                } else {
                    self.cancel_until(bt);
                }
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], CLAUSE_NONE) {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                } else {
                    let id = self.attach_clause(learnt.clone(), true, lbd);
                    let _ = self.enqueue(learnt[0], id);
                }
                self.var_inc *= VAR_DECAY;
                if let Some(max) = self.budget.max_conflicts {
                    if self.stats.conflicts - start_conflicts >= max {
                        return SolveResult::Unknown;
                    }
                }
                if self.learnt_count > self.max_learnts {
                    self.reduce_db();
                }
                if self.conflicts_since_restart >= restart_budget {
                    // Restart: keep assumptions by only backtracking to the
                    // assumption boundary.
                    self.stats.restarts += 1;
                    self.luby_index += 1;
                    self.conflicts_since_restart = 0;
                    restart_budget = RESTART_UNIT * Self::luby(self.luby_index);
                    let keep = (assumptions.len() as u32).min(self.decision_level());
                    self.cancel_until(keep);
                }
                continue;
            }

            // No conflict: decide.
            let dl = self.decision_level() as usize;
            if dl < assumptions.len() {
                let a = assumptions[dl];
                match self.value_lit(a) {
                    LBool::True => {
                        // Already satisfied: open an empty decision level so
                        // assumption indexing stays aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    LBool::False => return SolveResult::Unsat,
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len());
                        let _ = self.enqueue(a, CLAUSE_NONE);
                    }
                }
                continue;
            }
            match self.pick_branch_var() {
                None => {
                    // Complete assignment: extract the model.
                    self.model = self
                        .assign
                        .iter()
                        .map(|&v| matches!(v, LBool::True))
                        .collect();
                    return SolveResult::Sat;
                }
                Some(v) => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let lit = Lit::with_polarity(v, self.phase[v.index()]);
                    let _ = self.enqueue(lit, CLAUSE_NONE);
                }
            }
        }
    }
}

impl ClauseSink for Solver {
    fn add_clause_sink(&mut self, lits: &[Lit]) {
        let _ = self.add_clause(lits);
    }

    fn new_var_sink(&mut self) -> Var {
        self.new_var()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // hole index `j` ties pigeon rows together
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_lit(v[0]) || s.model_lit(v[1]));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn block_model_enumerates_distinct_models() {
        // Over 3 free variables, repeated solve→block must walk all 8
        // assignments exactly once before going UNSAT.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let mut seen = std::collections::HashSet::new();
        loop {
            match s.solve() {
                SolveResult::Sat => {
                    let model: Vec<bool> = v.iter().map(|&l| s.model_lit(l)).collect();
                    assert!(seen.insert(model), "blocking must forbid repeats");
                    s.block_model(&v);
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown => panic!("no budget set"),
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn gated_blocking_applies_only_under_its_assumption() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        let act = Lit::pos(s.new_var());
        assert_eq!(s.solve(), SolveResult::Sat);
        let model: Vec<bool> = v.iter().map(|&l| s.model_lit(l)).collect();
        s.block_model_under(act, &v);
        // Under the activation assumption the model is forbidden…
        assert_eq!(s.solve_with(&[act]), SolveResult::Sat);
        let next: Vec<bool> = v.iter().map(|&l| s.model_lit(l)).collect();
        assert_ne!(model, next, "gated blocking must forbid the model");
        // …and blocking all four assignments exhausts the gated space…
        for _ in 0..3 {
            s.block_model_under(act, &v);
            if s.solve_with(&[act]) != SolveResult::Sat {
                break;
            }
        }
        assert_eq!(s.solve_with(&[act]), SolveResult::Unsat);
        // …while the ungated formula stays satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn blocking_over_no_literals_is_the_empty_clause() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.block_model(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        // v0 and a chain of implications v0→v1→v2→v3→v4.
        s.add_clause(&[v[0]]);
        for i in 0..4 {
            s.add_clause(&[!v[i], v[i + 1]]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for l in v {
            assert!(s.model_lit(l));
        }
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], !v[0]]);
        s.add_clause(&[!v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.model_lit(v[1]));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // PHP(3,2): classic small UNSAT instance requiring real search.
        let mut s = Solver::new();
        // p[i][j]: pigeon i in hole j.
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row); // every pigeon somewhere
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_5_is_sat() {
        let mut s = Solver::new();
        let n = 5;
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..n {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Verify the model is a valid assignment.
        for j in 0..n {
            let count = (0..n).filter(|&i| s.model_lit(p[i][j])).count();
            assert!(count <= 1, "hole {j} used {count} times");
        }
        for (i, row) in p.iter().enumerate() {
            assert!(row.iter().any(|&l| s.model_lit(l)), "pigeon {i} unplaced");
        }
    }

    #[test]
    fn assumptions_flip_satisfiability() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve_with(&[!v[0], !v[1]]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[!v[0]]), SolveResult::Sat);
        assert!(s.model_lit(v[1]));
        // Solver stays usable for unconditional solving.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.model_lit(v[0]));
        s.add_clause(&[!v[1]]);
        s.add_clause(&[!v[2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard instance (PHP 7 into 6) with a 1-conflict budget.
        let mut s = Solver::new();
        let n = 7;
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        s.set_budget(Budget {
            max_conflicts: Some(1),
            max_vars: None,
        });
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Raising the budget resolves it.
        s.set_budget(Budget::default());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn var_budget_is_enforced() {
        let mut s = Solver::new();
        s.set_budget(Budget {
            max_conflicts: None,
            max_vars: Some(2),
        });
        assert!(s.try_new_var().is_some());
        assert!(s.try_new_var().is_some());
        assert!(s.try_new_var().is_none());
    }

    #[test]
    fn luby_prefix_is_correct() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn xor_chain_forces_unique_model() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 = 0 → x1 = 1, x2 = 0.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Lit, b: Lit| {
            s.add_clause(&[a, b]);
            s.add_clause(&[!a, !b]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.model_lit(v[0]));
        assert!(s.model_lit(v[1]));
        assert!(!s.model_lit(v[2]));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[2], v[3]]);
        let _ = s.solve();
        assert!(s.stats().decisions > 0 || s.stats().propagations > 0);
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for trial in 0..60 {
            let n = rng.gen_range(3..10usize);
            let m = rng.gen_range(2..(4 * n));
            let clauses: Vec<Vec<i64>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.gen_range(1..=n as i64);
                            if rng.gen_bool(0.5) {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for m_bits in 0..(1u32 << n) {
                for c in &clauses {
                    let ok = c.iter().any(|&l| {
                        let val = (m_bits >> (l.unsigned_abs() - 1)) & 1 == 1;
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            for _ in 0..n {
                s.new_var();
            }
            for c in &clauses {
                let lits: Vec<Lit> = c.iter().map(|&l| Lit::from_dimacs(l)).collect();
                s.add_clause(&lits);
            }
            let result = s.solve();
            if brute_sat {
                assert_eq!(result, SolveResult::Sat, "trial {trial}");
                // And the model must satisfy every clause.
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.model_lit(Lit::from_dimacs(l))),
                        "trial {trial}: model violates {c:?}"
                    );
                }
            } else {
                assert_eq!(result, SolveResult::Unsat, "trial {trial}");
            }
        }
    }
}
