//! The CDCL solver.
//!
//! The engine room is a modern CDCL core:
//!
//! - **Clause storage** is the flat [`ClauseArena`] (see [`crate::arena`]):
//!   clauses are contiguous `u32` runs addressed by [`ClauseRef`] offsets,
//!   and a real garbage collector ([`Solver::garbage_collect`]) compacts
//!   the arena, rebuilds every watch list, and remaps `reason` references
//!   once deleted clauses waste enough space.
//! - **Binary clauses** live in dedicated watcher lists that carry the
//!   implied literal inline, so binary propagation never touches the
//!   arena; longer clauses use two watched literals with a blocker-literal
//!   fast path.
//! - **Restarts** default to Glucose-style adaptive pacing
//!   ([`RestartMode::LbdEma`]): restart when the recent-LBD average runs
//!   hot against the lifetime average, blocked while the trail is much
//!   deeper than usual (the solver is probably closing in on a model).
//!   [`RestartMode::Luby`] keeps the classic Luby schedule as a fallback.
//! - **Learnt-DB reduction** follows a geometric schedule with LBD-tiered
//!   retention: core clauses (LBD ≤ 2) and binaries are permanent, mid
//!   clauses recently improved during conflict analysis get a one-round
//!   reprieve, and the worse half of the rest is deleted. A clause that is
//!   the reason for a current assignment is detected with an O(1) lookup.
//!
//! All knobs live in [`SearchConfig`]; the public solving API is
//! incremental and assumption-based.

use crate::arena::{ClauseArena, ClauseRef};
use crate::cnf::ClauseSink;
use crate::heap::OrderHeap;
use crate::lit::{LBool, Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A model was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict or memory budget was exhausted before an answer was
    /// reached — the solver-scale failure mode the paper reports for its
    /// 48-hour attacks.
    Unknown,
}

/// Cumulative search statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Number of decisions.
    pub decisions: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently retained.
    pub learnts: u64,
    /// Learnt clauses deleted by DB reduction.
    pub deleted: u64,
    /// Arena garbage collections performed.
    pub db_gcs: u64,
    /// Total nanoseconds spent compacting the arena.
    pub gc_ns: u64,
    /// Variables removed by bounded variable elimination (preprocessing).
    pub elim_vars: u64,
    /// Clauses removed by backward subsumption (preprocessing).
    pub subsumed: u64,
    /// Literals removed by self-subsumption strengthening and clause
    /// vivification (pre- and inprocessing).
    pub strengthened: u64,
    /// Total nanoseconds spent in simplification (preprocess + vivify).
    pub simplify_ns: u64,
}

/// Component-wise accumulation, used by the campaign layer to roll many
/// per-attack stats up into per-cell and per-run aggregates.
impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.conflicts += rhs.conflicts;
        self.restarts += rhs.restarts;
        self.learnts += rhs.learnts;
        self.deleted += rhs.deleted;
        self.db_gcs += rhs.db_gcs;
        self.gc_ns += rhs.gc_ns;
        self.elim_vars += rhs.elim_vars;
        self.subsumed += rhs.subsumed;
        self.strengthened += rhs.strengthened;
        self.simplify_ns += rhs.simplify_ns;
    }
}

/// Resource limits; `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Abort the solve after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Refuse to allocate more variables than this (mirrors the paper's
    /// "more than 134,217,724 variables" lglib failure).
    pub max_vars: Option<usize>,
}

/// Restart pacing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartMode {
    /// Glucose-style adaptive restarts: fire when the windowed average of
    /// recent learnt-clause LBDs runs hot against the lifetime average,
    /// blocked while the trail is unusually deep. The default.
    #[default]
    LbdEma,
    /// The classic Luby schedule (unit 100 conflicts).
    Luby,
}

/// Search-heuristic knobs; [`SearchConfig::default`] is the tuned setting
/// every attack runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Restart pacing.
    pub restart: RestartMode,
    /// Learnt clauses triggering the first DB reduction.
    pub reduce_base: usize,
    /// Percent growth of the reduction trigger after each reduction
    /// (geometric schedule).
    pub reduce_growth_pct: u32,
    /// Garbage-collect the arena when at least this percentage of it is
    /// wasted by deleted clauses.
    pub gc_wasted_pct: u32,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            restart: RestartMode::LbdEma,
            reduce_base: 8192,
            reduce_growth_pct: 10,
            gc_wasted_pct: 25,
        }
    }
}

/// Watcher for a clause of three or more literals. `blocker` is some other
/// literal of the clause; if it is already true the clause is satisfied
/// and the arena is never touched.
#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: ClauseRef,
    blocker: Lit,
}

/// Watcher for a binary clause: `other` is the remaining literal, so
/// propagation resolves entirely from the watcher itself.
#[derive(Debug, Clone, Copy)]
struct BinWatch {
    other: Lit,
    clause: ClauseRef,
}

/// Fixed-capacity ring of recent values with a running sum (the Glucose
/// `bqueue`), driving the adaptive-restart and restart-blocking tests.
#[derive(Debug, Clone)]
struct BoundedQueue {
    buf: Vec<u64>,
    cap: usize,
    head: usize,
    sum: u64,
}

impl BoundedQueue {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            sum: 0,
        }
    }

    fn push(&mut self, v: u64) {
        if self.buf.len() == self.cap {
            self.sum -= self.buf[self.head];
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        } else {
            self.buf.push(v);
        }
        self.sum += v;
    }

    fn full(&self) -> bool {
        self.buf.len() == self.cap
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn sum(&self) -> u64 {
        self.sum
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.sum = 0;
    }
}

/// A CDCL SAT solver (see the crate docs for the feature list).
#[derive(Debug, Clone)]
pub struct Solver {
    pub(crate) arena: ClauseArena,
    /// Live problem clauses (length ≥ 2), in allocation order.
    pub(crate) clauses: Vec<ClauseRef>,
    /// Live learnt clauses, in allocation order.
    pub(crate) learnts: Vec<ClauseRef>,
    /// Per-literal watchers for clauses of length ≥ 3.
    watches: Vec<Vec<Watch>>,
    /// Per-literal watchers for binary clauses.
    bwatches: Vec<Vec<BinWatch>>,
    pub(crate) assign: Vec<LBool>,
    pub(crate) level: Vec<u32>,
    pub(crate) reason: Vec<ClauseRef>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    qhead: usize,
    pub(crate) activity: Vec<f64>,
    var_inc: f64,
    pub(crate) heap: OrderHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// Level-stamp scratch for O(clause) LBD recomputation, indexed by
    /// decision level (entry 0 is unused padding).
    lbd_stamp: Vec<u64>,
    lbd_stamp_gen: u64,
    pub(crate) ok: bool,
    pub(crate) model: Vec<bool>,
    pub(crate) stats: SolverStats,
    budget: Budget,
    config: SearchConfig,
    /// Simplification state: mode knob, frozen/eliminated marks, and the
    /// elimination stack for model reconstruction (see [`crate::simplify`]).
    pub(crate) simp: crate::simplify::SimpState,
    /// Learnt clauses triggering the next DB reduction (grows
    /// geometrically from `config.reduce_base`).
    reduce_limit: usize,
    /// Recent learnt-clause LBDs (cleared on restart / restart blocking).
    lbd_queue: BoundedQueue,
    /// Recent trail depths at conflict time (restart blocking).
    trail_queue: BoundedQueue,
    /// Lifetime sum of learnt-clause LBDs (the "slow" average numerator).
    global_lbd_sum: u64,
    /// Conflict counter since last restart.
    conflicts_since_restart: u64,
    luby_index: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_UNIT: u64 = 100;
/// Window of recent LBDs for the "fast" restart average.
const LBD_QUEUE_LEN: usize = 50;
/// Window of recent trail depths for restart blocking.
const TRAIL_QUEUE_LEN: usize = 5000;
/// Restart blocking only kicks in after this many lifetime conflicts.
const RESTART_BLOCK_MIN_CONFLICTS: u64 = 10_000;
/// Core tier: learnt clauses at or below this LBD are never deleted.
const CORE_LBD: u32 = 2;
/// Mid tier: clauses at or below this LBD whose LBD just improved get a
/// one-round reduction reprieve.
const MID_LBD: u32 = 6;

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        let config = SearchConfig::default();
        Solver {
            arena: ClauseArena::new(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            bwatches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: OrderHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            lbd_stamp: vec![0],
            lbd_stamp_gen: 0,
            ok: true,
            model: Vec::new(),
            stats: SolverStats::default(),
            budget: Budget::default(),
            config,
            simp: crate::simplify::SimpState::default(),
            reduce_limit: config.reduce_base,
            lbd_queue: BoundedQueue::new(LBD_QUEUE_LEN),
            trail_queue: BoundedQueue::new(TRAIL_QUEUE_LEN),
            global_lbd_sum: 0,
            conflicts_since_restart: 0,
            luby_index: 0,
        }
    }

    /// Sets the resource budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Sets the search-heuristic knobs. Resets the reduction trigger to
    /// the new base; safe to call between `solve` calls.
    pub fn set_search_config(&mut self, config: SearchConfig) {
        self.config = config;
        self.reduce_limit = config.reduce_base;
    }

    /// The current search-heuristic knobs.
    pub fn search_config(&self) -> SearchConfig {
        self.config
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Bytes currently held by the clause arena (live + not-yet-collected
    /// deleted clauses).
    pub fn db_bytes(&self) -> usize {
        self.arena.used_words() * std::mem::size_of::<u32>()
    }

    /// Bytes of the arena wasted by deleted clauses awaiting collection.
    pub fn db_wasted_bytes(&self) -> usize {
        self.arena.wasted_words() * std::mem::size_of::<u32>()
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (problem + retained learnts, minus deleted).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() + self.learnts.len()
    }

    /// Number of problem (non-learnt) clauses of length ≥ 2. Level-0 units
    /// are consumed into the trail and not counted. This is the count
    /// [`crate::simplify::SimplifyMode::Auto`] gates on and the base number
    /// for measured clause reductions.
    pub fn num_problem_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of variables neither assigned at level 0 nor eliminated by
    /// preprocessing — the variables search can still branch on.
    pub fn num_free_vars(&self) -> usize {
        (0..self.assign.len())
            .filter(|&i| self.assign[i] == LBool::Undef && !self.simp.eliminated[i])
            .count()
    }

    /// Allocates a fresh variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable budget is exhausted (the paper's lglib-style
    /// scalability wall); check [`Solver::try_new_var`] to handle it.
    pub fn new_var(&mut self) -> Var {
        self.try_new_var().expect("variable budget exhausted")
    }

    /// Allocates a fresh variable unless the budget forbids it.
    pub fn try_new_var(&mut self) -> Option<Var> {
        if let Some(max) = self.budget.max_vars {
            if self.assign.len() >= max {
                return None;
            }
        }
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(ClauseRef::NONE);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.lbd_stamp.push(0);
        self.simp.frozen.push(false);
        self.simp.eliminated.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bwatches.push(Vec::new());
        self.bwatches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        Some(v)
    }

    pub(crate) fn value_lit(&self, l: Lit) -> LBool {
        let v = self.assign[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// The value of `v` in the most recent model.
    ///
    /// # Panics
    ///
    /// Panics if the last [`Solver::solve`] did not return
    /// [`SolveResult::Sat`] or `v` is out of range.
    pub fn model_value(&self, v: Var) -> bool {
        self.model[v.index()]
    }

    /// The value of literal `l` in the most recent model.
    pub fn model_lit(&self, l: Lit) -> bool {
        self.model_value(l.var()) == l.is_positive()
    }

    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    pub(crate) fn enqueue(&mut self, l: Lit, reason: ClauseRef) -> bool {
        match self.value_lit(l) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = l.var();
                self.assign[v.index()] = LBool::from_bool(l.is_positive());
                self.level[v.index()] = self.decision_level();
                self.reason[v.index()] = reason;
                self.phase[v.index()] = l.is_positive();
                self.trail.push(l);
                true
            }
        }
    }

    /// Adds a clause. Returns `false` if the solver became trivially
    /// unsatisfiable. Clauses may be added at any time between `solve`
    /// calls (incremental use). A clause naming a variable removed by
    /// bounded variable elimination transparently reintroduces it first
    /// (see [`crate::simplify`]), so callers never observe elimination.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        for &l in lits {
            if self.is_eliminated(l.var()) {
                self.reintroduce(l.var());
            }
        }
        self.add_clause_inner(lits)
    }

    /// The [`Solver::add_clause`] body past the eliminated-variable check;
    /// reintroduction re-adds stored clauses through here directly (every
    /// involved variable is un-eliminated by then).
    pub(crate) fn add_clause_inner(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        // Normalize: sort, dedupe, drop false literals, detect tautology.
        // After the sort+dedup, the two polarities of a variable are
        // adjacent (the literal code is var<<1|sign), so the adjacent
        // complementary-literal check below catches every tautology no
        // matter how the input interleaved duplicates and complements —
        // pinned by `tautology_detection_survives_interleaving`.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: x ∨ ¬x
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(out[0], ClauseRef::NONE) {
                    self.ok = false;
                    return false;
                }
                if !self.propagate().is_none() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(&out, false, 0);
                true
            }
        }
    }

    /// Adds a **blocking clause** forbidding the most recent model's
    /// assignment to `lits`: at least one of them must flip in any future
    /// model. This is the enumeration primitive batched DIP discovery is
    /// built on — solve, read the model, block it, re-solve for the next
    /// distinct one. Returns `false` if the solver became trivially
    /// unsatisfiable (e.g. `lits` is empty: a model over zero literals can
    /// only be blocked by the empty clause).
    ///
    /// # Panics
    ///
    /// Panics if the last [`Solver::solve`] did not return
    /// [`SolveResult::Sat`].
    pub fn block_model(&mut self, lits: &[Lit]) -> bool {
        let clause: Vec<Lit> = lits
            .iter()
            .map(|&l| if self.model_lit(l) { !l } else { l })
            .collect();
        self.add_clause(&clause)
    }

    /// Like [`Solver::block_model`], but gates the blocking clause on the
    /// activation literal `act`: the model is forbidden only while `act`
    /// is passed as an assumption, and solves without it see the formula
    /// as if the clause were never added. This is the scoped-lemma form
    /// enumeration loops need when the blocked assignments must remain
    /// reachable for a later, differently-constrained solve.
    ///
    /// # Panics
    ///
    /// Panics if the last [`Solver::solve`] did not return
    /// [`SolveResult::Sat`].
    pub fn block_model_under(&mut self, act: Lit, lits: &[Lit]) -> bool {
        let mut clause: Vec<Lit> = lits
            .iter()
            .map(|&l| if self.model_lit(l) { !l } else { l })
            .collect();
        clause.push(!act);
        self.add_clause(&clause)
    }

    pub(crate) fn attach_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let c = self.arena.alloc(lits, learnt, lbd);
        self.attach_watches(c);
        if learnt {
            self.learnts.push(c);
            self.stats.learnts = self.learnts.len() as u64;
        } else {
            self.clauses.push(c);
        }
        c
    }

    /// Installs the watchers for `c` on its first two literals — the
    /// dedicated binary lists for two-literal clauses, the blocker-carrying
    /// long lists otherwise.
    pub(crate) fn attach_watches(&mut self, c: ClauseRef) {
        let l0 = self.arena.lit(c, 0);
        let l1 = self.arena.lit(c, 1);
        if self.arena.len(c) == 2 {
            self.bwatches[(!l0).code()].push(BinWatch {
                other: l1,
                clause: c,
            });
            self.bwatches[(!l1).code()].push(BinWatch {
                other: l0,
                clause: c,
            });
        } else {
            self.watches[(!l0).code()].push(Watch {
                clause: c,
                blocker: l1,
            });
            self.watches[(!l1).code()].push(Watch {
                clause: c,
                blocker: l0,
            });
        }
    }

    /// Removes the two watcher entries of `c` (the exact inverse of
    /// [`Solver::attach_watches`]); used by vivification to take a clause
    /// out of propagation while it is probed against itself.
    pub(crate) fn detach_watches(&mut self, c: ClauseRef) {
        let l0 = self.arena.lit(c, 0);
        let l1 = self.arena.lit(c, 1);
        if self.arena.len(c) == 2 {
            self.bwatches[(!l0).code()].retain(|w| w.clause != c);
            self.bwatches[(!l1).code()].retain(|w| w.clause != c);
        } else {
            self.watches[(!l0).code()].retain(|w| w.clause != c);
            self.watches[(!l1).code()].retain(|w| w.clause != c);
        }
    }

    /// Clears every watch list; the caller must re-attach all live clauses
    /// (the preprocessing rebuild does, mirroring the GC).
    pub(crate) fn clear_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        for w in &mut self.bwatches {
            w.clear();
        }
    }

    /// Boolean constraint propagation. Returns the conflicting clause or
    /// [`ClauseRef::NONE`].
    pub(crate) fn propagate(&mut self) -> ClauseRef {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;

            // Binary clauses watching ¬p: the watcher itself carries the
            // implied literal, so this loop never touches the arena.
            let n_bin = self.bwatches[p.code()].len();
            for i in 0..n_bin {
                let w = self.bwatches[p.code()][i];
                match self.value_lit(w.other) {
                    LBool::True => {}
                    LBool::False => {
                        self.qhead = self.trail.len();
                        return w.clause;
                    }
                    LBool::Undef => {
                        let _ = self.enqueue(w.other, w.clause);
                    }
                }
            }

            // Longer clauses: two watched literals with in-place watcher
            // compaction (kept watchers slide down over dropped ones).
            let mut list = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0usize;
            let mut j = 0usize;
            let mut conflict = ClauseRef::NONE;
            while i < list.len() {
                let w = list[i];
                // Quick satisfied check via the blocker literal.
                if self.value_lit(w.blocker) == LBool::True {
                    list[j] = w;
                    i += 1;
                    j += 1;
                    continue;
                }
                let c = w.clause;
                if self.arena.is_deleted(c) {
                    i += 1; // drop the watcher of a deleted clause
                    continue;
                }
                // Make sure the false literal is at position 1.
                if self.arena.lit(c, 0) == false_lit {
                    self.arena.swap_lits(c, 0, 1);
                }
                debug_assert_eq!(self.arena.lit(c, 1), false_lit);
                let first = self.arena.lit(c, 0);
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    list[j] = Watch {
                        clause: c,
                        blocker: first,
                    };
                    i += 1;
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.arena.len(c);
                let mut found = false;
                for k in 2..len {
                    let l = self.arena.lit(c, k);
                    if self.value_lit(l) != LBool::False {
                        self.arena.swap_lits(c, 1, k);
                        // l ≠ false_lit (it is not false), so this never
                        // pushes onto the list taken above.
                        self.watches[(!l).code()].push(Watch {
                            clause: c,
                            blocker: first,
                        });
                        found = true;
                        break;
                    }
                }
                if found {
                    i += 1; // watcher moved to another literal
                    continue;
                }
                // Clause is unit or conflicting; the watcher stays.
                list[j] = w;
                i += 1;
                j += 1;
                if self.value_lit(first) == LBool::False {
                    conflict = c;
                    self.qhead = self.trail.len();
                    // Keep the remaining watchers intact.
                    while i < list.len() {
                        list[j] = list[i];
                        i += 1;
                        j += 1;
                    }
                    break;
                }
                let _ = self.enqueue(first, c);
            }
            list.truncate(j);
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = list;
            if !conflict.is_none() {
                return conflict;
            }
        }
        ClauseRef::NONE
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            self.heap.rebuild(&self.activity);
        }
        self.heap.decrease_key(v, &self.activity);
    }

    /// Recomputes the LBD of `c` under the current assignment, via a
    /// generation-stamped level scratch (O(|c|), no allocation).
    fn clause_lbd(&mut self, c: ClauseRef) -> u32 {
        self.lbd_stamp_gen += 1;
        let gen = self.lbd_stamp_gen;
        let mut n = 0u32;
        for k in 0..self.arena.len(c) {
            let lvl = self.level[self.arena.lit(c, k).var().index()] as usize;
            if lvl != 0 && self.lbd_stamp[lvl] != gen {
                self.lbd_stamp[lvl] = gen;
                n += 1;
            }
        }
        n
    }

    /// 1UIP conflict analysis; returns (learnt clause, backtrack level, lbd).
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = conflict;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            debug_assert!(!confl.is_none(), "reason must exist below the UIP");
            // On-the-fly LBD: a learnt clause pulled into analysis gets its
            // glue refreshed; an improvement into the mid tier earns a
            // one-round reduction reprieve.
            if self.arena.is_learnt(confl) && self.arena.len(confl) > 2 {
                let lbd = self.clause_lbd(confl);
                if lbd < self.arena.lbd(confl) {
                    self.arena.set_lbd(confl, lbd);
                    if lbd <= MID_LBD {
                        self.arena.set_protected(confl, true);
                    }
                }
            }
            // Iterate literals of the reason clause (skipping the
            // propagated literal itself).
            for k in 0..self.arena.len(confl) {
                let q = self.arena.lit(confl, k);
                if let Some(p) = p {
                    if q.var() == p.var() {
                        continue;
                    }
                }
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var();
            self.seen[v.index()] = false;
            counter -= 1;
            p = Some(lit);
            confl = self.reason[v.index()];
            if counter == 0 {
                break;
            }
        }
        let uip = p.expect("at least one resolution");
        learnt[0] = !uip;

        // Clause minimization: drop literals implied by the rest.
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| i == 0 || !self.literal_is_redundant(l))
            .collect();
        let mut minimized: Vec<Lit> = learnt
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(&l, _)| l)
            .collect();

        // Clear seen flags for the literals we marked.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Backtrack level = max level among minimized[1..].
        let (bt, lbd) = if minimized.len() == 1 {
            (0, 1)
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            let bt = self.level[minimized[1].var().index()];
            let mut levels: Vec<u32> = minimized
                .iter()
                .map(|l| self.level[l.var().index()])
                .collect();
            levels.sort_unstable();
            levels.dedup();
            (bt, levels.len() as u32)
        };
        (minimized, bt, lbd)
    }

    /// A literal is redundant if its reason clause's other literals are all
    /// already marked (seen) or at level 0 — one-step self-subsumption.
    fn literal_is_redundant(&self, l: Lit) -> bool {
        let v = l.var();
        let r = self.reason[v.index()];
        if r.is_none() {
            return false;
        }
        (0..self.arena.len(r)).all(|k| {
            let q = self.arena.lit(r, k);
            q.var() == v || self.seen[q.var().index()] || self.level[q.var().index()] == 0
        })
    }

    pub(crate) fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = LBool::Undef;
            self.reason[v.index()] = ClauseRef::NONE;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = bound;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            // Eliminated variables occur in no clause; branching on them
            // would only pad the trail. They re-enter the heap on
            // reintroduction.
            if self.assign[v.index()] == LBool::Undef && !self.simp.eliminated[v.index()] {
                return Some(v);
            }
        }
        None
    }

    /// `true` if `c` is the reason for a current assignment — an O(1)
    /// check: a reason clause always carries its implied literal at
    /// position 0, so it suffices to look that variable's reason up.
    pub(crate) fn locked(&self, c: ClauseRef) -> bool {
        let first = self.arena.lit(c, 0);
        self.value_lit(first) == LBool::True && self.reason[first.var().index()] == c
    }

    /// Learnt-DB reduction with LBD-tiered retention: binaries and core
    /// clauses (LBD ≤ [`CORE_LBD`]) are permanent; mid-tier clauses
    /// (LBD ≤ [`MID_LBD`]) whose glue just improved survive one round;
    /// the worse half of the remaining candidates (by LBD, ties by
    /// length, then age) is deleted. Reason-locked clauses are skipped via
    /// the O(1) [`Solver::locked`] lookup and counted only when actually
    /// deleted, so no double counting across passes.
    fn reduce_db(&mut self) {
        let mut candidates: Vec<(u32, u32, ClauseRef)> = Vec::new();
        for idx in 0..self.learnts.len() {
            let c = self.learnts[idx];
            debug_assert!(!self.arena.is_deleted(c));
            let len = self.arena.len(c);
            let lbd = self.arena.lbd(c);
            if len <= 2 || lbd <= CORE_LBD {
                continue;
            }
            if self.arena.protected(c) {
                // The reprieve is spent either way; it only saves the
                // clause while its glue still sits in the mid tier.
                self.arena.set_protected(c, false);
                if lbd <= MID_LBD {
                    continue;
                }
            }
            if self.locked(c) {
                continue;
            }
            candidates.push((lbd, len as u32, c));
        }
        candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
        let doomed = candidates.len() / 2;
        for &(_, _, c) in candidates.iter().take(doomed) {
            self.arena.delete(c);
        }
        let arena = &self.arena;
        self.learnts.retain(|&c| !arena.is_deleted(c));
        self.stats.deleted += doomed as u64;
        self.stats.learnts = self.learnts.len() as u64;
        // Geometric schedule: each reduction raises the next trigger.
        self.reduce_limit += self.reduce_limit * self.config.reduce_growth_pct as usize / 100;
        self.maybe_gc();
    }

    pub(crate) fn maybe_gc(&mut self) {
        let used = self.arena.used_words();
        if used > 0 && self.arena.wasted_words() * 100 >= used * self.config.gc_wasted_pct as usize
        {
            self.garbage_collect();
        }
    }

    /// The arena garbage collector: compacts the clause buffer, remaps the
    /// live clause lists and every `reason` reference, and rebuilds all
    /// watch lists from scratch. Deleted clauses are never reasons (reason
    /// clauses are `locked` and skipped by reduction), so every held
    /// reference survives the compaction by construction.
    fn garbage_collect(&mut self) {
        let t = std::time::Instant::now();
        let tables = self.arena.compact();
        for c in self.clauses.iter_mut().chain(self.learnts.iter_mut()) {
            *c = ClauseArena::remap(&tables, *c);
        }
        for r in self.reason.iter_mut() {
            if !r.is_none() {
                *r = ClauseArena::remap(&tables, *r);
            }
        }
        for w in &mut self.watches {
            w.clear();
        }
        for w in &mut self.bwatches {
            w.clear();
        }
        for idx in 0..self.clauses.len() {
            let c = self.clauses[idx];
            self.attach_watches(c);
        }
        for idx in 0..self.learnts.len() {
            let c = self.learnts[idx];
            self.attach_watches(c);
        }
        self.stats.db_gcs += 1;
        self.stats.gc_ns += t.elapsed().as_nanos() as u64;
        debug_assert!(self.watches_are_consistent());
    }

    /// Debug-only watch-list integrity check: every live clause is watched
    /// exactly on the negations of its first two literals, in the list
    /// matching its length class, and live clauses hold exactly two
    /// watcher entries. (Watchers of deleted clauses may linger until
    /// propagation or GC drops them — they are not counted.)
    #[allow(dead_code)] // referenced from debug_assert! only
    fn watches_are_consistent(&self) -> bool {
        let mut expected = 0usize;
        for &c in self.clauses.iter().chain(self.learnts.iter()) {
            if self.arena.is_deleted(c) {
                return false;
            }
            expected += 2;
            let l0 = self.arena.lit(c, 0);
            let l1 = self.arena.lit(c, 1);
            let watched = |lit: Lit| {
                if self.arena.len(c) == 2 {
                    self.bwatches[(!lit).code()].iter().any(|w| w.clause == c)
                } else {
                    self.watches[(!lit).code()].iter().any(|w| w.clause == c)
                }
            };
            if !watched(l0) || !watched(l1) {
                return false;
            }
        }
        let arena = &self.arena;
        let live = |c: ClauseRef| !arena.is_deleted(c);
        let actual: usize = self
            .watches
            .iter()
            .map(|l| l.iter().filter(|w| live(w.clause)).count())
            .sum::<usize>()
            + self
                .bwatches
                .iter()
                .map(|l| l.iter().filter(|w| live(w.clause)).count())
                .sum::<usize>();
        expected == actual
    }

    /// The Luby restart sequence 1,1,2,1,1,2,4,… (0-indexed).
    fn luby(mut x: u64) -> u64 {
        let mut size: u64 = 1;
        let mut seq: u32 = 0;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under `assumptions` (each forced as a pseudo-decision).
    ///
    /// After `Sat`, the model is available; after any result the solver is
    /// back at decision level 0 and more clauses may be added.
    ///
    /// The first engaged solve (see [`Solver::set_simplify`]) runs the
    /// preprocessing pass of [`crate::simplify`] before search; assumption
    /// variables are treated as frozen for that pass, and assumptions on
    /// previously eliminated variables transparently reintroduce them.
    /// After `Sat` the model is extended over eliminated variables by
    /// replaying the elimination stack, so [`Solver::model_value`] stays
    /// total and the model satisfies every clause ever added.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        for &a in assumptions {
            if self.is_eliminated(a.var()) {
                self.reintroduce(a.var());
            }
        }
        if !self.simp.preprocessed
            && self.simp.mode.engages(self.clauses.len())
            && !self.preprocess_with(assumptions)
        {
            return SolveResult::Unsat;
        }
        let result = self.search(assumptions);
        self.cancel_until(0);
        if result == SolveResult::Sat {
            self.extend_model();
        }
        result
    }

    fn search(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.propagate().is_none() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let start_conflicts = self.stats.conflicts;
        self.conflicts_since_restart = 0;
        let mut restart_budget = RESTART_UNIT * Self::luby(self.luby_index);

        loop {
            let conflict = self.propagate();
            if !conflict.is_none() {
                self.stats.conflicts += 1;
                self.conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                // Restart blocking (Glucose): an unusually deep trail means
                // the solver may be closing in on a model — hold restarts
                // by draining the fast-average window.
                self.trail_queue.push(self.trail.len() as u64);
                if self.stats.conflicts > RESTART_BLOCK_MIN_CONFLICTS
                    && self.trail_queue.full()
                    && (self.trail.len() as u64) * (self.trail_queue.len() as u64) * 5
                        > self.trail_queue.sum() * 7
                {
                    self.lbd_queue.clear();
                }
                // Conflicts under assumption levels make the assumption set
                // unsatisfiable once analysis would backtrack above them —
                // handled below by clamping.
                let (learnt, bt, lbd) = self.analyze(conflict);
                self.lbd_queue.push(lbd as u64);
                self.global_lbd_sum += lbd as u64;
                let assumed = (assumptions.len() as u32).min(self.decision_level());
                if bt < assumed {
                    // The learnt clause flips something at/above an
                    // assumption level: re-propagate from the assumption
                    // boundary; if the learnt clause is violated there, the
                    // assumptions are inconsistent.
                    self.cancel_until(bt);
                } else {
                    self.cancel_until(bt);
                }
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], ClauseRef::NONE) {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                } else {
                    let c = self.attach_clause(&learnt, true, lbd);
                    let _ = self.enqueue(learnt[0], c);
                }
                self.var_inc *= VAR_DECAY;
                if let Some(max) = self.budget.max_conflicts {
                    if self.stats.conflicts - start_conflicts >= max {
                        return SolveResult::Unknown;
                    }
                }
                if self.learnts.len() >= self.reduce_limit {
                    self.reduce_db();
                }
                let restart = match self.config.restart {
                    RestartMode::Luby => self.conflicts_since_restart >= restart_budget,
                    // Fast (windowed) LBD average running 25% hot against
                    // the lifetime average: the search degraded, restart.
                    RestartMode::LbdEma => {
                        self.lbd_queue.full()
                            && self.lbd_queue.sum() * 4 * self.stats.conflicts
                                > self.global_lbd_sum * 5 * self.lbd_queue.len() as u64
                    }
                };
                if restart {
                    // Restart: keep assumptions by only backtracking to the
                    // assumption boundary.
                    self.stats.restarts += 1;
                    self.conflicts_since_restart = 0;
                    match self.config.restart {
                        RestartMode::Luby => {
                            self.luby_index += 1;
                            restart_budget = RESTART_UNIT * Self::luby(self.luby_index);
                        }
                        RestartMode::LbdEma => self.lbd_queue.clear(),
                    }
                    let keep = (assumptions.len() as u32).min(self.decision_level());
                    self.cancel_until(keep);
                    // Inprocessing rides the restart boundary: every Nth
                    // restart, vivify a budgeted batch of learnt clauses
                    // (drops to level 0; the decide loop below re-pushes
                    // any assumptions).
                    if !self.maybe_vivify() {
                        return SolveResult::Unsat;
                    }
                }
                continue;
            }

            // No conflict: decide.
            let dl = self.decision_level() as usize;
            if dl < assumptions.len() {
                let a = assumptions[dl];
                match self.value_lit(a) {
                    LBool::True => {
                        // Already satisfied: open an empty decision level so
                        // assumption indexing stays aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    LBool::False => return SolveResult::Unsat,
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len());
                        let _ = self.enqueue(a, ClauseRef::NONE);
                    }
                }
                continue;
            }
            match self.pick_branch_var() {
                None => {
                    // Complete assignment: extract the model.
                    self.model = self
                        .assign
                        .iter()
                        .map(|&v| matches!(v, LBool::True))
                        .collect();
                    return SolveResult::Sat;
                }
                Some(v) => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let lit = Lit::with_polarity(v, self.phase[v.index()]);
                    let _ = self.enqueue(lit, ClauseRef::NONE);
                }
            }
        }
    }
}

impl ClauseSink for Solver {
    fn add_clause_sink(&mut self, lits: &[Lit]) {
        let _ = self.add_clause(lits);
    }

    fn new_var_sink(&mut self) -> Var {
        self.new_var()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // hole index `j` ties pigeon rows together
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    /// A tiny schedule that forces reduction and GC on small instances.
    fn tight_config(restart: RestartMode) -> SearchConfig {
        SearchConfig {
            restart,
            reduce_base: 8,
            reduce_growth_pct: 10,
            gc_wasted_pct: 10,
        }
    }

    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let p: Vec<Vec<Lit>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_lit(v[0]) || s.model_lit(v[1]));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn block_model_enumerates_distinct_models() {
        // Over 3 free variables, repeated solve→block must walk all 8
        // assignments exactly once before going UNSAT.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let mut seen = std::collections::HashSet::new();
        loop {
            match s.solve() {
                SolveResult::Sat => {
                    let model: Vec<bool> = v.iter().map(|&l| s.model_lit(l)).collect();
                    assert!(seen.insert(model), "blocking must forbid repeats");
                    s.block_model(&v);
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown => panic!("no budget set"),
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn gated_blocking_applies_only_under_its_assumption() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        let act = Lit::pos(s.new_var());
        assert_eq!(s.solve(), SolveResult::Sat);
        let model: Vec<bool> = v.iter().map(|&l| s.model_lit(l)).collect();
        s.block_model_under(act, &v);
        // Under the activation assumption the model is forbidden…
        assert_eq!(s.solve_with(&[act]), SolveResult::Sat);
        let next: Vec<bool> = v.iter().map(|&l| s.model_lit(l)).collect();
        assert_ne!(model, next, "gated blocking must forbid the model");
        // …and blocking all four assignments exhausts the gated space…
        for _ in 0..3 {
            s.block_model_under(act, &v);
            if s.solve_with(&[act]) != SolveResult::Sat {
                break;
            }
        }
        assert_eq!(s.solve_with(&[act]), SolveResult::Unsat);
        // …while the ungated formula stays satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn blocking_over_no_literals_is_the_empty_clause() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.block_model(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        // v0 and a chain of implications v0→v1→v2→v3→v4.
        s.add_clause(&[v[0]]);
        for i in 0..4 {
            s.add_clause(&[!v[i], v[i + 1]]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for l in v {
            assert!(s.model_lit(l));
        }
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], !v[0]]);
        s.add_clause(&[!v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.model_lit(v[1]));
    }

    #[test]
    fn tautology_detection_survives_interleaving() {
        // The tautology check runs post-sort, where the two polarities of
        // a variable land adjacent — so arbitrarily interleaved duplicates
        // and complements must still be caught and add no clause.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let before = s.num_clauses();
        assert!(s.add_clause(&[v[0], v[1], v[0], !v[0], v[2]]));
        assert!(s.add_clause(&[v[2], v[1], !v[1], v[2], v[1]]));
        assert!(s.add_clause(&[!v[2], v[0], v[1], v[2]]));
        assert_eq!(s.num_clauses(), before, "tautologies must not attach");
        // A mere duplicate is not a tautology: it dedupes and attaches.
        assert!(s.add_clause(&[v[0], v[1], v[0]]));
        assert_eq!(s.num_clauses(), before + 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_lit(v[0]) || s.model_lit(v[1]));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // PHP(3,2): classic small UNSAT instance requiring real search.
        let mut s = Solver::new();
        pigeonhole(&mut s, 3, 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_5_is_sat() {
        let mut s = Solver::new();
        let n = 5;
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..n {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Verify the model is a valid assignment.
        for j in 0..n {
            let count = (0..n).filter(|&i| s.model_lit(p[i][j])).count();
            assert!(count <= 1, "hole {j} used {count} times");
        }
        for (i, row) in p.iter().enumerate() {
            assert!(row.iter().any(|&l| s.model_lit(l)), "pigeon {i} unplaced");
        }
    }

    #[test]
    fn assumptions_flip_satisfiability() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve_with(&[!v[0], !v[1]]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[!v[0]]), SolveResult::Sat);
        assert!(s.model_lit(v[1]));
        // Solver stays usable for unconditional solving.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.model_lit(v[0]));
        s.add_clause(&[!v[1]]);
        s.add_clause(&[!v[2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard instance (PHP 7 into 6) with a 1-conflict budget.
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        s.set_budget(Budget {
            max_conflicts: Some(1),
            max_vars: None,
        });
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Raising the budget resolves it.
        s.set_budget(Budget::default());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn var_budget_is_enforced() {
        let mut s = Solver::new();
        s.set_budget(Budget {
            max_conflicts: None,
            max_vars: Some(2),
        });
        assert!(s.try_new_var().is_some());
        assert!(s.try_new_var().is_some());
        assert!(s.try_new_var().is_none());
    }

    #[test]
    fn luby_prefix_is_correct() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn xor_chain_forces_unique_model() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 = 0 → x1 = 1, x2 = 0.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Lit, b: Lit| {
            s.add_clause(&[a, b]);
            s.add_clause(&[!a, !b]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.model_lit(v[0]));
        assert!(s.model_lit(v[1]));
        assert!(!s.model_lit(v[2]));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[2], v[3]]);
        let _ = s.solve();
        assert!(s.stats().decisions > 0 || s.stats().propagations > 0);
    }

    #[test]
    fn stats_invariants_hold_through_reduction_and_gc() {
        // A hard instance on a tiny schedule so reduction, the reprieve
        // path, and GC all fire repeatedly — then the counters must still
        // describe reality: `learnts` is the live list, every live learnt
        // is live in the arena, and `deleted` matches the GC-visible
        // history (each deletion counted exactly once even when locked
        // clauses were skipped on earlier passes).
        for restart in [RestartMode::LbdEma, RestartMode::Luby] {
            let mut s = Solver::new();
            s.set_search_config(tight_config(restart));
            pigeonhole(&mut s, 8, 7);
            assert_eq!(s.solve(), SolveResult::Unsat, "{restart:?}");
            let st = s.stats();
            assert_eq!(st.learnts, s.learnts.len() as u64, "{restart:?}");
            assert!(
                s.learnts.iter().all(|&c| !s.arena.is_deleted(c)),
                "{restart:?}: live list holds a deleted clause"
            );
            assert!(st.deleted > 0, "{restart:?}: reduction never fired");
            assert!(st.restarts > 0, "{restart:?}: restarts never fired");
            assert!(st.db_gcs > 0, "{restart:?}: GC never fired");
            assert!(
                s.db_wasted_bytes() * 100
                    < s.db_bytes().max(1) * (s.config.gc_wasted_pct as usize + 100),
                "{restart:?}: wasted space runs past the GC trigger"
            );
            assert!(s.watches_are_consistent(), "{restart:?}");
        }
    }

    #[test]
    fn restart_modes_agree_on_satisfiability() {
        for (pigeons, holes, expect) in [(3, 2, SolveResult::Unsat), (6, 6, SolveResult::Sat)] {
            for restart in [RestartMode::LbdEma, RestartMode::Luby] {
                let mut s = Solver::new();
                s.set_search_config(SearchConfig {
                    restart,
                    ..SearchConfig::default()
                });
                pigeonhole(&mut s, pigeons, holes);
                assert_eq!(s.solve(), expect, "{restart:?} PHP({pigeons},{holes})");
            }
        }
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for trial in 0..60 {
            let n = rng.gen_range(3..10usize);
            let m = rng.gen_range(2..(4 * n));
            let clauses: Vec<Vec<i64>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.gen_range(1..=n as i64);
                            if rng.gen_bool(0.5) {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for m_bits in 0..(1u32 << n) {
                for c in &clauses {
                    let ok = c.iter().any(|&l| {
                        let val = (m_bits >> (l.unsigned_abs() - 1)) & 1 == 1;
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            for _ in 0..n {
                s.new_var();
            }
            for c in &clauses {
                let lits: Vec<Lit> = c.iter().map(|&l| Lit::from_dimacs(l)).collect();
                s.add_clause(&lits);
            }
            let result = s.solve();
            if brute_sat {
                assert_eq!(result, SolveResult::Sat, "trial {trial}");
                // And the model must satisfy every clause.
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.model_lit(Lit::from_dimacs(l))),
                        "trial {trial}: model violates {c:?}"
                    );
                }
            } else {
                assert_eq!(result, SolveResult::Unsat, "trial {trial}");
            }
        }
    }
}
