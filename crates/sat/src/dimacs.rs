//! DIMACS CNF reading and writing.

use crate::cnf::{ClauseSink, CnfFormula};
use crate::lit::Lit;
use std::error::Error;
use std::fmt;

/// DIMACS parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs error at line {}: {}", self.line, self.message)
    }
}

impl Error for DimacsError {}

/// Parses DIMACS CNF text into a formula.
///
/// # Errors
///
/// Returns [`DimacsError`] for malformed headers or literals.
pub fn parse_dimacs(text: &str) -> Result<CnfFormula, DimacsError> {
    let mut formula = CnfFormula::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut declared_vars: Option<usize> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError {
                    line: line_no,
                    message: format!("bad problem line `{line}`"),
                });
            }
            declared_vars = Some(parts[1].parse().map_err(|_| DimacsError {
                line: line_no,
                message: "variable count is not a number".into(),
            })?);
            continue;
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| DimacsError {
                line: line_no,
                message: format!("`{tok}` is not a literal"),
            })?;
            if v == 0 {
                formula.add_clause_sink(&current);
                current.clear();
            } else {
                current.push(Lit::from_dimacs(v));
            }
        }
    }
    if !current.is_empty() {
        formula.add_clause_sink(&current);
    }
    if let Some(n) = declared_vars {
        formula.reserve_vars(n);
    }
    Ok(formula)
}

/// Serializes a formula as DIMACS CNF text.
pub fn write_dimacs(formula: &CnfFormula) -> String {
    let mut s = format!("p cnf {} {}\n", formula.num_vars(), formula.len());
    for clause in formula.clauses() {
        for l in clause {
            s.push_str(&l.to_dimacs().to_string());
            s.push(' ');
        }
        s.push_str("0\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    #[test]
    fn parse_simple_instance() {
        let f = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn round_trip() {
        let text = "p cnf 3 2\n1 -2 0\n2 3 0\n";
        let f = parse_dimacs(text).unwrap();
        let back = parse_dimacs(&write_dimacs(&f)).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn parsed_formula_solves() {
        let f = parse_dimacs("p cnf 2 3\n1 2 0\n-1 0\n-2 1 0\n").unwrap();
        let mut s = Solver::new();
        f.copy_into(&mut s);
        // ¬1, then 2 from (1∨2), but (¬2∨1) forces 1 — contradiction.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(parse_dimacs("p qbf 1 1\n1 0\n").is_err());
        assert!(parse_dimacs("p cnf x 1\n").is_err());
    }

    #[test]
    fn bad_literal_is_rejected() {
        let e = parse_dimacs("p cnf 1 1\n1 zebra 0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("zebra"));
    }

    #[test]
    fn clause_without_terminator_is_flushed() {
        let f = parse_dimacs("p cnf 2 1\n1 2\n").unwrap();
        assert_eq!(f.len(), 1);
    }
}
