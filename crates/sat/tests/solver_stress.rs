#![allow(clippy::needless_range_loop)] // index vars tie multiple slices together in these instances
//! Stress and semantic tests for the CDCL solver beyond the unit suite:
//! incremental-vs-monolithic agreement, assumption semantics, model
//! validity on structured instances, and budget behavior.

use gshe_sat::solver::Budget;
use gshe_sat::{Lit, SolveResult, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_cnf(rng: &mut StdRng, n: usize, m: usize, k: usize) -> Vec<Vec<i64>> {
    (0..m)
        .map(|_| {
            (0..k)
                .map(|_| {
                    let v = rng.gen_range(1..=n as i64);
                    if rng.gen_bool(0.5) {
                        v
                    } else {
                        -v
                    }
                })
                .collect()
        })
        .collect()
}

fn load(clauses: &[Vec<i64>], n: usize) -> Solver {
    let mut s = Solver::new();
    for _ in 0..n {
        s.new_var();
    }
    for c in clauses {
        let lits: Vec<Lit> = c.iter().map(|&l| Lit::from_dimacs(l)).collect();
        s.add_clause(&lits);
    }
    s
}

#[test]
fn incremental_equals_monolithic() {
    // Adding clauses in two batches with an intermediate solve must agree
    // with loading everything upfront.
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for trial in 0..40 {
        let n = rng.gen_range(5..30);
        let m = rng.gen_range(5..(4 * n));
        let clauses = random_cnf(&mut rng, n, m, 3);
        let split = m / 2;

        let mut mono = load(&clauses, n);
        let expected = mono.solve();

        let mut inc = load(&clauses[..split], n);
        let _ = inc.solve(); // intermediate solve
        for c in &clauses[split..] {
            let lits: Vec<Lit> = c.iter().map(|&l| Lit::from_dimacs(l)).collect();
            inc.add_clause(&lits);
        }
        assert_eq!(inc.solve(), expected, "trial {trial}");
    }
}

#[test]
fn assumptions_do_not_pollute_later_solves() {
    let mut rng = StdRng::seed_from_u64(0xABCD);
    for trial in 0..30 {
        let n = rng.gen_range(4..16);
        let clauses = random_cnf(&mut rng, n, 2 * n, 3);
        let mut s = load(&clauses, n);
        let unconditioned = s.solve();
        // Random assumption set.
        let assumptions: Vec<Lit> = (0..rng.gen_range(1..n))
            .map(|i| Lit::with_polarity(gshe_sat::Var(i as u32), rng.gen_bool(0.5)))
            .collect();
        let _ = s.solve_with(&assumptions);
        // The unconditioned answer must be unchanged afterwards.
        assert_eq!(s.solve(), unconditioned, "trial {trial}");
    }
}

#[test]
fn assumption_of_both_polarities_is_unsat() {
    let mut s = Solver::new();
    let a = Lit::pos(s.new_var());
    let b = Lit::pos(s.new_var());
    s.add_clause(&[a, b]);
    assert_eq!(s.solve_with(&[a, !a]), SolveResult::Unsat);
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn models_satisfy_graph_coloring() {
    // 3-coloring of a ring: SAT iff the ring length is not odd... a ring
    // is 2-colorable iff even, but always 3-colorable. Verify the model.
    for len in [4usize, 5, 9, 12] {
        let mut s = Solver::new();
        let colors: Vec<[Lit; 3]> = (0..len)
            .map(|_| {
                [
                    Lit::pos(s.new_var()),
                    Lit::pos(s.new_var()),
                    Lit::pos(s.new_var()),
                ]
            })
            .collect();
        for c in &colors {
            s.add_clause(c);
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[!c[i], !c[j]]);
                }
            }
        }
        for v in 0..len {
            let w = (v + 1) % len;
            for k in 0..3 {
                s.add_clause(&[!colors[v][k], !colors[w][k]]);
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat, "ring {len}");
        for v in 0..len {
            let cv: Vec<usize> = (0..3).filter(|&k| s.model_lit(colors[v][k])).collect();
            assert_eq!(cv.len(), 1, "vertex {v} has {cv:?}");
            let w = (v + 1) % len;
            let cw: Vec<usize> = (0..3).filter(|&k| s.model_lit(colors[w][k])).collect();
            assert_ne!(cv, cw, "edge {v}-{w} monochromatic");
        }
    }
}

#[test]
fn two_coloring_of_odd_ring_is_unsat() {
    for len in [3usize, 5, 7, 11] {
        let mut s = Solver::new();
        let x: Vec<Lit> = (0..len).map(|_| Lit::pos(s.new_var())).collect();
        for v in 0..len {
            let w = (v + 1) % len;
            // adjacent vertices differ: x_v XOR x_w
            s.add_clause(&[x[v], x[w]]);
            s.add_clause(&[!x[v], !x[w]]);
        }
        assert_eq!(s.solve(), SolveResult::Unsat, "odd ring {len}");
    }
}

#[test]
fn budget_unknown_then_resolution() {
    // A moderately hard UNSAT instance: php(8,7).
    let mut s = Solver::new();
    let n = 8;
    let p: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..n - 1).map(|_| Lit::pos(s.new_var())).collect())
        .collect();
    for row in &p {
        s.add_clause(row);
    }
    for j in 0..n - 1 {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[!p[i1][j], !p[i2][j]]);
            }
        }
    }
    s.set_budget(Budget {
        max_conflicts: Some(10),
        max_vars: None,
    });
    assert_eq!(s.solve(), SolveResult::Unknown);
    s.set_budget(Budget::default());
    assert_eq!(s.solve(), SolveResult::Unsat);
    // Stats accumulated across both calls.
    assert!(s.stats().conflicts > 10);
}

#[test]
fn large_random_satisfiable_instance() {
    // Under-constrained random 3-SAT (ratio 2.0): almost surely SAT; the
    // solver must find a model and the model must check.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let n = 400;
    let clauses = random_cnf(&mut rng, n, 2 * n, 3);
    let mut s = load(&clauses, n);
    assert_eq!(s.solve(), SolveResult::Sat);
    for c in &clauses {
        assert!(c.iter().any(|&l| s.model_lit(Lit::from_dimacs(l))));
    }
}

#[test]
fn xor_bank_has_unique_solution() {
    // x_i = parity chain; forces a unique model the solver must find.
    let mut s = Solver::new();
    let n = 24;
    let x: Vec<Lit> = (0..n).map(|_| Lit::pos(s.new_var())).collect();
    // x0 = 1; x_{i+1} = !x_i
    s.add_clause(&[x[0]]);
    for i in 0..n - 1 {
        s.add_clause(&[x[i], x[i + 1]]);
        s.add_clause(&[!x[i], !x[i + 1]]);
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    for (i, &l) in x.iter().enumerate() {
        assert_eq!(s.model_lit(l), i % 2 == 0, "bit {i}");
    }
}
