//! Property tests for the simplification pipeline: on random small CNFs,
//! solving with preprocessing forced on must agree verdict-for-verdict
//! with the plain solver and with a brute-force truth table, and any
//! model it returns — *after* elimination-stack reconstruction — must
//! satisfy the original formula. A second battery drives the incremental
//! interface across preprocessing: frozen variables keep their meaning
//! through clause additions and repeated solves, and adding a clause on
//! an eliminated variable transparently reintroduces it.

use gshe_sat::{Lit, SimplifyMode, SolveResult, Solver, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random CNF over `vars` variables: `clauses` clauses of
/// 1–4 distinct-variable literals each.
fn random_cnf(rng: &mut StdRng, vars: u32, clauses: usize) -> Vec<Vec<Lit>> {
    (0..clauses)
        .map(|_| {
            let len = rng.gen_range(1usize..=4.min(vars as usize));
            let mut picked: Vec<u32> = Vec::with_capacity(len);
            while picked.len() < len {
                let v = rng.gen_range(0..vars);
                if !picked.contains(&v) {
                    picked.push(v);
                }
            }
            picked
                .into_iter()
                .map(|v| Lit::with_polarity(Var(v), rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

fn satisfies(cnf: &[Vec<Lit>], bits: u32) -> bool {
    cnf.iter().all(|clause| {
        clause
            .iter()
            .any(|l| (bits >> l.var().0 & 1 == 1) == l.is_positive())
    })
}

fn truth_table_sat(cnf: &[Vec<Lit>], vars: u32) -> bool {
    (0u32..1 << vars).any(|bits| satisfies(cnf, bits))
}

fn solver_with(cnf: &[Vec<Lit>], vars: u32, mode: SimplifyMode) -> (Solver, bool) {
    let mut s = Solver::new();
    s.set_simplify(mode);
    for _ in 0..vars {
        s.new_var();
    }
    let mut consistent = true;
    for clause in cnf {
        consistent &= s.add_clause(clause);
    }
    (s, consistent)
}

fn model_bits(s: &Solver, vars: u32) -> u32 {
    let mut bits = 0u32;
    for v in 0..vars {
        if s.model_value(Var(v)) {
            bits |= 1 << v;
        }
    }
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Forced preprocessing (subsumption, strengthening, BVE, model
    /// reconstruction) never changes a verdict, and the reconstructed
    /// model satisfies the *original* clauses — including ones BVE
    /// distributed away.
    #[test]
    fn simplified_verdicts_match_brute_force(
        vars in 2u32..=12,
        clauses in 1usize..=48,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51D5);
        let cnf = random_cnf(&mut rng, vars, clauses);
        let expected = truth_table_sat(&cnf, vars);

        let (mut plain, p_ok) = solver_with(&cnf, vars, SimplifyMode::Off);
        let (mut simp, s_ok) = solver_with(&cnf, vars, SimplifyMode::On);
        let plain_sat = p_ok && plain.solve() == SolveResult::Sat;
        let simp_sat = s_ok && simp.solve() == SolveResult::Sat;

        prop_assert_eq!(plain_sat, expected, "plain solver disagrees with brute force");
        prop_assert_eq!(simp_sat, expected, "simplified solver disagrees with brute force");
        if simp_sat {
            let bits = model_bits(&simp, vars);
            prop_assert!(
                satisfies(&cnf, bits),
                "reconstructed model is not a model: {:#b}",
                bits
            );
        }
    }

    /// Incremental use across preprocessing: the first solve runs the
    /// preprocessor, then follow-up clauses over *frozen* variables (and
    /// over eliminated ones, which must be transparently reintroduced)
    /// keep agreeing with the plain solver on the accumulated formula.
    #[test]
    fn incremental_rounds_survive_preprocessing(
        vars in 3u32..=10,
        clauses in 2usize..=32,
        rounds in 1usize..=4,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x14C0);
        let mut cnf = random_cnf(&mut rng, vars, clauses);

        let (mut plain, mut p_ok) = solver_with(&cnf, vars, SimplifyMode::Off);
        let (mut simp, mut s_ok) = solver_with(&cnf, vars, SimplifyMode::On);
        // Freeze a prefix of the variables — those are the formula's
        // "interface"; the rest are fair game for elimination.
        let frozen = vars / 2;
        for v in 0..frozen {
            simp.freeze(Var(v));
        }

        for _ in 0..=rounds {
            let expected = truth_table_sat(&cnf, vars);
            let plain_sat = p_ok && plain.solve() == SolveResult::Sat;
            let simp_sat = s_ok && simp.solve() == SolveResult::Sat;
            prop_assert_eq!(plain_sat, expected);
            prop_assert_eq!(simp_sat, expected);
            if simp_sat {
                let bits = model_bits(&simp, vars);
                prop_assert!(satisfies(&cnf, bits));
                // Frozen interface variables are never eliminated, so
                // their values are read directly, not reconstructed.
                for v in 0..frozen {
                    prop_assert!(!simp.is_eliminated(Var(v)));
                }
            }
            // Grow the formula: new clauses may name *any* variable,
            // including eliminated ones (exercising reintroduction).
            let extra_clauses = rng.gen_range(1usize..4);
            let extra = random_cnf(&mut rng, vars, extra_clauses);
            for clause in &extra {
                p_ok &= plain.add_clause(clause);
                s_ok &= simp.add_clause(clause);
            }
            cnf.extend(extra);
        }
    }
}

/// Pure-literal / unconstrained-variable edge: eliminating a variable
/// with an empty occurrence side must leave a reconstructable model.
#[test]
fn eliminated_pure_literal_reconstructs() {
    let mut s = Solver::new();
    s.set_simplify(SimplifyMode::On);
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    // `c` appears only positively; BVE resolves it away with zero
    // resolvents. `a`/`b` form a satisfiable core.
    s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
    s.add_clause(&[Lit::pos(c), Lit::pos(a)]);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.model_value(b));
    // The original third clause must hold under the extended model.
    assert!(s.model_value(c) || s.model_value(a));
}

/// Assumption literals of the engaging solve are protected for that pass:
/// solving under assumptions right as preprocessing runs must respect
/// them.
#[test]
fn assumptions_survive_the_engaging_solve() {
    let mut s = Solver::new();
    s.set_simplify(SimplifyMode::On);
    let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
    // A chain a0 -> a1 -> ... -> a7.
    for w in vars.windows(2) {
        s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
    }
    assert_eq!(
        s.solve_with(&[Lit::pos(vars[0])]),
        SolveResult::Sat,
        "chain under a0 is satisfiable"
    );
    assert!(s.model_value(vars[7]), "implication chain must propagate");
    assert_eq!(
        s.solve_with(&[Lit::pos(vars[0]), Lit::neg(vars[7])]),
        SolveResult::Unsat,
        "a0 and !a7 contradict the chain"
    );
}
