//! Property tests for the CDCL core: random small CNFs checked against a
//! brute-force truth-table reference, under both restart modes and a
//! deliberately tiny reduce/GC schedule so clause deletion, arena
//! compaction, and watch-list rebuilding all run on ordinary inputs — not
//! just the pigeonhole fixtures in the unit tests.
//!
//! Also pins the arena-memory contract for incremental enumeration: a
//! long add-clause/solve/block-model loop must not grow the clause
//! database monotonically, because garbage collection compacts away the
//! learnt clauses each reduction deletes.

use gshe_sat::{Lit, RestartMode, SearchConfig, SolveResult, Solver, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reduce/GC schedule small enough that 12-variable formulas exercise
/// DB reduction and arena compaction.
fn tiny_schedule(restart: RestartMode) -> SearchConfig {
    SearchConfig {
        restart,
        reduce_base: 4,
        reduce_growth_pct: 0,
        gc_wasted_pct: 1,
    }
}

/// Generates a random CNF over `vars` variables: `clauses` clauses of
/// 1–4 distinct-variable literals each.
fn random_cnf(rng: &mut StdRng, vars: u32, clauses: usize) -> Vec<Vec<Lit>> {
    (0..clauses)
        .map(|_| {
            let len = rng.gen_range(1usize..=4.min(vars as usize));
            let mut picked: Vec<u32> = Vec::with_capacity(len);
            while picked.len() < len {
                let v = rng.gen_range(0..vars);
                if !picked.contains(&v) {
                    picked.push(v);
                }
            }
            picked
                .into_iter()
                .map(|v| Lit::with_polarity(Var(v), rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// Brute-force reference: does any of the `2^vars` assignments satisfy
/// every clause?
fn truth_table_sat(cnf: &[Vec<Lit>], vars: u32) -> bool {
    (0u32..1 << vars).any(|bits| satisfies(cnf, bits))
}

fn satisfies(cnf: &[Vec<Lit>], bits: u32) -> bool {
    cnf.iter().all(|clause| {
        clause
            .iter()
            .any(|l| (bits >> l.var().0 & 1 == 1) == l.is_positive())
    })
}

fn solve_under(cnf: &[Vec<Lit>], vars: u32, restart: RestartMode) -> (SolveResult, Option<u32>) {
    let mut s = Solver::new();
    s.set_search_config(tiny_schedule(restart));
    for _ in 0..vars {
        s.new_var();
    }
    for clause in cnf {
        if !s.add_clause(clause) {
            return (SolveResult::Unsat, None);
        }
    }
    match s.solve() {
        SolveResult::Sat => {
            let mut bits = 0u32;
            for v in 0..vars {
                if s.model_value(Var(v)) {
                    bits |= 1 << v;
                }
            }
            (SolveResult::Sat, Some(bits))
        }
        other => (other, None),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The solver agrees with the truth table on satisfiability under
    /// both restart modes, and any model it returns actually satisfies
    /// the formula.
    #[test]
    fn agrees_with_truth_table(
        vars in 2u32..=12,
        clauses in 1usize..=48,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cnf = random_cnf(&mut rng, vars, clauses);
        let expected = truth_table_sat(&cnf, vars);
        for restart in [RestartMode::LbdEma, RestartMode::Luby] {
            let (result, model) = solve_under(&cnf, vars, restart);
            prop_assert!(result != SolveResult::Unknown, "budget exhausted on a tiny CNF");
            let got = result == SolveResult::Sat;
            prop_assert_eq!(got, expected, "mode {:?} disagrees with brute force", restart);
            if let Some(bits) = model {
                prop_assert!(
                    satisfies(&cnf, bits),
                    "mode {:?} returned a non-model: {:#b}",
                    restart,
                    bits
                );
            }
        }
    }

    /// Model enumeration via `block_model` finds exactly the satisfying
    /// assignments the truth table does — blocking clauses interleave
    /// with learnt-clause reduction and GC without losing models.
    #[test]
    fn enumeration_matches_truth_table(
        vars in 2u32..=8,
        clauses in 1usize..=24,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let cnf = random_cnf(&mut rng, vars, clauses);
        let expected: Vec<u32> =
            (0u32..1 << vars).filter(|&bits| satisfies(&cnf, bits)).collect();

        let mut s = Solver::new();
        s.set_search_config(tiny_schedule(RestartMode::LbdEma));
        for _ in 0..vars {
            s.new_var();
        }
        let mut consistent = true;
        for clause in &cnf {
            consistent &= s.add_clause(clause);
        }
        let mut found = Vec::new();
        while consistent && s.solve() == SolveResult::Sat {
            let mut bits = 0u32;
            let model: Vec<Lit> = (0..vars)
                .map(|v| {
                    let positive = s.model_value(Var(v));
                    if positive {
                        bits |= 1 << v;
                    }
                    Lit::with_polarity(Var(v), positive)
                })
                .collect();
            found.push(bits);
            prop_assert!(found.len() <= expected.len(), "enumerated a duplicate model");
            consistent = s.block_model(&model);
        }
        found.sort_unstable();
        prop_assert_eq!(found, expected);
    }
}

/// The incremental-enumeration memory contract: over 1k rounds of
/// solve/block-model against one incrementally growing formula, GC keeps
/// arena growth non-monotonic (the learnt clauses each reduction deletes
/// are compacted away) and bounded overall. Without compaction the arena
/// would only ever grow as learnt clauses accumulate and die.
#[test]
fn incremental_enumeration_keeps_arena_bounded() {
    const VARS: u32 = 14;
    const ROUNDS: usize = 1000;
    let mut rng = StdRng::seed_from_u64(0xA11A);
    let mut s = Solver::new();
    s.set_search_config(tiny_schedule(RestartMode::LbdEma));
    let vars: Vec<Var> = (0..VARS).map(|_| s.new_var()).collect();
    // A lightly constrained base formula: length-3/4 clauses leave a
    // model space far larger than the rounds we enumerate, so the loop
    // never runs dry.
    for _ in 0..12 {
        let len = rng.gen_range(3usize..=4);
        let mut clause = Vec::with_capacity(len);
        while clause.len() < len {
            let v = vars[rng.gen_range(0..VARS as usize)];
            if !clause.iter().any(|l: &Lit| l.var() == v) {
                clause.push(Lit::with_polarity(v, rng.gen_bool(0.5)));
            }
        }
        s.add_clause(&clause);
    }

    let mut shrank = false;
    let mut peak = 0usize;
    let mut last = 0usize;
    for round in 0..ROUNDS {
        assert_eq!(
            s.solve(),
            SolveResult::Sat,
            "model space ran dry at round {round}"
        );
        let model: Vec<Lit> = vars
            .iter()
            .map(|&v| Lit::with_polarity(v, s.model_value(v)))
            .collect();
        s.block_model(&model);
        let bytes = s.db_bytes();
        if bytes < last {
            shrank = true;
        }
        last = bytes;
        peak = peak.max(bytes);
        // Live clauses are one blocking clause per round plus a reduced
        // learnt set, so the arena stays small in absolute terms; a leak
        // of deleted clauses would push it far past this.
        assert!(
            bytes < 4 << 20,
            "arena grew to {} bytes by round {round}",
            bytes
        );
        assert!(
            s.db_wasted_bytes() <= bytes,
            "wasted bytes exceed arena size"
        );
    }
    let stats = s.stats();
    assert!(stats.db_gcs > 0, "the tiny GC schedule never collected");
    assert!(stats.deleted > 0, "DB reduction never deleted a learnt");
    assert!(
        shrank,
        "arena never shrank across {ROUNDS} rounds (peak {peak} bytes) — GC is not compacting"
    );
}
