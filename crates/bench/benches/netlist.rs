//! Criterion benches for the logic substrate: bit-parallel simulation,
//! generation, parsing, and STA.

use criterion::{criterion_group, criterion_main, Criterion};
use gshe_core::logic::bench_format::{parse_bench, write_bench, C17_BENCH};
use gshe_core::logic::{GeneratorConfig, NetlistGenerator, PatternBlock, Simulator};
use gshe_core::timing::{path_delay_histogram, DelayModel, TimingAnalysis};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_simulation(c: &mut Criterion) {
    let nl = NetlistGenerator::new(GeneratorConfig::new("t", 64, 32, 10_000).with_seed(1))
        .unwrap()
        .generate();
    let mut rng = StdRng::seed_from_u64(2);
    let block = PatternBlock::random(64, &mut rng);
    c.bench_function("simulate_10k_gates_64_patterns", |b| {
        let mut sim = Simulator::new(&nl);
        b.iter(|| sim.run(&block).unwrap())
    });
}

fn bench_generation(c: &mut Criterion) {
    c.bench_function("generate_10k_gates", |b| {
        b.iter(|| {
            NetlistGenerator::new(GeneratorConfig::new("t", 64, 32, 10_000).with_seed(3))
                .unwrap()
                .generate()
        })
    });
}

fn bench_parse_round_trip(c: &mut Criterion) {
    let nl = parse_bench(C17_BENCH).unwrap();
    let big = write_bench(&nl);
    c.bench_function("bench_format_round_trip_c17", |b| {
        b.iter(|| parse_bench(&big).unwrap())
    });
}

fn bench_sta(c: &mut Criterion) {
    let nl = NetlistGenerator::new(
        GeneratorConfig::new("t", 64, 32, 20_000)
            .with_seed(5)
            .with_chain_bias(0.2),
    )
    .unwrap()
    .generate();
    let model = DelayModel::cmos_45nm();
    let delays = model.node_delays(&nl);
    c.bench_function("sta_20k_gates", |b| {
        b.iter(|| TimingAnalysis::analyze(&nl, &delays))
    });
    c.bench_function("path_histogram_20k_gates", |b| {
        b.iter(|| path_delay_histogram(&nl, &delays, 60, 0.5e-9))
    });
}

/// Cone extraction under the two fanin topologies: the locality-biased
/// generator wires tiles of ~1k gates with rare escapes, so a single
/// output's fanin cone stays a thin slice of the design, while uniform
/// fanin draws percolate almost the whole netlist into every cone. The
/// bench pins both the extraction cost and (via the printed sizes in
/// test code) why superblue-scale COI projection only pays off on
/// locality-biased instances.
fn bench_cone_topology(c: &mut Criterion) {
    use gshe_core::logic::Topology;

    let mut group = c.benchmark_group("cone_of_by_topology");
    for topology in [Topology::Uniform, Topology::Local] {
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("t", 64, 32, 50_000)
                .with_seed(7)
                .with_topology(topology),
        )
        .unwrap()
        .generate();
        let roots = [nl.outputs()[0], nl.outputs()[nl.outputs().len() / 2]];
        group.bench_function(format!("50k_gates_{}", topology.name()), |b| {
            b.iter(|| nl.cone_of(&roots))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulation, bench_generation, bench_parse_round_trip, bench_sta,
        bench_cone_topology
}
criterion_main!(benches);
