//! Criterion benches for the device substrate, including the
//! integrator ablation DESIGN.md calls out (implicit midpoint vs
//! stochastic Heun).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gshe_core::device::integrator::{Integrator, MidpointIntegrator, StochasticHeun};
use gshe_core::device::llgs::{LlgsSystem, PairState};
use gshe_core::device::{GsheSwitch, SwitchParams, Vec3};

fn bench_integrator_step(c: &mut Criterion) {
    let sys = LlgsSystem::new(&SwitchParams::table_i());
    let state = PairState {
        m_w: Vec3::new(-0.95, 0.3, 0.1).normalized(),
        m_r: Vec3::new(0.95, -0.3, 0.05).normalized(),
    };
    let mut group = c.benchmark_group("integrator_step");
    let mid = MidpointIntegrator::default();
    group.bench_function(BenchmarkId::new("ablation", "midpoint"), |b| {
        b.iter(|| {
            mid.step(&sys, state, 20e-6, Vec3::X, Vec3::ZERO, Vec3::ZERO, 1e-12)
                .unwrap()
        })
    });
    let heun = StochasticHeun;
    group.bench_function(BenchmarkId::new("ablation", "heun"), |b| {
        b.iter(|| {
            heun.step(&sys, state, 20e-6, Vec3::X, Vec3::ZERO, Vec3::ZERO, 1e-12)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_deterministic_write(c: &mut Criterion) {
    c.bench_function("switch_write_20uA", |b| {
        let mut sw = GsheSwitch::new(SwitchParams::table_i());
        b.iter(|| {
            sw.set_state(false);
            sw.write_deterministic(20e-6, true)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_integrator_step, bench_deterministic_write
}
criterion_main!(benches);
