//! Oracle query-path benchmarks: the bit-parallel block path vs. 64
//! pattern-at-a-time scalar queries, for the deterministic chip and the
//! stochastic (noise-engine) chip of Sec. V-B — plus the **batched-DIP**
//! attack benchmark measuring the unified engine's end-to-end win.
//!
//! The acceptance target for the noise-aware engine is a ≥10× speedup of
//! `StochasticOracle::query_block` over 64 scalar `query` calls on an
//! ISCAS-89 s-suite benchmark (s38584, scaled); for the batched DIP
//! engine it is a wall-clock reduction of the full SAT attack at batch
//! width 16 vs. width 1 on the same benchmark.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gshe_core::attacks::OracleStack;
use gshe_core::campaign::search::{ProfileSearch, SearchSpec};
use gshe_core::campaign::EvalSession;
use gshe_core::logic::{suites, ErrorProfile, FaultSimulator, Netlist, PatternBlock};
use gshe_core::prelude::{
    camouflage, sat_attack, select_gates, AttackConfig, AttackKind, AttackStatus, CamoScheme,
    KeyedNetlist, NetlistOracle, Oracle, RestartMode, StochasticOracle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn s38584_keyed_at(level: f64) -> (Netlist, KeyedNetlist) {
    let spec = suites::spec("s38584").expect("s-suite benchmark present");
    let nl = suites::benchmark_scaled(spec, 40, 1);
    let picks = select_gates(&nl, level, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).expect("camouflage");
    (nl, keyed)
}

fn s38584_keyed() -> (Netlist, KeyedNetlist) {
    s38584_keyed_at(0.1)
}

fn bench_oracle_paths(c: &mut Criterion) {
    let (nl, keyed) = s38584_keyed();
    let n_inputs = nl.inputs().len();
    let mut rng = StdRng::seed_from_u64(7);
    let block = PatternBlock::random(n_inputs, &mut rng);
    let patterns: Vec<Vec<bool>> = (0..64).map(|k| block.pattern(k)).collect();

    let mut group = c.benchmark_group("oracle_s38584");

    let mut stochastic = StochasticOracle::new(&keyed, 0.05, 11);
    group.bench_function("stochastic_query_block_64", |b| {
        b.iter(|| black_box(stochastic.query_block(black_box(&block))))
    });

    let mut stochastic_scalar = StochasticOracle::new(&keyed, 0.05, 11);
    group.bench_function("stochastic_query_scalar_x64", |b| {
        b.iter(|| {
            for p in &patterns {
                black_box(stochastic_scalar.query(black_box(p)));
            }
        })
    });

    let mut netlist_oracle = NetlistOracle::new(&nl);
    group.bench_function("netlist_query_block_64", |b| {
        b.iter(|| black_box(netlist_oracle.query_block(black_box(&block))))
    });

    let mut netlist_scalar = NetlistOracle::new(&nl);
    group.bench_function("netlist_query_scalar_x64", |b| {
        b.iter(|| {
            for p in &patterns {
                black_box(netlist_scalar.query(black_box(p)));
            }
        })
    });

    group.finish();
}

/// The layered oracle stack's `query_block` against the bare
/// [`FaultSimulator`] it drives: the noise-only stack (thin-adapter
/// overhead only), the rotating noisy stack at a period long enough that
/// no boundary falls inside a block (pure layer overhead plus the
/// scalar-stream noise draw), and at period 20 (three epoch splits per
/// block — the worst realistic segmentation). This is the measured form
/// of "each layer is a thin combinator".
fn bench_stacked_oracle(c: &mut Criterion) {
    let (_, keyed) = s38584_keyed();
    let nodes: Vec<_> = keyed.camo_gates().iter().map(|g| g.node).collect();
    let profile = ErrorProfile::uniform_at(keyed.netlist().len(), &nodes, 0.05);
    let n_inputs = keyed.netlist().inputs().len();
    let mut rng = StdRng::seed_from_u64(7);
    let block = PatternBlock::random(n_inputs, &mut rng);

    let mut group = c.benchmark_group("stacked_oracle_s38584");

    let mut bare = FaultSimulator::new(keyed.netlist(), profile.clone(), 11);
    group.bench_function("bare_fault_simulator_64", |b| {
        b.iter(|| black_box(bare.run_masked(black_box(&block)).unwrap()))
    });

    let mut noisy = OracleStack::noisy(&keyed, profile.clone(), 11);
    group.bench_function("stack_noisy_query_block_64", |b| {
        b.iter(|| black_box(noisy.query_block(black_box(&block))))
    });

    let mut combined_long = OracleStack::rotating_noisy(&keyed, profile.clone(), 1 << 40, 11);
    group.bench_function("stack_rotating_noisy_period_huge", |b| {
        b.iter(|| black_box(combined_long.query_block(black_box(&block))))
    });

    let mut combined_20 = OracleStack::rotating_noisy(&keyed, profile, 20, 11);
    group.bench_function("stack_rotating_noisy_period_20", |b| {
        b.iter(|| black_box(combined_20.query_block(black_box(&block))))
    });

    group.finish();
}

/// The `gshe_obs` disabled-path overhead pin: the stochastic (noisy
/// stack) oracle's `query_block` on s38584 with instrumentation compiled
/// in but **off** (one relaxed atomic load per instrumentation point —
/// the state every ordinary run executes in) vs. fully **enabled**
/// metrics. The disabled-path target is < 2% over the bare stack; the
/// enabled row shows what flipping the switch actually costs.
fn bench_obs_overhead(c: &mut Criterion) {
    let (_, keyed) = s38584_keyed();
    let nodes: Vec<_> = keyed.camo_gates().iter().map(|g| g.node).collect();
    let profile = ErrorProfile::uniform_at(keyed.netlist().len(), &nodes, 0.05);
    let n_inputs = keyed.netlist().inputs().len();
    let mut rng = StdRng::seed_from_u64(7);
    let block = PatternBlock::random(n_inputs, &mut rng);

    let mut group = c.benchmark_group("obs_overhead_s38584");

    gshe_core::obs::disable();
    let mut disabled = OracleStack::noisy(&keyed, profile.clone(), 11);
    group.bench_function("stochastic_query_block_64_obs_disabled", |b| {
        b.iter(|| black_box(disabled.query_block(black_box(&block))))
    });

    gshe_core::obs::enable();
    let mut enabled = OracleStack::noisy(&keyed, profile, 11);
    group.bench_function("stochastic_query_block_64_obs_enabled", |b| {
        b.iter(|| black_box(enabled.query_block(black_box(&block))))
    });
    gshe_core::obs::disable();

    group.finish();
}

/// The unified DIP-refinement engine end to end: the full SAT attack on
/// s38584 (scaled 1/40, 5% protection) at batch width 1 (the historical
/// one-query-per-iteration loop) vs. width 16 (class-split-blocked batch
/// discovery resolved through one `query_block` per round). The batched
/// rounds must *reduce* wall-clock, not just oracle calls — this is the
/// measured form of the speedup claim.
fn bench_batched_dip(c: &mut Criterion) {
    let (nl, keyed) = s38584_keyed_at(0.05);
    let mut group = c.benchmark_group("batched_dip_s38584");

    for width in [1usize, 16] {
        let config = AttackConfig::with_timeout_secs(120).with_dip_batch(width);
        group.bench_function(format!("sat_attack_batch_{width}"), |b| {
            b.iter(|| {
                let mut oracle = NetlistOracle::new(&nl);
                let out = sat_attack(black_box(&keyed), &mut oracle, &config);
                assert_eq!(out.status, AttackStatus::Success, "width {width}");
                black_box(out.iterations)
            })
        });
    }

    group.finish();
}

/// The incremental CDCL core's two restart pacers head to head on the
/// full batched SAT attack (s38584 scaled 1/40, 5% protection, batch
/// width 16): Glucose-style LBD-EMA adaptive restarts (the default) vs.
/// the legacy Luby schedule. Both run the same arena clause database,
/// tiered DB reduction, and GC; the gap isolates what adaptive restart
/// pacing contributes on an incremental enumeration workload.
fn bench_incremental_solver(c: &mut Criterion) {
    let (nl, keyed) = s38584_keyed_at(0.05);
    let mut group = c.benchmark_group("incremental_solver_s38584");

    for (label, mode) in [
        ("lbd_ema", RestartMode::LbdEma),
        ("luby", RestartMode::Luby),
    ] {
        let config = AttackConfig::with_timeout_secs(120)
            .with_dip_batch(16)
            .with_restart_mode(mode);
        group.bench_function(format!("sat_attack_restart_{label}"), |b| {
            b.iter(|| {
                let mut oracle = NetlistOracle::new(&nl);
                let out = sat_attack(black_box(&keyed), &mut oracle, &config);
                assert_eq!(out.status, AttackStatus::Success, "restart mode {label}");
                black_box(out.iterations)
            })
        });
    }

    group.finish();
}

/// One profile-search candidate evaluation (1 trial × SAT at batch width
/// 16 against the noisy stack) through a **warm** [`EvalSession`] — pool
/// up, benchmark and scheme materializations memoized — vs. a **cold**
/// one rebuilt per evaluation. The gap is what the evaluation-service
/// refactor buys every candidate after the first; the warm path is the
/// cost a search actually pays per candidate.
fn bench_profile_candidate_score(c: &mut Criterion) {
    let spec = SearchSpec {
        name: "bench".into(),
        benchmark: "ex1010".into(),
        scale: 400,
        level: 0.15,
        scheme: CamoScheme::GsheAll16,
        attacks: vec![AttackKind::Sat],
        clock_periods_ns: vec![2.0],
        trials: 1,
        timeout: Duration::from_secs(30),
        threads: 1,
        ..SearchSpec::default()
    };
    let mut group = c.benchmark_group("profile_candidate_score");

    let warm_session = EvalSession::new(1);
    let warm = ProfileSearch::new(&warm_session, spec.clone()).expect("search setup");
    let mut seeds = warm.seed_candidates();
    let candidate = seeds.remove(1); // clock:2ns:uniform — a real operating point
    group.bench_function("warm_session", |b| {
        b.iter(|| black_box(warm.score(0, vec![candidate.clone()])))
    });

    group.bench_function("cold_session", |b| {
        b.iter(|| {
            let session = EvalSession::new(1);
            let search = ProfileSearch::new(&session, spec.clone()).expect("search setup");
            let mut seeds = search.seed_candidates();
            let candidate = seeds.remove(1);
            black_box(search.score(0, vec![candidate]))
        })
    });

    group.finish();
}

/// Raw arena-sweep throughput on the **unscaled** s38584 (19k gates,
/// the shape the superblue path stresses): one bit-parallel
/// `query_block` evaluates `gate_count × 64` gate-pattern pairs, so
/// gates/sec = `gate_count × 64 / time`. This is the gate-evaluation
/// rate the `logic.nodes_evaluated` counter meters and the figure the
/// README's scaling section quotes.
fn bench_gates_per_sec(c: &mut Criterion) {
    let spec = suites::spec("s38584").expect("s-suite benchmark present");
    let nl = suites::benchmark(spec, 1, 1);
    let gates = nl.gate_count();
    let mut rng = StdRng::seed_from_u64(7);
    let block = PatternBlock::random(nl.inputs().len(), &mut rng);

    let mut group = c.benchmark_group("gates_per_sec_s38584");
    let mut oracle = NetlistOracle::new(&nl);
    group.bench_function(format!("query_block_64x{gates}_gates"), |b| {
        b.iter(|| black_box(oracle.query_block(black_box(&block))))
    });
    group.finish();
}

/// The cone-of-influence miter reduction end to end: the width-16
/// batched SAT attack on s38584 (scale 4, full 304-output interface, 6
/// camouflaged gates) with `CoiMode::On` vs. `CoiMode::Off`. With few
/// cloaked cells the affected-output cone is a small slice of the
/// netlist, so the On row encodes and propagates a fraction of the
/// gates per DIP round; the acceptance target is a ≥1.5× wall-clock
/// reduction of the On row over the Off (full-miter, PR 7 baseline)
/// row.
fn bench_coi_miter(c: &mut Criterion) {
    use gshe_core::attacks::CoiMode;
    use gshe_core::camo::select_gates_count;

    let spec = suites::spec("s38584").expect("s-suite benchmark present");
    let nl = suites::benchmark(spec, 4, 1);
    let picks = select_gates_count(&nl, 6, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).expect("camouflage");

    let mut group = c.benchmark_group("coi_miter_s38584");
    for (label, coi) in [("coi_on", CoiMode::On), ("coi_off", CoiMode::Off)] {
        let config = AttackConfig::with_timeout_secs(120)
            .with_dip_batch(16)
            .with_coi(coi);
        group.bench_function(format!("sat_attack_w16_{label}"), |b| {
            b.iter(|| {
                let mut oracle = NetlistOracle::new(&nl);
                let out = sat_attack(black_box(&keyed), &mut oracle, &config);
                assert_eq!(out.status, AttackStatus::Success, "{label}");
                black_box(out.iterations)
            })
        });
    }
    group.finish();
}

/// SAT simplification end to end: the width-16 batched attack on the
/// standard s38584 instance (scale 40, 10% protection) with
/// `SimplifyMode::On` — SatELite-style preprocessing of the key-search
/// miter (subsumption, self-subsumption, bounded variable elimination;
/// ≥30% clause reduction, pinned by the `simplify_smoke` root test),
/// Plaisted–Greenbaum single-sided miter encoding, and learnt-clause
/// vivification at restart boundaries — vs. `SimplifyMode::Off`, the
/// PR 9 search on the raw clause set.
fn bench_simplify_miter(c: &mut Criterion) {
    use gshe_core::attacks::SimplifyMode;

    let (nl, keyed) = s38584_keyed();

    let mut group = c.benchmark_group("simplify_miter_s38584");
    for (label, mode) in [
        ("simplify_on", SimplifyMode::On),
        ("simplify_off", SimplifyMode::Off),
    ] {
        let config = AttackConfig::with_timeout_secs(120)
            .with_dip_batch(16)
            .with_simplify(mode);
        group.bench_function(format!("sat_attack_w16_{label}"), |b| {
            b.iter(|| {
                let mut oracle = NetlistOracle::new(&nl);
                let out = sat_attack(black_box(&keyed), &mut oracle, &config);
                assert_eq!(out.status, AttackStatus::Success, "{label}");
                black_box(out.iterations)
            })
        });
    }
    group.finish();
}

/// The cone-keyed campaign cache on a superblue-shaped instance (sb1 at
/// scale 16, locality-biased topology, ~60k nodes): `query_block`
/// through [`CachedOracle::over_cone`] cold (every block simulated,
/// then inserted under its packed cone-input sub-key) vs. warm (pure
/// hash probes on cone-width keys). The acceptance target is a ≥5×
/// warm-over-cold win — in practice the gap is orders of magnitude,
/// since a cold query sweeps the full arena per block.
fn bench_coi_cached_oracle(c: &mut Criterion) {
    use gshe_core::campaign::{CachedOracle, OracleCache};
    use gshe_core::logic::Topology;

    let spec = suites::spec("sb1").expect("superblue suite present");
    let nl = suites::benchmark_scaled_with(spec, 16, 1, Topology::Local);
    let cone: Vec<usize> = (0..64).collect();
    let mut rng = StdRng::seed_from_u64(17);
    let blocks: Vec<PatternBlock> = (0..16)
        .map(|_| PatternBlock::random(nl.inputs().len(), &mut rng))
        .collect();

    let mut group = c.benchmark_group("coi_cached_oracle_sb1");

    group.bench_function("cold_query_block_x16", |b| {
        b.iter(|| {
            // A fresh cache per iteration: every block misses and
            // simulates the full 60k-node arena.
            let cache = OracleCache::shared_with_cap(0);
            let mut oracle = CachedOracle::over_cone(&nl, cache, cone.clone());
            for block in &blocks {
                black_box(oracle.query_block(black_box(block)));
            }
        })
    });

    let warm_cache = OracleCache::shared_with_cap(0);
    let mut warm = CachedOracle::over_cone(&nl, warm_cache, cone.clone());
    for block in &blocks {
        warm.query_block(block);
    }
    group.bench_function("warm_query_block_x16", |b| {
        b.iter(|| {
            for block in &blocks {
                black_box(warm.query_block(black_box(block)));
            }
        })
    });

    group.finish();
}

criterion_group! {
    name = oracle;
    config = Criterion::default().sample_size(30);
    targets = bench_oracle_paths, bench_stacked_oracle, bench_gates_per_sec
}
criterion_group! {
    name = coi_cached_oracle;
    config = Criterion::default().sample_size(10);
    targets = bench_coi_cached_oracle
}
criterion_group! {
    name = candidate_score;
    config = Criterion::default().sample_size(10);
    targets = bench_profile_candidate_score
}
criterion_group! {
    name = batched_dip;
    config = Criterion::default().sample_size(5);
    targets = bench_batched_dip
}
criterion_group! {
    name = coi_miter;
    config = Criterion::default().sample_size(5);
    targets = bench_coi_miter
}
criterion_group! {
    name = simplify_miter;
    config = Criterion::default().sample_size(5);
    targets = bench_simplify_miter
}
criterion_group! {
    name = incremental_solver;
    config = Criterion::default().sample_size(5);
    targets = bench_incremental_solver
}
criterion_group! {
    name = obs_overhead;
    config = Criterion::default().sample_size(30);
    targets = bench_obs_overhead
}
criterion_main!(
    oracle,
    obs_overhead,
    batched_dip,
    coi_miter,
    simplify_miter,
    incremental_solver,
    candidate_score,
    coi_cached_oracle
);
