//! Oracle query-path benchmarks: the bit-parallel block path vs. 64
//! pattern-at-a-time scalar queries, for the deterministic chip and the
//! stochastic (noise-engine) chip of Sec. V-B.
//!
//! The acceptance target for the noise-aware engine is a ≥10× speedup of
//! `StochasticOracle::query_block` over 64 scalar `query` calls on an
//! ISCAS-89 s-suite benchmark (s38584, scaled).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gshe_core::logic::{suites, Netlist, PatternBlock};
use gshe_core::prelude::{
    camouflage, select_gates, CamoScheme, KeyedNetlist, NetlistOracle, Oracle, StochasticOracle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn s38584_keyed() -> (Netlist, KeyedNetlist) {
    let spec = suites::spec("s38584").expect("s-suite benchmark present");
    let nl = suites::benchmark_scaled(spec, 40, 1);
    let picks = select_gates(&nl, 0.1, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).expect("camouflage");
    (nl, keyed)
}

fn bench_oracle_paths(c: &mut Criterion) {
    let (nl, keyed) = s38584_keyed();
    let n_inputs = nl.inputs().len();
    let mut rng = StdRng::seed_from_u64(7);
    let block = PatternBlock::random(n_inputs, &mut rng);
    let patterns: Vec<Vec<bool>> = (0..64).map(|k| block.pattern(k)).collect();

    let mut group = c.benchmark_group("oracle_s38584");

    let mut stochastic = StochasticOracle::new(&keyed, 0.05, 11);
    group.bench_function("stochastic_query_block_64", |b| {
        b.iter(|| black_box(stochastic.query_block(black_box(&block))))
    });

    let mut stochastic_scalar = StochasticOracle::new(&keyed, 0.05, 11);
    group.bench_function("stochastic_query_scalar_x64", |b| {
        b.iter(|| {
            for p in &patterns {
                black_box(stochastic_scalar.query(black_box(p)));
            }
        })
    });

    let mut netlist_oracle = NetlistOracle::new(&nl);
    group.bench_function("netlist_query_block_64", |b| {
        b.iter(|| black_box(netlist_oracle.query_block(black_box(&block))))
    });

    let mut netlist_scalar = NetlistOracle::new(&nl);
    group.bench_function("netlist_query_scalar_x64", |b| {
        b.iter(|| {
            for p in &patterns {
                black_box(netlist_scalar.query(black_box(p)));
            }
        })
    });

    group.finish();
}

criterion_group! {
    name = oracle;
    config = Criterion::default().sample_size(30);
    targets = bench_oracle_paths
}
criterion_main!(oracle);
