//! Criterion benches for the CDCL solver on pigeonhole instances
//! (UNSAT, exercises learning) and random 3-SAT (near phase transition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gshe_core::sat::{Lit, SolveResult, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[allow(clippy::needless_range_loop)] // `j` indexes two pigeon rows at once
fn php(n: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..n - 1).map(|_| Lit::pos(s.new_var())).collect())
        .collect();
    for row in &p {
        s.add_clause(row);
    }
    for j in 0..n - 1 {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[!p[i1][j], !p[i2][j]]);
            }
        }
    }
    s
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdcl_pigeonhole");
    for n in [6, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = php(n);
                assert_eq!(s.solve(), SolveResult::Unsat);
            })
        });
    }
    group.finish();
}

fn bench_random_3sat(c: &mut Criterion) {
    c.bench_function("cdcl_random_3sat_100v", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut s = Solver::new();
            let n = 100;
            for _ in 0..n {
                s.new_var();
            }
            for _ in 0..(4 * n) {
                let clause: Vec<Lit> = (0..3)
                    .map(|_| {
                        let v = rng.gen_range(1..=n as i64);
                        Lit::from_dimacs(if rng.gen_bool(0.5) { v } else { -v })
                    })
                    .collect();
                s.add_clause(&clause);
            }
            s.solve()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pigeonhole, bench_random_3sat
}
criterion_main!(benches);
