//! Criterion benches for the attack pipeline, including the key-encoding
//! ablation DESIGN.md calls out (the scheme's candidate-set size is the
//! encoding knob: 2 candidates = 1 bit/cell ... 16 candidates = 4
//! bits/cell) and the DIP-loop comparison between the plain SAT attack and
//! Double DIP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gshe_core::attacks::{
    double_dip_attack, sat_attack, AttackConfig, AttackStatus, NetlistOracle,
};
use gshe_core::camo::{camouflage, select_gates, CamoScheme};
use gshe_core::logic::{GeneratorConfig, Netlist, NetlistGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload() -> Netlist {
    NetlistGenerator::new(GeneratorConfig::new("bench", 12, 6, 120).with_seed(11))
        .unwrap()
        .generate()
}

fn bench_attack_by_scheme(c: &mut Criterion) {
    let nl = workload();
    let picks = select_gates(&nl, 0.2, 3);
    let mut group = c.benchmark_group("sat_attack_by_scheme");
    for scheme in [
        CamoScheme::InvBuf,
        CamoScheme::FourFn,
        CamoScheme::GsheAll16,
    ] {
        let mut rng = StdRng::seed_from_u64(3);
        let keyed = camouflage(&nl, &picks, scheme, &mut rng).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scheme}")),
            &keyed,
            |b, keyed| {
                b.iter(|| {
                    let mut oracle = NetlistOracle::new(&nl);
                    let out = sat_attack(keyed, &mut oracle, &AttackConfig::with_timeout_secs(60));
                    assert_eq!(out.status, AttackStatus::Success);
                })
            },
        );
    }
    group.finish();
}

fn bench_double_dip_vs_sat(c: &mut Criterion) {
    let nl = workload();
    let picks = select_gates(&nl, 0.15, 5);
    let mut rng = StdRng::seed_from_u64(5);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
    let mut group = c.benchmark_group("dip_loop");
    group.bench_function("sat_attack", |b| {
        b.iter(|| {
            let mut oracle = NetlistOracle::new(&nl);
            sat_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(60))
        })
    });
    group.bench_function("double_dip", |b| {
        b.iter(|| {
            let mut oracle = NetlistOracle::new(&nl);
            double_dip_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(60))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_attack_by_scheme, bench_double_dip_vs_sat
}
criterion_main!(benches);
