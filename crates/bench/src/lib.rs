//! # gshe-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! paper's evaluation. Each artifact has a dedicated binary (see
//! `src/bin/`), and Criterion benches in `benches/` measure the hot paths
//! and the ablation comparisons DESIGN.md calls out.
//!
//! | Artifact | Binary |
//! |----------|--------|
//! | Table I   | `table1` |
//! | Table II  | `table2` |
//! | Table III | `table3` |
//! | Table IV  | `table4` |
//! | Fig. 2    | `fig2` |
//! | Fig. 4    | `fig4` |
//! | Fig. 5    | `fig5` |
//! | Fig. 6    | `fig6` |
//! | Sec. II s38584 study        | `exp_s38584` |
//! | Sec. V-A Double DIP study   | `exp_double_dip` |
//! | Sec. V-A hybrid CMOS–GSHE   | `exp_hybrid` |
//! | Sec. V-B stochastic defense | `exp_stochastic` |
//!
//! Shared argument parsing and table rendering live here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// Common command-line options for the harness binaries.
///
/// Parsed by hand (`--key value` pairs) to avoid pulling an argument-parsing
/// dependency into the reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Benchmark-scale divisor (1 = paper-scale gate counts).
    pub scale: usize,
    /// Per-attack wall-clock budget.
    pub timeout: Duration,
    /// Monte Carlo sample count.
    pub samples: usize,
    /// Master seed.
    pub seed: u64,
    /// Restrict to one benchmark (empty = all).
    pub only: String,
    /// Protection levels as fractions (Table IV rows).
    pub levels: Vec<f64>,
    /// Campaign worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 20,
            timeout: Duration::from_secs(60),
            samples: 2_000,
            seed: 1,
            only: String::new(),
            levels: vec![0.10, 0.20, 0.30, 0.40],
            threads: 0,
        }
    }
}

impl HarnessArgs {
    /// Parses `--scale N --timeout SECS --samples N --seed N --only NAME`
    /// from `std::env::args`, falling back to the defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut args = HarnessArgs::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].as_str();
            let value = argv.get(i + 1).unwrap_or_else(|| {
                panic!("missing value for {key}; usage: --scale N --timeout SECS --samples N --seed N --only NAME")
            });
            match key {
                "--scale" => args.scale = value.parse().expect("--scale takes an integer"),
                "--timeout" => {
                    args.timeout =
                        Duration::from_secs(value.parse().expect("--timeout takes seconds"))
                }
                "--samples" => args.samples = value.parse().expect("--samples takes an integer"),
                "--seed" => args.seed = value.parse().expect("--seed takes an integer"),
                "--only" => args.only = value.clone(),
                "--threads" => args.threads = value.parse().expect("--threads takes an integer"),
                "--levels" => {
                    args.levels = value
                        .split(',')
                        .map(|v| {
                            v.parse::<f64>()
                                .expect("--levels takes percents, e.g. 10,20")
                                / 100.0
                        })
                        .collect()
                }
                other => panic!("unknown option `{other}`"),
            }
            i += 2;
        }
        args
    }
}

/// Renders a histogram line: a label, a unicode bar, and the value.
pub fn bar_line(label: &str, value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    format!(
        "{label:>10} | {:<width$} {value:.4}",
        "█".repeat(filled.min(width))
    )
}

/// Formats a runtime cell for Table IV: seconds, or `t-o` on timeout, or
/// `fail` on resource exhaustion.
pub fn runtime_cell(status: &str, secs: f64) -> String {
    match status {
        "success" => format!("{secs:.1}"),
        "timeout" => "t-o".to_string(),
        "inconsistent" => "incons".to_string(),
        _ => "fail".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = HarnessArgs::default();
        assert_eq!(a.scale, 20);
        assert_eq!(a.timeout, Duration::from_secs(60));
    }

    #[test]
    fn bar_line_scales() {
        let l = bar_line("x", 5.0, 10.0, 10);
        assert!(l.contains("█████"));
        let empty = bar_line("x", 0.0, 10.0, 10);
        assert!(!empty.contains('█'));
    }

    #[test]
    fn runtime_cells() {
        assert_eq!(runtime_cell("success", 12.34), "12.3");
        assert_eq!(runtime_cell("timeout", 0.0), "t-o");
        assert_eq!(runtime_cell("exhausted", 0.0), "fail");
    }
}
