//! Regenerates **Table I**: material parameters of the GSHE switch,
//! including the derived electrical quantities the paper lists.

use gshe_core::device::SwitchParams;

fn main() {
    let p = SwitchParams::table_i();
    let w = &p.write;
    let r = &p.read;
    let hm = &p.heavy_metal;

    println!("TABLE I — MATERIAL PARAMETERS OF THE GSHE SWITCH");
    println!("{:-<78}", "");
    let rows: Vec<(String, String)> = vec![
        (
            "Volume of nanomagnets (NM)".into(),
            format!(
                "({:.0} x {:.0} x {:.0}) nm^3",
                w.length * 1e9,
                w.width * 1e9,
                w.thickness * 1e9
            ),
        ),
        (
            "Saturation magnetization Ms of NM".into(),
            format!("{:.0e} A/m (W-NM), {:.0e} A/m (R-NM)", w.ms, r.ms),
        ),
        (
            "Uniaxial energy density Ku of NM".into(),
            format!("{:.1e} J/m^3 (W-NM), {:.0e} J/m^3 (R-NM)", w.ku, r.ku),
        ),
        ("Spin current IS, determ. switching".into(), "20 uA".into()),
        (
            "Resistance area product RAP".into(),
            format!("{:.0} Ohm um^2", p.rap * 1e12),
        ),
        (
            "Tunneling magnetoresistance TMR".into(),
            format!("{:.0}%", p.tmr * 100.0),
        ),
        (
            "Parallel conductance GP".into(),
            format!("{:.0} uS", p.g_parallel() * 1e6),
        ),
        (
            "Anti-parallel conductance GAP".into(),
            format!("{:.1} uS", p.g_antiparallel() * 1e6),
        ),
        (
            "Resistivity of heavy metal (HM) rho".into(),
            format!("{:.1e} Ohm-m", hm.resistivity),
        ),
        (
            "Spin-Hall angle thetaSH of HM".into(),
            format!("{}", hm.spin_hall_angle),
        ),
        (
            "Thickness tHM of HM".into(),
            format!("{:.0} nm", hm.thickness * 1e9),
        ),
        (
            "Internal gain beta of HM".into(),
            format!(
                "thetaSH x (wNM/tHM) = {} x {} = {}",
                hm.spin_hall_angle,
                (w.width / hm.thickness).round() as i64,
                p.beta()
            ),
        ),
        (
            "Resistance r of HM".into(),
            format!("~ {:.0} kOhm", hm.resistance() / 1e3),
        ),
    ];
    for (k, v) in rows {
        println!("{k:<42} {v}");
    }
    println!("{:-<78}", "");
    println!(
        "derived: layout area = {:.4} um^2 (paper: 0.0016 um^2)",
        p.layout_area() * 1e12
    );
    println!(
        "derived: thermal stability  W-NM delta = {:.2} kT, R-NM delta = {:.2} kT (300 K)",
        w.thermal_stability(300.0),
        r.thermal_stability(300.0)
    );
}
