//! Searches for the cheapest error profile that still defeats the spec'd
//! attacks — the defender's inverse problem — and prints the Pareto front
//! (noisy-switch count & mean rate vs. attack success).
//!
//! Usage:
//!
//! ```text
//! profile-search --spec FILE.toml [--out PREFIX] [--deterministic]
//! profile-search [--benchmark ex1010] [--scale N] [--level PCT]
//!                [--scheme gshe16] [--attacks sat,appsat]
//!                [--rotation-period N] [--clock-periods-ns 0.8,2,6]
//!                [--trials N] [--generations N] [--lambda N]
//!                [--target-success FRAC] [--seed N] [--timeout SECS]
//!                [--threads N] [--cache-cap N] [--dip-batch N]
//!                [--out PREFIX] [--deterministic]
//! ```
//!
//! `--rotation-period N` (> 0) searches the **combined**-defense frontier:
//! the cheapest noise given that rotation budget. `--out PREFIX` writes
//! `PREFIX.json` and `PREFIX.csv`. `--deterministic` prints the
//! timing-free JSON (byte-identical across thread counts) instead of the
//! human table.
//!
//! `--spec` is applied first; every other flag overrides the spec file's
//! value regardless of where it appears on the command line.

use gshe_core::campaign::search::{ProfileSearch, SearchReport, SearchSpec, SEARCH_KEYS};
use gshe_core::campaign::{valid_attack_names, valid_scheme_names, EvalSession};
use gshe_core::prelude::AttackKind;
use std::time::Duration;

/// Prints `error: <msg>` and exits with status 2 (CLI misuse / bad spec).
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn print_help() {
    println!(
        "\
Hill-climbs / (1+lambda)-evolves per-switch error-rate profiles toward the
cheapest defense that still defeats the attacks, and prints the Pareto front.

USAGE:
  profile-search --spec FILE.toml [--out PREFIX] [--deterministic]
  profile-search [SEARCH FLAGS] [--out PREFIX] [--deterministic]

SEARCH FLAGS (each overrides the spec file's value):
  --benchmark NAME       benchmark under defense
  --scale N              benchmark scale divisor
  --level PCT            protection level in percent
  --scheme NAME          {schemes}
  --attacks x,y          {attacks}
  --rotation-period N    0 = noise-only frontier; N > 0 searches the
                         combined-defense frontier under that rotation
                         budget
  --clock-periods-ns 0.8,2,6  physics seed points for generation 0
  --trials N             attack trials per (candidate, attack)
  --generations N        mutation generations after the physics seeds
  --lambda N             offspring per generation
  --target-success FRAC  highest attacker success rate a winner may show
  --seed N               master seed (the whole search replays from it)
  --timeout SECS         wall-clock budget per attack trial
  --threads N            workers (0 = available parallelism)
  --cache-cap N          oracle-cache entry cap (0 = unbounded)
  --dip-batch N          DIP batch width scoring runs at

OUTPUT:
  --out PREFIX           write PREFIX.json and PREFIX.csv
  --trace-out FILE       enable instrumentation and write a Chrome
                         trace-event JSON (chrome://tracing / Perfetto)
  --metrics-out FILE     enable instrumentation and write a metrics
                         snapshot (counters + histogram buckets) as JSON
  --deterministic        print timing-free JSON (byte-identical across
                         thread counts) instead of the human table

Spec files use `key = value` TOML lines with these keys:
  {keys}",
        schemes = valid_scheme_names(),
        attacks = valid_attack_names(),
        keys = SEARCH_KEYS.join(", "),
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = SearchSpec::default();
    let mut out_prefix: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut deterministic = false;

    // Load the spec file first (wherever --spec appears) so explicit flags
    // always override it, independent of argument order.
    if let Some(pos) = argv.iter().position(|a| a == "--spec") {
        let value = argv
            .get(pos + 1)
            .unwrap_or_else(|| fail("missing value for --spec; see --help for usage"));
        let text = std::fs::read_to_string(value)
            .unwrap_or_else(|e| fail(&format!("cannot read spec `{value}`: {e}")));
        spec = SearchSpec::parse_toml(&text)
            .unwrap_or_else(|e| fail(&format!("bad spec `{value}`: {e}")));
    }

    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        if key == "--help" || key == "-h" {
            print_help();
            return;
        }
        if key == "--deterministic" {
            deterministic = true;
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .unwrap_or_else(|| fail(&format!("missing value for {key}; see --help for usage")))
            .clone();
        match key {
            "--spec" => {} // handled in the pre-pass above
            "--benchmark" => spec.benchmark = value,
            "--scale" => {
                spec.scale = value
                    .parse()
                    .unwrap_or_else(|_| fail("--scale takes an integer"))
            }
            "--level" => {
                spec.level = value
                    .parse::<f64>()
                    .unwrap_or_else(|_| fail("--level takes a percent, e.g. 15"))
                    / 100.0
            }
            "--scheme" => {
                spec.scheme = gshe_core::campaign::parse_scheme(&value).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown scheme `{value}` (valid: {})",
                        valid_scheme_names()
                    ))
                })
            }
            "--attacks" => {
                spec.attacks = value
                    .split(',')
                    .map(|n| {
                        AttackKind::parse(n).unwrap_or_else(|| {
                            fail(&format!(
                                "unknown attack `{n}` (valid: {})",
                                valid_attack_names()
                            ))
                        })
                    })
                    .collect()
            }
            "--rotation-period" => {
                spec.rotation_period = value
                    .parse()
                    .unwrap_or_else(|_| fail("--rotation-period takes an integer"))
            }
            "--clock-periods-ns" => {
                spec.clock_periods_ns = value
                    .split(',')
                    .map(|v| {
                        let ns: f64 = v.parse().unwrap_or_else(|_| {
                            fail("--clock-periods-ns takes positive nanoseconds, e.g. 0.8,2,6")
                        });
                        if !gshe_core::campaign::physical::is_valid_clock_period(ns) {
                            fail("--clock-periods-ns takes positive nanoseconds, e.g. 0.8,2,6");
                        }
                        ns
                    })
                    .collect()
            }
            "--trials" => {
                spec.trials = value
                    .parse()
                    .unwrap_or_else(|_| fail("--trials takes an integer"))
            }
            "--generations" => {
                spec.generations = value
                    .parse()
                    .unwrap_or_else(|_| fail("--generations takes an integer"))
            }
            "--lambda" => {
                spec.lambda = value
                    .parse()
                    .unwrap_or_else(|_| fail("--lambda takes an integer"))
            }
            "--target-success" => {
                spec.target_success = value
                    .parse()
                    .unwrap_or_else(|_| fail("--target-success takes a fraction"))
            }
            "--seed" => {
                spec.seed = value
                    .parse()
                    .unwrap_or_else(|_| fail("--seed takes an integer"))
            }
            "--timeout" => {
                spec.timeout = Duration::from_secs(
                    value
                        .parse()
                        .unwrap_or_else(|_| fail("--timeout takes seconds")),
                )
            }
            "--threads" => {
                spec.threads = value
                    .parse()
                    .unwrap_or_else(|_| fail("--threads takes an integer"))
            }
            "--cache-cap" => {
                spec.cache_cap = value
                    .parse()
                    .unwrap_or_else(|_| fail("--cache-cap takes an integer (0 = unbounded)"))
            }
            "--dip-batch" => {
                spec.dip_batch = value
                    .parse()
                    .unwrap_or_else(|_| fail("--dip-batch takes an integer"))
            }
            "--out" => out_prefix = Some(value),
            "--trace-out" => trace_out = Some(value),
            "--metrics-out" => metrics_out = Some(value),
            other => fail(&format!(
                "unknown option `{other}` (run `profile-search --help` for the flag list)"
            )),
        }
        i += 2;
    }

    // Flip the instrumentation switch before any scoring work runs.
    if trace_out.is_some() {
        gshe_core::obs::enable_tracing();
    } else if metrics_out.is_some() {
        gshe_core::obs::enable();
    }

    let session = EvalSession::with_cache_cap(spec.threads, spec.cache_cap);
    let search = ProfileSearch::new(&session, spec)
        .unwrap_or_else(|e| fail(&format!("search setup failed: {e}")));
    let report = search.run();

    if let Some(prefix) = &out_prefix {
        std::fs::write(format!("{prefix}.json"), report.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {prefix}.json: {e}")));
        std::fs::write(format!("{prefix}.csv"), report.to_csv())
            .unwrap_or_else(|e| fail(&format!("cannot write {prefix}.csv: {e}")));
        eprintln!("wrote {prefix}.json and {prefix}.csv");
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, gshe_core::obs::trace_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &metrics_out {
        std::fs::write(path, gshe_core::obs::metrics_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote metrics snapshot to {path}");
    }

    if deterministic {
        println!("{}", report.deterministic_json());
        return;
    }

    print_human(&report);
}

fn print_human(report: &SearchReport) {
    let spec = &report.spec;
    println!(
        "PROFILE SEARCH `{}` — {} candidates scored on {} threads in {:.1}s wall",
        spec.name,
        report.evaluated.len(),
        report.threads,
        report.wall_time.as_secs_f64(),
    );
    println!(
        "defense: {} x1/{} · {} @ {:.0}% · attacks {} · {}",
        spec.benchmark,
        spec.scale,
        gshe_core::campaign::scheme_name(spec.scheme),
        spec.level * 100.0,
        spec.attacks
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(","),
        if spec.rotation_period == 0 {
            "noise-only frontier".to_string()
        } else {
            format!(
                "combined frontier (rotation period {})",
                spec.rotation_period
            )
        },
    );
    let (hits, misses, entries, evictions, cap) = report.cache;
    println!(
        "oracle cache: {} hits / {} misses / {} entries ({}, {} evictions)",
        hits,
        misses,
        entries,
        if cap == u64::MAX {
            "unbounded".to_string()
        } else {
            format!("cap {cap}")
        },
        evictions,
    );
    println!();
    println!("PARETO FRONT (cheapest winning profiles, front-first):");
    println!("        gen switches mean-rate success%   queries  origin");
    println!("  {:-<100}", "");
    let front_set = &report.front;
    for &i in front_set {
        print_row(&report.evaluated[i], true);
    }
    for (i, row) in report.evaluated.iter().enumerate() {
        if !front_set.contains(&i) {
            print_row(row, false);
        }
    }
}

fn print_row(row: &gshe_core::campaign::ScoredCandidate, on_front: bool) {
    println!(
        "  {:<5} {:>3} {:>8} {:>9.4} {:>7.0}% {:>9.1}  {}",
        if on_front {
            "FRONT"
        } else if row.wins {
            "win"
        } else {
            "lose"
        },
        row.generation,
        row.noisy_switches,
        row.mean_rate,
        row.success_rate * 100.0,
        row.mean_queries,
        row.candidate.origin,
    );
}
