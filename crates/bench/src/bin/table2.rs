//! Regenerates **Table II**: comparison of emerging-device security
//! primitives. Literature rows are constants; the "This work" row is
//! computed live from the device model — power/energy from the read-out
//! circuit, delay from an sLLGS Monte Carlo run as a campaign device job.

use gshe_bench::HarnessArgs;
use gshe_core::campaign::{Campaign, CampaignSpec, JobKind, JobSpec};
use gshe_core::device::characterize::{
    format_metrics_row, this_work_metrics, EMERGING_DEVICE_TABLE, NOMINAL_DELAY,
};
use gshe_core::device::SwitchParams;

fn main() {
    let args = HarnessArgs::parse();
    let params = SwitchParams::table_i();
    let samples = args.samples.min(4000);

    // One Monte Carlo delay measurement, run through the campaign engine
    // (same sample seeding as a standalone `measured_mean_delay` call).
    let jobs = vec![JobSpec {
        kind: JobKind::DeviceDelay {
            i_s: 20e-6,
            samples,
            seed: args.seed,
        },
        timeout: args.timeout,
    }];
    let spec = CampaignSpec {
        name: "table2".to_string(),
        seed: args.seed,
        threads: args.threads,
        ..Default::default()
    };
    let report = Campaign::run_jobs(&spec, jobs).expect("table2 campaign");
    let measured = report.device[0].value;

    println!("TABLE II — COMPARISON OF SELECTED EMERGING-DEVICE PRIMITIVES");
    println!(
        "{:<10} {:<36} {:>2}  {:>12}  {:>12}  {:>10}",
        "Publ.", "Primitive", "#F", "Energy", "Power", "Delay"
    );
    println!("{:-<92}", "");
    for row in EMERGING_DEVICE_TABLE {
        println!("{}", format_metrics_row(row));
    }
    let nominal = this_work_metrics(&params, NOMINAL_DELAY);
    println!("{}   (paper row)", format_metrics_row(&nominal));

    let ours = this_work_metrics(&params, measured);
    println!(
        "{}   (measured, {} MC samples)",
        format_metrics_row(&ours),
        samples
    );
    println!("{:-<92}", "");
    println!(
        "shape check: ours cloaks {}x the functions of the best prior primitive \
         at the lowest reported power",
        ours.functions
            / EMERGING_DEVICE_TABLE
                .iter()
                .map(|m| m.functions)
                .max()
                .unwrap_or(1)
    );
}
