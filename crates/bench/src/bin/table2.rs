//! Regenerates **Table II**: comparison of emerging-device security
//! primitives. Literature rows are constants; the "This work" row is
//! computed live from the device model — power/energy from the read-out
//! circuit, delay from the sLLGS Monte Carlo.

use gshe_bench::HarnessArgs;
use gshe_core::device::characterize::{
    format_metrics_row, measured_mean_delay, this_work_metrics, EMERGING_DEVICE_TABLE,
    NOMINAL_DELAY,
};
use gshe_core::device::SwitchParams;

fn main() {
    let args = HarnessArgs::parse();
    let params = SwitchParams::table_i();

    println!("TABLE II — COMPARISON OF SELECTED EMERGING-DEVICE PRIMITIVES");
    println!(
        "{:<10} {:<36} {:>2}  {:>12}  {:>12}  {:>10}",
        "Publ.", "Primitive", "#F", "Energy", "Power", "Delay"
    );
    println!("{:-<92}", "");
    for row in EMERGING_DEVICE_TABLE {
        println!("{}", format_metrics_row(row));
    }
    let nominal = this_work_metrics(&params, NOMINAL_DELAY);
    println!("{}   (paper row)", format_metrics_row(&nominal));

    let measured = measured_mean_delay(&params, 20e-6, args.samples.min(4000), args.seed);
    let ours = this_work_metrics(&params, measured);
    println!("{}   (measured, {} MC samples)", format_metrics_row(&ours), args.samples.min(4000));
    println!("{:-<92}", "");
    println!(
        "shape check: ours cloaks {}x the functions of the best prior primitive \
         at the lowest reported power",
        ours.functions / EMERGING_DEVICE_TABLE.iter().map(|m| m.functions).max().unwrap_or(1)
    );
}
