//! Regenerates **Fig. 6**: path-delay distributions of the IBM superblue
//! circuits — biased profiles where most paths are short and few carry the
//! dominant, critical delays (crosses in the paper).

use gshe_bench::{bar_line, HarnessArgs};
use gshe_core::logic::suites::{benchmark_scaled, spec};
use gshe_core::timing::{path_delay_histogram, DelayModel};

fn main() {
    let args = HarnessArgs::parse();
    let model = DelayModel::cmos_45nm();
    println!(
        "FIG. 6 — PATH-DELAY DISTRIBUTIONS OF SELECTED IBM SUPERBLUE CIRCUITS (scale 1/{})",
        args.scale
    );
    for name in ["sb1", "sb5", "sb10", "sb12", "sb18"] {
        if !args.only.is_empty() && name != args.only {
            continue;
        }
        let nl = benchmark_scaled(spec(name).expect("spec"), args.scale, args.seed);
        let delays = model.node_delays(&nl);
        let h = path_delay_histogram(&nl, &delays, 60, 0.5e-9);
        let total = h.total_paths();
        println!(
            "\n{name}: {} gates, {:.3e} PI->PO paths, critical ~ {:.1} ns, median {:.1} ns",
            nl.gate_count(),
            total,
            h.max_delay() * 1e9,
            h.quantile(0.5) * 1e9
        );
        let max = h.counts.iter().cloned().fold(0.0, f64::max);
        for (delay, count) in h.series() {
            if count > 0.0 {
                let marker = if delay > 0.9 * h.max_delay() {
                    " x (critical tail)"
                } else {
                    ""
                };
                println!(
                    "{}{}",
                    bar_line(&format!("{:.1} ns", delay * 1e9), count, max, 48),
                    marker
                );
            }
        }
    }
    println!("\npaper shape: strongly biased distributions — most paths short, few");
    println!("paths carrying the dominant critical delays (marked x).");
}
