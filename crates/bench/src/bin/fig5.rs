//! Regenerates **Fig. 5**: all 16 Boolean functions from one primitive —
//! each function's terminal configuration, verified both behaviorally and
//! through the device-level (sLLGS) evaluation path.

use gshe_core::logic::Bf2;
use gshe_core::{GsheConfig, GshePrimitive};

fn main() {
    println!("FIG. 5 — ALL 16 BOOLEAN FUNCTIONS FROM THE GSHE PRIMITIVE");
    println!(
        "{:<12} {:<22} {:<28} {:>9} {:>8}",
        "Function", "Input currents", "Read mode", "TT", "device"
    );
    println!("{:-<84}", "");
    for f in Bf2::ALL {
        let cfg = GsheConfig::for_function(f);
        // Behavioral check.
        assert_eq!(cfg.function(), f, "behavioral mismatch for {f}");
        // Device-level check across all four rows.
        let mut prim = GshePrimitive::new(cfg);
        let mut ok = true;
        for row in 0..4u8 {
            let a = row & 1 == 1;
            let b = row & 2 == 2;
            ok &= prim.evaluate_device(a, b) == f.eval(a, b);
        }
        println!(
            "{:<12} [{:<3} {:<3} {:<3}]          {:<28} {:>#06b} {:>8}",
            f.name(),
            cfg.currents[0].to_string(),
            cfg.currents[1].to_string(),
            cfg.currents[2].to_string(),
            format!("{:?}", cfg.read),
            f.truth_table(),
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    println!("{:-<84}", "");
    println!("every row verified through current summation -> sLLGS write ->");
    println!("dipolar R-NM flip -> resistive read-out (see gshe-core::primitive).");
}
