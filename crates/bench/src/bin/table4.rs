//! Regenerates **Table IV**: SAT-attack runtimes for all seven schemes ×
//! protection levels × benchmarks — now driven by the campaign engine,
//! which runs the whole grid through a work-stealing pool with a shared
//! oracle cache instead of a single-threaded loop.
//!
//! The paper's fairness protocol is respected: for each benchmark, gates
//! are selected once (seeded), memorized, and reapplied across every
//! scheme — the job list pins one selection seed per (benchmark, level).
//! Runtimes are wall-clock seconds; `t-o` marks the configured timeout
//! (the paper used 48 h on a Xeon; default here is 60 s on scaled
//! netlists — the *ordering* across schemes/levels is the reproduced
//! artifact, per DESIGN.md substitution 3).
//!
//! Usage: `table4 [--scale N] [--timeout SECS] [--seed N] [--only BENCH]
//! [--threads N]`

use gshe_bench::{runtime_cell, HarnessArgs};
use gshe_core::campaign::{
    AttackSeeds, Campaign, CampaignSpec, JobKind, JobSpec, JobStatus, NoiseShape,
};
use gshe_core::logic::Topology;
use gshe_core::prelude::{AttackKind, CamoScheme};

const BENCHES: [&str; 7] = [
    "aes_core",
    "b14",
    "b21",
    "c7552",
    "ex1010",
    "log2",
    "pci_bridge32",
];

fn main() {
    let args = HarnessArgs::parse();

    // Build the job grid with the historical seed derivation: one gate
    // selection per (benchmark, level), shared by every scheme.
    let mut jobs = Vec::new();
    for name in BENCHES {
        if !args.only.is_empty() && name != args.only {
            continue;
        }
        for &level in &args.levels {
            let select = args.seed ^ (level * 1000.0) as u64;
            for scheme in CamoScheme::ALL {
                jobs.push(JobSpec {
                    kind: JobKind::Attack {
                        benchmark: name.to_string(),
                        topology: Topology::Uniform,
                        scheme,
                        level,
                        attack: AttackKind::Sat,
                        error_rate: 0.0,
                        clock_ns: 0.0,
                        profile: NoiseShape::Uniform,
                        rotation_period: 0,
                        trial: 0,
                        seeds: AttackSeeds {
                            select,
                            transform: args.seed,
                            oracle: args.seed,
                        },
                    },
                    timeout: args.timeout,
                });
            }
        }
    }

    let spec = CampaignSpec {
        name: "table4".to_string(),
        scale: args.scale,
        seed: args.seed,
        timeout: args.timeout,
        threads: args.threads,
        ..Default::default()
    };
    let report = Campaign::run_jobs(&spec, jobs).expect("table4 campaign");

    println!(
        "TABLE IV — SAT-ATTACK RUNTIME (seconds; t-o = {}s; scale 1/{}; {} threads)",
        args.timeout.as_secs(),
        args.scale,
        report.threads,
    );
    let header: Vec<String> = CamoScheme::ALL.iter().map(|s| s.to_string()).collect();
    println!("{:<14} {:>5}  {}", "Benchmark", "prot", header.join("  "));
    println!("{:-<120}", "");

    for name in BENCHES {
        if !args.only.is_empty() && name != args.only {
            continue;
        }
        for &level in &args.levels {
            let mut cells: Vec<String> = Vec::new();
            for scheme in CamoScheme::ALL {
                for result in report.cell_results(name, scheme, level) {
                    let status = match result.status {
                        JobStatus::Completed => "success",
                        JobStatus::TimedOut => "timeout",
                        JobStatus::Inconsistent => "inconsistent",
                        JobStatus::Exhausted => "exhausted",
                        JobStatus::Failed => {
                            cells.push(format!("err:{}", result.error.as_deref().unwrap_or("?")));
                            continue;
                        }
                    };
                    cells.push(format!(
                        "{:>8}",
                        runtime_cell(status, result.elapsed.as_secs_f64())
                    ));
                }
            }
            println!("{:<14} {:>4.0}%  {}", name, level * 100.0, cells.join("  "));
        }
    }
    println!("{:-<120}", "");
    println!(
        "columns: {}",
        CamoScheme::ALL.map(|s| format!("{s}")).join(" | ")
    );
    println!("expected shape: runtime grows left-to-right (more cloaked functions)");
    println!("and top-to-bottom within a benchmark (more gates protected);");
    println!("the all-16 GSHE column saturates to t-o first.");
    let (hits, misses) = (report.cache_hits, report.cache_misses);
    println!(
        "campaign: {} jobs in {:.1}s wall; oracle cache {hits} hits / {misses} misses",
        report.results.len(),
        report.wall_time.as_secs_f64(),
    );
}
