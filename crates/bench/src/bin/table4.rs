//! Regenerates **Table IV**: SAT-attack runtimes for all seven schemes ×
//! protection levels × benchmarks.
//!
//! The paper's fairness protocol is respected: for each benchmark, gates
//! are selected once (seeded), memorized, and reapplied across every
//! scheme. Runtimes are wall-clock seconds; `t-o` marks the configured
//! timeout (the paper used 48 h on a Xeon; default here is 60 s on scaled
//! netlists — the *ordering* across schemes/levels is the reproduced
//! artifact, per DESIGN.md substitution 3).
//!
//! Usage: `table4 [--scale N] [--timeout SECS] [--seed N] [--only BENCH]`

use gshe_bench::{runtime_cell, HarnessArgs};
use gshe_core::attacks::{sat_attack, AttackConfig, AttackStatus, NetlistOracle};
use gshe_core::camo::{camouflage, select_gates, CamoScheme};
use gshe_core::logic::suites::{benchmark_scaled, spec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BENCHES: [&str; 7] =
    ["aes_core", "b14", "b21", "c7552", "ex1010", "log2", "pci_bridge32"];

fn main() {
    let args = HarnessArgs::parse();
    let config = AttackConfig {
        timeout: args.timeout,
        ..Default::default()
    };

    println!(
        "TABLE IV — SAT-ATTACK RUNTIME (seconds; t-o = {}s; scale 1/{})",
        args.timeout.as_secs(),
        args.scale
    );
    let header: Vec<String> = CamoScheme::ALL.iter().map(|s| s.to_string()).collect();
    println!("{:<14} {:>5}  {}", "Benchmark", "prot", header.join("  "));
    println!("{:-<120}", "");

    for name in BENCHES {
        if !args.only.is_empty() && name != args.only {
            continue;
        }
        let spec = spec(name).expect("benchmark spec exists");
        let nl = benchmark_scaled(spec, args.scale, args.seed);
        for &level in &args.levels {
            // Memorized selection: one pick set per (benchmark, level).
            let picks = select_gates(&nl, level, args.seed ^ (level * 1000.0) as u64);
            let mut cells: Vec<String> = Vec::new();
            for scheme in CamoScheme::ALL {
                let mut rng = StdRng::seed_from_u64(args.seed);
                let keyed = match camouflage(&nl, &picks, scheme, &mut rng) {
                    Ok(k) => k,
                    Err(e) => {
                        cells.push(format!("err:{e}"));
                        continue;
                    }
                };
                let mut oracle = NetlistOracle::new(&nl);
                let out = sat_attack(&keyed, &mut oracle, &config);
                let status = match out.status {
                    AttackStatus::Success => "success",
                    AttackStatus::Timeout => "timeout",
                    AttackStatus::Inconsistent => "inconsistent",
                    AttackStatus::ResourceExhausted => "exhausted",
                };
                cells.push(format!(
                    "{:>8}",
                    runtime_cell(status, out.elapsed.as_secs_f64())
                ));
            }
            println!(
                "{:<14} {:>4.0}%  {}",
                name,
                level * 100.0,
                cells.join("  ")
            );
        }
    }
    println!("{:-<120}", "");
    println!("columns: {}", CamoScheme::ALL.map(|s| format!("{s}")).join(" | "));
    println!("expected shape: runtime grows left-to-right (more cloaked functions)");
    println!("and top-to-bottom within a benchmark (more gates protected);");
    println!("the all-16 GSHE column saturates to t-o first.");
}
