//! Regenerates **Fig. 2**: the current-centric truth tables for the NAND
//! and NOR configurations (inputs A, B; X the tie-breaking control).

use gshe_core::logic::Bf2;
use gshe_core::GsheConfig;

fn main() {
    println!("FIG. 2 — CURRENT-CENTRIC TRUTH TABLES (logic 1/0 = +I/-I)");
    for f in [Bf2::NAND, Bf2::NOR] {
        let cfg = GsheConfig::for_function(f);
        println!(
            "\n{f}: wires = [{} {} {}]",
            cfg.currents[0], cfg.currents[1], cfg.currents[2]
        );
        for row in cfg.current_truth_table() {
            println!("  {row}");
        }
    }
}
