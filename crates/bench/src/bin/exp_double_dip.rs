//! Regenerates the **Sec. V-A Double DIP comparison** \[12\]: the same
//! Table IV setup attacked with Double DIP takes longer across benchmarks
//! (paper: aes_core at 10% with our primitive, ~7 h with \[8\] vs ~15 h with
//! \[12\]), while needing no more oracle queries per eliminated key.

use gshe_bench::{runtime_cell, HarnessArgs};
use gshe_core::attacks::{
    double_dip_attack, sat_attack, AttackConfig, AttackStatus, NetlistOracle,
};
use gshe_core::camo::{camouflage, select_gates, CamoScheme};
use gshe_core::logic::suites::{benchmark_scaled, spec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse();
    let config = AttackConfig {
        timeout: args.timeout,
        ..Default::default()
    };
    println!(
        "SEC. V-A — DOUBLE DIP [12] vs SAT ATTACK [8] (10% protection, ours; scale 1/{})",
        args.scale
    );
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10}",
        "Benchmark", "[8] time", "[12] time", "[8] DIPs", "[12] DIPs"
    );
    println!("{:-<64}", "");
    for name in ["c7552", "ex1010", "b14", "aes_core"] {
        if !args.only.is_empty() && name != args.only {
            continue;
        }
        let nl = benchmark_scaled(spec(name).expect("spec"), args.scale, args.seed);
        let picks = select_gates(&nl, 0.10, args.seed ^ 100);
        let mut rng = StdRng::seed_from_u64(args.seed);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).expect("all-16");

        let mut o1 = NetlistOracle::new(&nl);
        let sat = sat_attack(&keyed, &mut o1, &config);
        let mut o2 = NetlistOracle::new(&nl);
        let dd = double_dip_attack(&keyed, &mut o2, &config);
        let cell = |s: &gshe_core::attacks::AttackOutcome| {
            let status = match s.status {
                AttackStatus::Success => "success",
                AttackStatus::Timeout => "timeout",
                _ => "fail",
            };
            runtime_cell(status, s.elapsed.as_secs_f64())
        };
        println!(
            "{:<14} {:>12} {:>12} {:>10} {:>10}",
            name,
            cell(&sat),
            cell(&dd),
            sat.iterations,
            dd.iterations
        );
    }
    println!("{:-<64}", "");
    println!("paper shape: [12] runtimes are higher on average across benchmarks;");
    println!("each Double DIP rules out at least two incorrect keys, so its");
    println!("iteration count does not exceed the plain attack's.");
}
