//! Regenerates **Table III**: characteristics of the synthesized
//! benchmarks. The paper-reported interface/gate counts come from the spec
//! table; the harness also instantiates each circuit at the working scale
//! used by the Table IV attacks and prints the resulting statistics.

use gshe_bench::HarnessArgs;
use gshe_core::logic::suites::{benchmark_scaled, S38584, TABLE_III};
use gshe_core::logic::NetlistStats;

fn main() {
    let args = HarnessArgs::parse();
    println!("TABLE III — CHARACTERISTICS OF SYNTHESIZED BENCHMARKS");
    println!("(italics = EPFL suite, bold = IBM superblue; both marked in the Suite column)");
    println!(
        "{:<14} {:>8} {:>8} {:>10}   {:<10} | scaled (1/{}): {:>6} {:>6} {:>8} {:>6}",
        "Benchmark",
        "Inputs",
        "Outputs",
        "Gates",
        "Suite",
        args.scale,
        "PI",
        "PO",
        "Gates",
        "Depth"
    );
    println!("{:-<100}", "");
    for spec in TABLE_III.iter().chain(std::iter::once(&S38584)) {
        if !args.only.is_empty() && spec.name != args.only {
            continue;
        }
        let nl = benchmark_scaled(spec, args.scale, args.seed);
        let s = NetlistStats::compute(&nl);
        println!(
            "{:<14} {:>8} {:>8} {:>10}   {:<10} | {:>21} {:>6} {:>8} {:>6}",
            spec.name,
            spec.inputs,
            spec.outputs,
            spec.gates,
            format!("{:?}", spec.suite),
            s.inputs,
            s.outputs,
            s.gates,
            s.depth
        );
    }
}
