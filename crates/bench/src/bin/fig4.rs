//! Regenerates **Fig. 4**: switching-delay distributions at I_S = 20, 60
//! and 100 uA from sLLGS Monte Carlo (paper: 100,000 samples; default here
//! 2,000 — pass `--samples 100000` for the paper-scale run).

use gshe_bench::{bar_line, HarnessArgs};
use gshe_core::device::{DelayHistogram, MonteCarlo, MonteCarloConfig, SwitchParams};

fn main() {
    let args = HarnessArgs::parse();
    let mc = MonteCarlo::new(MonteCarloConfig {
        params: SwitchParams::table_i(),
        samples: args.samples,
        seed: args.seed,
        threads: 0,
    });

    println!(
        "FIG. 4 — DELAY DISTRIBUTIONS AT VARIOUS SPIN CURRENTS ({} samples each)",
        args.samples
    );
    for i_s in [20e-6, 60e-6, 100e-6] {
        let samples = mc.run(i_s);
        let h = DelayHistogram::from_samples(&samples, 30, 6e-9);
        println!(
            "\nI_S = {:>3.0} uA   mean = {:.3} ns   std = {:.3} ns   p95 = {:.2} ns   timeouts = {:.2}%",
            i_s * 1e6,
            h.mean * 1e9,
            h.std_dev * 1e9,
            h.quantile(0.95) * 1e9,
            h.timeout_fraction * 100.0
        );
        let max = h.fractions.iter().cloned().fold(0.0, f64::max);
        for (edge, frac) in h.bin_edges.iter().zip(&h.fractions) {
            if *frac > 0.0005 {
                println!(
                    "{}",
                    bar_line(&format!("{:.1} ns", edge * 1e9), *frac, max, 48)
                );
            }
        }
    }
    println!("\npaper shape: mean 1.55 ns at 20 uA; spread and mean diminish as I_S");
    println!("grows (at the cost of higher write power); switching remains");
    println!("deterministic (no timeouts) at I_S >= 20 uA.");
}
