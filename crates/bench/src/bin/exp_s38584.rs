//! Regenerates the **Sec. II in-text experiment**: the s38584 benchmark
//! protected with the cost-limited STT-LUT scheme of Winograd et al. \[25\]
//! "can be decamouflaged in less than 30 seconds on average (over 100 runs
//! of camouflaging and SAT attacks)". The weakness stems from the *limited*
//! use of the primitive to curb PPA overheads.

use gshe_bench::HarnessArgs;
use gshe_core::attacks::{sat_attack, verify_key, AttackConfig, AttackStatus, NetlistOracle};
use gshe_core::camo::{camouflage, select_gates, CamoScheme};
use gshe_core::logic::suites::{benchmark_scaled, S38584};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse();
    // Cost-limited protection: [25] replaces only a small share of gates
    // (about 1.5% here) to curb PPA overheads.
    let fraction = 0.015;
    let runs = args.samples.clamp(10, 100) as u64;
    let nl = benchmark_scaled(&S38584, args.scale, args.seed);
    let config = AttackConfig {
        timeout: args.timeout,
        ..Default::default()
    };

    println!(
        "SEC. II EXPERIMENT — s38584 under cost-limited STT-LUT [25] ({}% of {} gates, {} runs)",
        fraction * 100.0,
        nl.gate_count(),
        runs
    );
    let mut total = 0.0;
    let mut max = 0.0f64;
    let mut solved = 0u64;
    for run in 0..runs {
        let picks = select_gates(&nl, fraction, args.seed ^ run);
        let mut rng = StdRng::seed_from_u64(args.seed ^ run);
        let keyed = camouflage(&nl, &picks, CamoScheme::ThresholdSttLut, &mut rng)
            .expect("STT-LUT absorbs standard functions");
        let mut oracle = NetlistOracle::new(&nl);
        let out = sat_attack(&keyed, &mut oracle, &config);
        let secs = out.elapsed.as_secs_f64();
        total += secs;
        max = max.max(secs);
        if out.status == AttackStatus::Success {
            let v = verify_key(&nl, &keyed, out.key.as_ref().expect("key on success"))
                .expect("key width");
            assert!(
                v.functionally_equivalent,
                "run {run}: recovered key is wrong"
            );
            solved += 1;
        }
    }
    println!(
        "decamouflaged {solved}/{runs} runs; mean = {:.2} s, max = {:.2} s",
        total / runs as f64,
        max
    );
    println!("paper: < 30 s on average over 100 runs — i.e. the cost-limited");
    println!("application of [25] offers no meaningful SAT resilience.");
}
