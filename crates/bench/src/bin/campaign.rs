//! Runs an arbitrary campaign from a TOML spec file or command-line flags
//! and prints the aggregated table, optionally writing JSON/CSV artifacts.
//!
//! Usage:
//!
//! ```text
//! campaign --spec FILE.toml [--out PREFIX] [--deterministic]
//! campaign [--benchmarks a,b|suite:itc99|all] [--schemes x,y|all]
//!          [--attacks sat,appsat] [--levels 10,20] [--error-rates 0,0.05]
//!          [--clock-periods-ns 0.8,2,6]
//!          [--profiles uniform,output-cone,depth-gradient|all]
//!          [--rotation-periods 0,1,16,64] [--trials N] [--scale N]
//!          [--seed N] [--timeout SECS] [--threads N] [--out PREFIX]
//!          [--deterministic]
//! ```
//!
//! `campaign --help` prints this grid with every valid scheme, attack,
//! profile, and spec-file key name.
//!
//! `--out PREFIX` writes `PREFIX.json` and `PREFIX.csv`. `--deterministic`
//! prints the timing-free JSON (byte-identical across thread counts) to
//! stdout instead of the human table — the determinism acceptance check
//! pipes two runs of this through `diff`.
//!
//! `--spec` is applied first; every other flag overrides the spec file's
//! value regardless of where it appears on the command line.

use gshe_core::campaign::physical::is_valid_clock_period;
use gshe_core::campaign::{
    pool_summary, scheme_name, valid_attack_names, valid_key_names, valid_profile_names,
    valid_scheme_names, CampaignSpec, NoiseShape,
};
use gshe_core::prelude::{AttackKind, CamoScheme};
use std::time::Duration;

/// Prints `error: <msg>` and exits with status 2 (CLI misuse / bad spec).
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Prints usage, including every valid scheme/attack/profile/key name.
fn print_help() {
    println!(
        "\
Runs a protect->attack->measure campaign grid and prints the aggregated table.

USAGE:
  campaign --spec FILE.toml [--out PREFIX] [--deterministic]
  campaign [GRID FLAGS] [--out PREFIX] [--deterministic]

GRID FLAGS (each overrides the spec file's value):
  --benchmarks a,b       benchmark names, suite:<name>, or `all`
  --schemes x,y          {schemes}
  --attacks x,y          {attacks}
  --levels 10,20         protection levels in percent
  --error-rates 0,0.05   oracle per-cell error rates (fractions)
  --clock-periods-ns 0.8,6  physical clock periods (ns) as extra rate
                         sources, derived via the device Monte Carlo
  --profiles x,y         {profiles}
  --rotation-periods 0,16  dynamic-camouflaging periods in queries
                         (0 = static oracle; n > 0 stacks a rotation
                         layer; combined with a nonzero rate it attacks
                         the rotating *and* noisy chip)
  --trials N             repeats per grid cell
  --scale N              benchmark scale divisor
  --topology NAME        generator wiring profile: uniform | local
  --coi-mode MODE        cone-of-influence gating for attacks *and* the
                         cache's cone-keyed entries: auto | auto:<nodes>
                         | on | off
  --sat-simplify MODE    solver pre/inprocessing (variable elimination,
                         subsumption, vivification) plus single-sided
                         miter encoding: auto | auto:<clauses> | on | off
  --seed N               master seed
  --timeout SECS         per-job attack budget
  --threads N            workers (0 = available parallelism)
  --memo-budget-mb MB    streaming memo budget in MiB (fractions allowed;
                         0 = keep every benchmark resident): benchmarks
                         run in chunks whose arenas fit the budget, with
                         per-chunk eviction

RUNTIME:
  --cache-cap N          oracle-cache entry cap (0 = unbounded; a session
                         knob, not a spec-file key)

OUTPUT:
  --out PREFIX           write PREFIX.json and PREFIX.csv
  --trace-out FILE       enable instrumentation and write a Chrome
                         trace-event JSON (chrome://tracing / Perfetto)
  --metrics-out FILE     enable instrumentation and write a metrics
                         snapshot (counters + histogram buckets) as JSON
  --deterministic        print timing-free JSON (byte-identical across
                         thread counts) instead of the human table

Spec files use `key = value` TOML lines with these keys:
  {keys}",
        schemes = valid_scheme_names(),
        attacks = valid_attack_names(),
        profiles = valid_profile_names(),
        keys = valid_key_names(),
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = CampaignSpec {
        name: "campaign".to_string(),
        ..Default::default()
    };
    let mut out_prefix: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut deterministic = false;
    let mut cache_cap: u64 = 0;

    // Load the spec file first (wherever --spec appears) so explicit flags
    // always override it, independent of argument order.
    if let Some(pos) = argv.iter().position(|a| a == "--spec") {
        let value = argv
            .get(pos + 1)
            .unwrap_or_else(|| fail("missing value for --spec; see module docs for usage"));
        let text = std::fs::read_to_string(value)
            .unwrap_or_else(|e| fail(&format!("cannot read spec `{value}`: {e}")));
        spec = CampaignSpec::parse_toml(&text)
            .unwrap_or_else(|e| fail(&format!("bad spec `{value}`: {e}")));
    }

    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        if key == "--help" || key == "-h" {
            print_help();
            return;
        }
        if key == "--deterministic" {
            deterministic = true;
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .unwrap_or_else(|| {
                fail(&format!(
                    "missing value for {key}; see module docs for usage"
                ))
            })
            .clone();
        match key {
            "--spec" => {} // handled in the pre-pass above
            "--benchmarks" => spec.benchmarks = value.split(',').map(str::to_string).collect(),
            "--schemes" => {
                spec.schemes = value
                    .split(',')
                    .flat_map(|n| {
                        if n == "all" {
                            CamoScheme::ALL.to_vec()
                        } else {
                            vec![gshe_core::campaign::parse_scheme(n).unwrap_or_else(|| {
                                fail(&format!(
                                    "unknown scheme `{n}` (valid: {})",
                                    valid_scheme_names()
                                ))
                            })]
                        }
                    })
                    .collect()
            }
            "--attacks" => {
                spec.attacks = value
                    .split(',')
                    .map(|n| {
                        AttackKind::parse(n).unwrap_or_else(|| {
                            fail(&format!(
                                "unknown attack `{n}` (valid: {})",
                                valid_attack_names()
                            ))
                        })
                    })
                    .collect()
            }
            "--levels" => {
                spec.levels = value
                    .split(',')
                    .map(|v| {
                        v.parse::<f64>()
                            .unwrap_or_else(|_| fail("--levels takes percents, e.g. 10,20"))
                            / 100.0
                    })
                    .collect()
            }
            "--error-rates" => {
                spec.error_rates = value
                    .split(',')
                    .map(|v| {
                        v.parse()
                            .unwrap_or_else(|_| fail("--error-rates takes fractions"))
                    })
                    .collect()
            }
            "--profiles" => {
                spec.profiles = value
                    .split(',')
                    .flat_map(|n| {
                        if n == "all" {
                            NoiseShape::ALL.to_vec()
                        } else {
                            vec![NoiseShape::parse(n).unwrap_or_else(|| {
                                fail(&format!(
                                    "unknown profile `{n}` (valid: {})",
                                    valid_profile_names()
                                ))
                            })]
                        }
                    })
                    .collect()
            }
            "--clock-periods-ns" => {
                spec.clock_periods_ns = value
                    .split(',')
                    .map(|v| {
                        let ns: f64 = v.parse().unwrap_or_else(|_| {
                            fail("--clock-periods-ns takes positive nanoseconds, e.g. 0.8,2,6")
                        });
                        if !is_valid_clock_period(ns) {
                            fail("--clock-periods-ns takes positive nanoseconds, e.g. 0.8,2,6");
                        }
                        ns
                    })
                    .collect()
            }
            "--rotation-periods" => {
                spec.rotation_periods = value
                    .split(',')
                    .map(|v| {
                        v.parse().unwrap_or_else(|_| {
                            fail("--rotation-periods takes integers (0 = static oracle)")
                        })
                    })
                    .collect()
            }
            "--trials" => {
                spec.trials = value
                    .parse()
                    .unwrap_or_else(|_| fail("--trials takes an integer"))
            }
            "--scale" => {
                spec.scale = value
                    .parse()
                    .unwrap_or_else(|_| fail("--scale takes an integer"))
            }
            "--topology" => {
                spec.topology = gshe_core::logic::Topology::parse(&value).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown topology `{value}` (valid: uniform, local)"
                    ))
                })
            }
            "--coi-mode" => {
                spec.coi_mode = gshe_core::attacks::CoiMode::parse(&value).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown coi mode `{value}` (valid: auto, auto:<nodes>, on, off)"
                    ))
                })
            }
            "--sat-simplify" => {
                spec.sat_simplify = gshe_core::attacks::SimplifyMode::parse(&value)
                    .unwrap_or_else(|| {
                        fail(&format!(
                            "unknown sat-simplify mode `{value}` (valid: auto, auto:<clauses>, on, off)"
                        ))
                    })
            }
            "--memo-budget-mb" => {
                let mb: f64 = value
                    .parse()
                    .unwrap_or_else(|_| fail("--memo-budget-mb takes MiB (0 = unbounded)"));
                if !(mb.is_finite() && mb >= 0.0) {
                    fail("--memo-budget-mb takes a non-negative number of MiB");
                }
                spec.memo_budget_mb = mb;
            }
            "--seed" => {
                spec.seed = value
                    .parse()
                    .unwrap_or_else(|_| fail("--seed takes an integer"))
            }
            "--timeout" => {
                spec.timeout = Duration::from_secs(
                    value
                        .parse()
                        .unwrap_or_else(|_| fail("--timeout takes seconds")),
                )
            }
            "--threads" => {
                spec.threads = value
                    .parse()
                    .unwrap_or_else(|_| fail("--threads takes an integer"))
            }
            "--cache-cap" => {
                cache_cap = value
                    .parse()
                    .unwrap_or_else(|_| fail("--cache-cap takes an integer (0 = unbounded)"))
            }
            "--out" => out_prefix = Some(value),
            "--trace-out" => trace_out = Some(value),
            "--metrics-out" => metrics_out = Some(value),
            other => fail(&format!(
                "unknown option `{other}` (run `campaign --help` for the flag list)"
            )),
        }
        i += 2;
    }

    // Flip the instrumentation switch before any work runs. Tracing
    // implies metrics (spans feed both); metrics alone skips the
    // per-event trace buffers.
    if trace_out.is_some() {
        gshe_core::obs::enable_tracing();
    } else if metrics_out.is_some() {
        gshe_core::obs::enable();
    }

    let session = gshe_core::campaign::EvalSession::with_cache_cap(spec.threads, cache_cap);
    let report = session
        .run(&spec)
        .unwrap_or_else(|e| fail(&format!("campaign failed: {e}")));

    if let Some(prefix) = &out_prefix {
        std::fs::write(format!("{prefix}.json"), report.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {prefix}.json: {e}")));
        std::fs::write(format!("{prefix}.csv"), report.to_csv())
            .unwrap_or_else(|e| fail(&format!("cannot write {prefix}.csv: {e}")));
        eprintln!("wrote {prefix}.json and {prefix}.csv");
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, gshe_core::obs::trace_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &metrics_out {
        std::fs::write(path, gshe_core::obs::metrics_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote metrics snapshot to {path}");
    }

    if deterministic {
        println!("{}", report.deterministic_json());
        return;
    }

    println!(
        "CAMPAIGN `{}` — {} jobs on {} threads in {:.1}s wall",
        report.name,
        report.results.len(),
        report.threads,
        report.wall_time.as_secs_f64(),
    );
    println!(
        "oracle cache: {} hits / {} misses / {} entries ({}, {} evictions, block-level keys)",
        report.cache_hits,
        report.cache_misses,
        report.cache_entries,
        if session.cache().entry_cap() == u64::MAX {
            "unbounded".to_string()
        } else {
            format!("cap {}", session.cache().entry_cap())
        },
        session.cache().evictions(),
    );
    if report.cone_hits + report.cone_misses > 0 {
        println!(
            "cone-keyed entries: {} hits / {} misses ({} key words vs full-width blocks)",
            report.cone_hits, report.cone_misses, report.cone_key_words,
        );
    }
    if spec.memo_budget_mb > 0.0 {
        println!(
            "streaming memo: peak {:.2} MiB of netlist arenas (budget {} MiB)",
            report.peak_memo_bytes as f64 / (1024.0 * 1024.0),
            spec.memo_budget_mb,
        );
    }
    println!(
        "{:<14} {:>8} {:<10} {:>5} {:>10} {:>8} {:>14} {:>7}  {:>6} {:>8} {:>9} {:>9} {:>8} {:>8} {:>10} {:>9} {:>8} {:>9} {:>8}",
        "benchmark",
        "scheme",
        "attack",
        "prot",
        "error",
        "clock",
        "profile",
        "period",
        "trials",
        "recov%",
        "queries",
        "err-rate",
        "p50 s",
        "p90 s",
        "decisions",
        "conflicts",
        "restarts",
        "elim-vars",
        "simp ms"
    );
    println!("{:-<186}", "");
    for row in &report.rows {
        println!(
            "{:<14} {:>8} {:<10} {:>4.0}% {:>10.4} {:>8} {:>14} {:>7}  {:>6} {:>7.0}% {:>9.1} {:>9} {:>8.2} {:>8.2} {:>10.0} {:>9.0} {:>8.0} {:>9.0} {:>8.2}",
            row.key.benchmark,
            scheme_name(row.key.scheme),
            row.key.attack.name(),
            row.key.level * 100.0,
            row.key.error_rate,
            if row.key.clock_ns == 0.0 {
                "-".to_string()
            } else {
                format!("{}ns", row.key.clock_ns)
            },
            row.key.profile.name(),
            if row.key.rotation_period == 0 {
                "-".to_string()
            } else {
                row.key.rotation_period.to_string()
            },
            row.trials,
            row.key_recovery_rate * 100.0,
            row.mean_queries,
            if row.mean_output_error.is_nan() {
                "-".to_string()
            } else {
                format!("{:.4}", row.mean_output_error)
            },
            row.runtime_p50,
            row.runtime_p90,
            row.mean_decisions,
            row.mean_conflicts,
            row.mean_restarts,
            row.mean_elim_vars,
            row.mean_simplify_ms,
        );
    }
    for row in &report.device {
        println!(
            "device {:<12} i_s={:>6.1}uA t_clk={:>6} samples={:<6} value={:.4e}",
            row.kind,
            row.i_s * 1e6,
            if row.t_clk.is_nan() {
                "-".to_string()
            } else {
                format!("{:.1}ns", row.t_clk * 1e9)
            },
            row.samples,
            row.value,
        );
    }
    let (pool_tasks, pool_steals, utilization) = pool_summary(&report.pool);
    println!(
        "pool: {} workers ran {} tasks ({} stolen), {:.0}% mean utilization",
        report.pool.len(),
        pool_tasks,
        pool_steals,
        utilization * 100.0,
    );
}
