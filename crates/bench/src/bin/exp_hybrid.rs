//! Regenerates the **Sec. V-A hybrid CMOS–GSHE study**: on the IBM
//! superblue circuits, CMOS gates on non-critical paths are replaced with
//! GSHE primitives such that no delay overhead arises (paper: 5–15% of all
//! gates on average), and the resulting camouflaged designs cannot be
//! resolved by SAT attacks within the budget.

use gshe_bench::{runtime_cell, HarnessArgs};
use gshe_core::attacks::{sat_attack, AttackConfig, AttackStatus, NetlistOracle};
use gshe_core::logic::suites::{benchmark_scaled, spec};
use gshe_core::timing::DelayModel;
use gshe_core::{protect_delay_aware, Provisioning};

fn main() {
    let args = HarnessArgs::parse();
    let model = DelayModel::cmos_45nm();
    let config = AttackConfig {
        timeout: args.timeout,
        ..Default::default()
    };
    println!(
        "SEC. V-A — DELAY-AWARE HYBRID CMOS-GSHE PROTECTION (scale 1/{})",
        args.scale
    );
    println!(
        "{:<8} {:>8} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "Bench", "gates", "replaced", "crit before", "crit after", "power dlt", "attack"
    );
    println!("{:-<76}", "");
    let mut fractions = Vec::new();
    for name in ["sb1", "sb5", "sb10", "sb12", "sb18"] {
        if !args.only.is_empty() && name != args.only {
            continue;
        }
        let nl = benchmark_scaled(spec(name).expect("spec"), args.scale, args.seed);
        let (protected, hybrid) = protect_delay_aware(&nl, &model, args.seed).expect("all-16 flow");
        assert_eq!(protected.provisioning, Provisioning::SplitManufacturing);
        fractions.push(hybrid.fraction);

        let mut oracle = NetlistOracle::new(&nl);
        let out = sat_attack(&protected.keyed, &mut oracle, &config);
        let status = match out.status {
            AttackStatus::Success => "success",
            AttackStatus::Timeout => "timeout",
            AttackStatus::Inconsistent => "inconsistent",
            AttackStatus::ResourceExhausted => "exhausted",
        };
        println!(
            "{:<8} {:>8} {:>8.1}% {:>10.2}ns {:>10.2}ns {:>9.1}% {:>10}",
            name,
            nl.gate_count(),
            hybrid.fraction * 100.0,
            hybrid.baseline_critical * 1e9,
            hybrid.hybrid_critical * 1e9,
            (hybrid.hybrid_power / hybrid.baseline_power - 1.0) * 100.0,
            runtime_cell(status, out.elapsed.as_secs_f64())
        );
    }
    if !fractions.is_empty() {
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        println!("{:-<76}", "");
        println!(
            "mean replaced fraction: {:.1}% (paper: 5-15%)",
            mean * 100.0
        );
        println!("zero delay overhead enforced by construction; attacks should time out");
        println!("(paper: unresolved after 240 h, mostly with solver failures).");
    }
}
