//! Regenerates the **Sec. V-B stochastic-defense study**: the GSHE switch
//! tuned for e.g. 95% accuracy feeds SAT-style attacks inconsistent
//! input-output observations; the attacks return wrong keys or collapse.
//! Includes the AppSAT contender (fn. 6) and the device-level derivation of
//! the error-rate knob (clock period vs. Fig. 4 delay distribution).

use gshe_bench::HarnessArgs;
use gshe_core::attacks::{
    appsat_attack, sat_attack, verify_key, AppSatConfig, AttackConfig, AttackStatus,
    NetlistOracle, StochasticOracle,
};
use gshe_core::camo::{camouflage, select_gates, CamoScheme};
use gshe_core::device::SwitchParams;
use gshe_core::error_rate_for_clock;
use gshe_core::logic::suites::{benchmark_scaled, spec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse();
    let config = AttackConfig { timeout: args.timeout, ..Default::default() };

    // Device-level: how the error rate is tuned (Sec. V-B point (ii)).
    let params = SwitchParams::table_i();
    println!("SEC. V-B — STOCHASTIC SWITCHING AGAINST SAT ATTACKS");
    println!("\nerror-rate knob (device Monte Carlo, I_S = 20 uA):");
    for t_clk in [1.0e-9, 1.5e-9, 2.0e-9, 3.0e-9, 6.0e-9] {
        let eps = error_rate_for_clock(&params, 20e-6, t_clk, args.samples.min(1000), args.seed);
        println!("  clock {:>4.1} ns -> per-device error rate {:>5.1}%", t_clk * 1e9, eps * 100.0);
    }

    let nl = benchmark_scaled(spec("c7552").expect("spec"), args.scale.max(40), args.seed);
    let picks = select_gates(&nl, 0.20, args.seed ^ 7);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).expect("all-16");
    let trials = 5u64;

    println!(
        "\nattack success vs oracle accuracy (c7552-like, 20% protection, {} trials each):",
        trials
    );
    println!(
        "{:>9} {:>14} {:>14} {:>16}",
        "accuracy", "SAT success", "AppSAT success", "typical outcome"
    );
    println!("{:-<60}", "");
    for acc in [1.0, 0.99, 0.95, 0.90] {
        let eps = 1.0 - acc;
        let mut sat_ok = 0u64;
        let mut app_ok = 0u64;
        let mut last = "";
        for t in 0..trials {
            // Plain SAT attack.
            let ok = if eps == 0.0 {
                let mut oracle = NetlistOracle::new(&nl);
                let out = sat_attack(&keyed, &mut oracle, &config);
                matches!(out.status, AttackStatus::Success)
                    && verify_key(&nl, &keyed, out.key.as_ref().expect("key"))
                        .expect("width")
                        .functionally_equivalent
            } else {
                let mut oracle = StochasticOracle::new(&keyed, eps, args.seed ^ t);
                let out = sat_attack(&keyed, &mut oracle, &config);
                last = match out.status {
                    AttackStatus::Inconsistent => "inconsistent constraints",
                    AttackStatus::Timeout => "timeout",
                    AttackStatus::Success => "wrong key",
                    AttackStatus::ResourceExhausted => "solver failure",
                };
                matches!(out.status, AttackStatus::Success)
                    && verify_key(&nl, &keyed, out.key.as_ref().expect("key"))
                        .expect("width")
                        .functionally_equivalent
            };
            sat_ok += ok as u64;

            // AppSAT (PAC-style contender, fn. 6).
            let app_cfg = AppSatConfig {
                base: config,
                seed: args.seed ^ t,
                ..Default::default()
            };
            let ok = if eps == 0.0 {
                let mut oracle = NetlistOracle::new(&nl);
                let out = appsat_attack(&keyed, &mut oracle, &app_cfg);
                matches!(out.status, AttackStatus::Success)
                    && verify_key(&nl, &keyed, out.key.as_ref().expect("key"))
                        .expect("width")
                        .functionally_equivalent
            } else {
                let mut oracle = StochasticOracle::new(&keyed, eps, args.seed ^ t);
                let out = appsat_attack(&keyed, &mut oracle, &app_cfg);
                matches!(out.status, AttackStatus::Success)
                    && verify_key(&nl, &keyed, out.key.as_ref().expect("key"))
                        .expect("width")
                        .functionally_equivalent
            };
            app_ok += ok as u64;
        }
        if eps == 0.0 {
            last = "exact key recovered";
        }
        println!(
            "{:>8.0}% {:>11}/{} {:>13}/{} {:>18}",
            acc * 100.0,
            sat_ok,
            trials,
            app_ok,
            trials,
            last
        );
    }
    println!("{:-<60}", "");
    println!("paper claim: 95% accuracy implies 5% of observed patterns are wrong;");
    println!("SAT-style attacks assume a consistent oracle and fail — including");
    println!("AppSAT, whose PAC reasoning needs consistent input-output queries.");
}
