//! Regenerates the **Sec. V-B stochastic-defense study**: the GSHE switch
//! tuned for e.g. 95% accuracy feeds SAT-style attacks inconsistent
//! input-output observations; the attacks return wrong keys or collapse.
//! Includes the AppSAT contender (fn. 6) and the device-level derivation of
//! the error-rate knob (clock period vs. Fig. 4 delay distribution).
//!
//! The whole study — five device Monte Carlo sweeps plus a 4-accuracy ×
//! 2-attack × 5-trial grid — is one campaign: every cell runs as a pooled
//! job, so the trials that used to run back-to-back now run in parallel.

use gshe_bench::HarnessArgs;
use gshe_core::campaign::{
    AttackSeeds, Campaign, CampaignSpec, JobKind, JobResult, JobSpec, JobStatus, NoiseShape,
};
use gshe_core::logic::Topology;
use gshe_core::prelude::{AttackKind, CamoScheme};

const ACCURACIES: [f64; 4] = [1.0, 0.99, 0.95, 0.90];
const TRIALS: u64 = 5;

fn main() {
    let args = HarnessArgs::parse();

    // Device-level: how the error rate is tuned (Sec. V-B point (ii)).
    let clock_periods = [1.0e-9, 1.5e-9, 2.0e-9, 3.0e-9, 6.0e-9];
    let mut jobs: Vec<JobSpec> = clock_periods
        .iter()
        .map(|&t_clk| JobSpec {
            kind: JobKind::DeviceErrorRate {
                i_s: 20e-6,
                t_clk,
                samples: args.samples.min(1000),
                seed: args.seed,
            },
            timeout: args.timeout,
        })
        .collect();

    // Attack grid: accuracy sweep × {SAT, AppSAT} × trials, all on the
    // c7552-like benchmark at 20% protection (historical seeds: selection
    // seed ^ 7, transform seed, per-trial oracle seed ^ t).
    for &acc in &ACCURACIES {
        for trial in 0..TRIALS {
            for attack in [AttackKind::Sat, AttackKind::AppSat] {
                jobs.push(JobSpec {
                    kind: JobKind::Attack {
                        benchmark: "c7552".to_string(),
                        topology: Topology::Uniform,
                        scheme: CamoScheme::GsheAll16,
                        level: 0.20,
                        attack,
                        error_rate: 1.0 - acc,
                        clock_ns: 0.0,
                        profile: NoiseShape::Uniform,
                        rotation_period: 0,
                        trial,
                        seeds: AttackSeeds {
                            select: args.seed ^ 7,
                            transform: args.seed,
                            oracle: args.seed ^ trial,
                        },
                    },
                    timeout: args.timeout,
                });
            }
        }
    }

    let spec = CampaignSpec {
        name: "exp_stochastic".to_string(),
        scale: args.scale.max(40),
        seed: args.seed,
        timeout: args.timeout,
        threads: args.threads,
        ..Default::default()
    };
    let report = Campaign::run_jobs(&spec, jobs).expect("stochastic campaign");

    println!("SEC. V-B — STOCHASTIC SWITCHING AGAINST SAT ATTACKS");
    println!("\nerror-rate knob (device Monte Carlo, I_S = 20 uA):");
    for row in &report.device {
        println!(
            "  clock {:>4.1} ns -> per-device error rate {:>5.1}%",
            row.t_clk * 1e9,
            row.value * 100.0
        );
    }

    println!(
        "\nattack success vs oracle accuracy (c7552-like, 20% protection, {} trials each):",
        TRIALS
    );
    println!(
        "{:>9} {:>14} {:>14} {:>16}",
        "accuracy", "SAT success", "AppSAT success", "typical outcome"
    );
    println!("{:-<60}", "");
    for &acc in &ACCURACIES {
        let eps = 1.0 - acc;
        let cell = |attack: AttackKind| -> Vec<&JobResult> {
            report
                .results
                .iter()
                .filter(|r| match &r.spec.kind {
                    JobKind::Attack {
                        attack: a,
                        error_rate,
                        ..
                    } => *a == attack && (*error_rate - eps).abs() < 1e-12,
                    _ => false,
                })
                .collect()
        };
        let sat = cell(AttackKind::Sat);
        let app = cell(AttackKind::AppSat);
        let sat_ok = sat.iter().filter(|r| r.key_recovered).count();
        let app_ok = app.iter().filter(|r| r.key_recovered).count();
        let last = if eps == 0.0 {
            "exact key recovered"
        } else {
            match sat.last().map(|r| r.status) {
                Some(JobStatus::Inconsistent) => "inconsistent constraints",
                Some(JobStatus::TimedOut) => "timeout",
                Some(JobStatus::Completed) => "wrong key",
                _ => "solver failure",
            }
        };
        println!(
            "{:>8.0}% {:>11}/{} {:>13}/{} {:>18}",
            acc * 100.0,
            sat_ok,
            TRIALS,
            app_ok,
            TRIALS,
            last
        );
    }
    println!("{:-<60}", "");
    println!("paper claim: 95% accuracy implies 5% of observed patterns are wrong;");
    println!("SAT-style attacks assume a consistent oracle and fail — including");
    println!("AppSAT, whose PAC reasoning needs consistent input-output queries.");
    println!(
        "campaign: {} jobs on {} threads in {:.1}s wall",
        report.results.len(),
        report.threads,
        report.wall_time.as_secs_f64()
    );
}
