//! Property-based tests on the device physics: demag tensor invariants,
//! vector algebra, energy monotonicity under damping, and thermal-field
//! statistics.

use gshe_device::fields::Demagnetization;
use gshe_device::integrator::{Integrator, MidpointIntegrator};
use gshe_device::llgs::{LlgsSystem, PairState};
use gshe_device::{demag_factors, Nanomagnet, SwitchParams, UniaxialAnisotropy, Vec3};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Aharoni demag factors: sum to 1, each in (0, 1), ordering follows
    /// the geometry (longer axis → smaller factor).
    #[test]
    fn demag_tensor_invariants(
        lx in 1.0f64..100.0,
        ly in 1.0f64..100.0,
        lz in 1.0f64..100.0,
    ) {
        let n = demag_factors(lx * 1e-9, ly * 1e-9, lz * 1e-9);
        prop_assert!((n.x + n.y + n.z - 1.0).abs() < 1e-8);
        for c in [n.x, n.y, n.z] {
            prop_assert!(c > 0.0 && c < 1.0);
        }
        if lx > ly * 1.01 {
            prop_assert!(n.x <= n.y + 1e-9, "lx {lx} > ly {ly} but Nx {} > Ny {}", n.x, n.y);
        }
    }

    /// Vector triple-product and Lagrange identities hold for the Vec3
    /// implementation the integrators rely on.
    #[test]
    fn vec3_identities(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0, az in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0, bz in -10.0f64..10.0,
        cx in -10.0f64..10.0, cy in -10.0f64..10.0, cz in -10.0f64..10.0,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        let c = Vec3::new(cx, cy, cz);
        // BAC-CAB: a×(b×c) = b(a·c) − c(a·b)
        let lhs = a.cross(b.cross(c));
        let rhs = b * a.dot(c) - c * a.dot(b);
        prop_assert!((lhs - rhs).norm() < 1e-9 * (1.0 + lhs.norm()));
        // |a×b|² + (a·b)² = |a|²|b|²
        let lagrange = a.cross(b).norm_sq() + a.dot(b).powi(2);
        prop_assert!((lagrange - a.norm_sq() * b.norm_sq()).abs()
            < 1e-9 * (1.0 + lagrange));
    }

    /// The midpoint integrator conserves |m| = 1 for arbitrary tilted
    /// starting states and drive currents.
    #[test]
    fn midpoint_norm_conservation(
        theta in 0.05f64..3.0,
        phi in 0.0f64..std::f64::consts::TAU,
        i_s in 0.0f64..100e-6,
    ) {
        let sys = LlgsSystem::new(&SwitchParams::table_i());
        let integ = MidpointIntegrator::default();
        let m_w = Vec3::new(theta.cos(), theta.sin() * phi.cos(), theta.sin() * phi.sin());
        let mut state = PairState { m_w, m_r: -m_w }.normalized();
        for _ in 0..50 {
            state = integ
                .step(&sys, state, i_s, Vec3::X, Vec3::ZERO, Vec3::ZERO, 1e-12)
                .unwrap();
            prop_assert!((state.m_w.norm() - 1.0).abs() < 1e-9);
            prop_assert!((state.m_r.norm() - 1.0).abs() < 1e-9);
        }
    }

    /// Without drive or noise, Gilbert damping makes the *total* energy of
    /// the coupled pair (anisotropy + demag self-terms + mutual dipolar
    /// term) non-increasing along the trajectory — the Lyapunov property
    /// of dissipative LLG dynamics.
    #[test]
    fn free_relaxation_decreases_energy(theta in 0.3f64..2.8, phi in 0.0f64..std::f64::consts::TAU) {
        let params = SwitchParams::table_i();
        let (w, r) = (params.write, params.read);
        let ua_w = UniaxialAnisotropy::for_magnet(&w, Vec3::X);
        let ua_r = UniaxialAnisotropy::for_magnet(&r, Vec3::X);
        let dm_w = Demagnetization::for_magnet(&w);
        let dm_r = Demagnetization::for_magnet(&r);
        let sys = LlgsSystem::new(&params);
        // Total energy up to mu0 scaling: quadratic self terms carry 1/2,
        // the mutual dipolar term is counted once.
        let energy = |s: &PairState| -> f64 {
            let self_w =
                -0.5 * w.moment() * (ua_w.field(s.m_w) + dm_w.field(s.m_w)).dot(s.m_w);
            let self_r =
                -0.5 * r.moment() * (ua_r.field(s.m_r) + dm_r.field(s.m_r)).dot(s.m_r);
            let dip = -w.moment() * sys.coupling_r_to_w.field(s.m_r).dot(s.m_w);
            self_w + self_r + dip
        };
        let integ = MidpointIntegrator::default();
        let m0 = Vec3::new(theta.cos(), theta.sin() * phi.cos(), theta.sin() * phi.sin());
        let mut state = PairState { m_w: m0, m_r: -Vec3::X }.normalized();
        let mut last = energy(&state);
        let scale = last.abs().max(1e-22);
        let mut increased = 0usize;
        for _ in 0..400 {
            state = integ
                .step(&sys, state, 0.0, Vec3::X, Vec3::ZERO, Vec3::ZERO, 1e-12)
                .unwrap();
            let e = energy(&state);
            // Tolerate integrator-level wiggle only.
            if e > last + 1e-4 * scale {
                increased += 1;
            }
            last = e;
        }
        prop_assert!(increased < 8, "energy increased {increased} times");
    }

    /// Nanomagnet derived quantities stay physical across a parameter
    /// sweep.
    #[test]
    fn nanomagnet_derived_quantities(
        ms in 1e5f64..2e6,
        ku in 1e3f64..1e5,
        scale in 0.5f64..3.0,
    ) {
        let nm = Nanomagnet {
            length: 28e-9 * scale,
            width: 15e-9 * scale,
            thickness: 2e-9 * scale,
            ms,
            ku,
            alpha: 0.01,
        };
        prop_assert!(nm.validate().is_ok());
        prop_assert!(nm.volume() > 0.0);
        prop_assert!(nm.anisotropy_field() > 0.0);
        prop_assert!(nm.moment() > 0.0);
        prop_assert!(nm.thermal_stability(300.0) > 0.0);
        let n = nm.demag();
        prop_assert!((n.x + n.y + n.z - 1.0).abs() < 1e-8);
    }
}
