//! Minimal 3-component vector algebra for macrospin dynamics.
//!
//! The magnetization state of a nanomagnet is a unit vector `m`; every field
//! contribution and torque is a [`Vec3`]. The type is deliberately small and
//! `Copy` so the integrator hot loop stays allocation-free.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component `f64` vector.
///
/// ```
/// use gshe_device::Vec3;
///
/// let x = Vec3::X;
/// let y = Vec3::Y;
/// assert_eq!(x.cross(y), Vec3::Z);
/// assert_eq!(x.dot(y), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the vector is exactly zero; callers in the
    /// integrator guarantee `|m| > 0` as an invariant.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Component-wise product.
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x * rhs.x,
            y: self.y * rhs.y,
            z: self.z * rhs.z,
        }
    }

    /// The triple product `self · (a × b)`.
    pub fn triple(self, a: Vec3, b: Vec3) -> f64 {
        self.dot(a.cross(b))
    }

    /// Returns `true` if all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Linear interpolation `self + t (rhs − self)`.
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// The component of `self` orthogonal to the unit vector `axis`.
    pub fn reject_from_unit(self, axis: Vec3) -> Vec3 {
        self - axis * self.dot(axis)
    }

    /// Largest absolute component value (infinity norm).
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
            z: self.z + rhs.z,
        }
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
            z: self.z - rhs.z,
        }
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3 {
            x: self.x * rhs,
            y: self.y * rhs,
            z: self.z * rhs,
        }
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3 {
            x: self.x / rhs,
            y: self.y / rhs,
            z: self.z / rhs,
        }
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3 {
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6e}, {:.6e}, {:.6e})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn cross_products_are_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_is_antisymmetric() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        let ab = a.cross(b);
        let ba = b.cross(a);
        assert!((ab + ba).norm() < EPS);
    }

    #[test]
    fn cross_is_orthogonal_to_operands() {
        let a = Vec3::new(0.3, 0.4, -0.9);
        let b = Vec3::new(1.5, -0.2, 0.1);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < EPS);
        assert!(c.dot(b).abs() < EPS);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert!((v.normalized().norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn rejection_is_orthogonal_to_axis() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let r = v.reject_from_unit(Vec3::Z);
        assert!(r.dot(Vec3::Z).abs() < EPS);
        assert_eq!(r, Vec3::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 0.0, -1.0);
        let b = Vec3::new(0.0, 2.0, 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert!((a.lerp(b, 0.5) - Vec3::new(0.5, 1.0, 2.0)).norm() < EPS);
    }

    #[test]
    fn triple_product_matches_determinant() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(0.0, 1.0, 4.0);
        let c = Vec3::new(5.0, 6.0, 0.0);
        // det([[1,2,3],[0,1,4],[5,6,0]]) = 1*(0-24) - 2*(0-20) + 3*(0-5) = 1
        assert!((a.triple(b, c) - 1.0).abs() < EPS);
    }

    #[test]
    fn sum_folds_from_zero() {
        let vs = [Vec3::X, Vec3::Y, Vec3::Z];
        let s: Vec3 = vs.into_iter().sum();
        assert_eq!(s, Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn array_round_trip() {
        let v = Vec3::new(0.1, 0.2, 0.3);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
    }
}
