//! Device characterization: the Table I dump and the Table II comparison of
//! emerging-device security primitives.

use crate::material::SwitchParams;
use crate::montecarlo::{MonteCarlo, MonteCarloConfig};
use crate::readout::ReadoutCircuit;

/// Energy/power/delay/function-count metrics for one primitive
/// (a row of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceMetrics {
    /// Citation key as printed in the paper (e.g. `"\[24, a\]"`).
    pub publication: &'static str,
    /// Technology/primitive description.
    pub description: &'static str,
    /// Number of cloakable Boolean functions.
    pub functions: usize,
    /// Switching/operation energy, J (`None` where the paper lists N/A).
    pub energy: Option<f64>,
    /// Power, W (`None` where the paper lists N/A).
    pub power: Option<f64>,
    /// Delay, s (`None` where the paper lists N/A).
    pub delay: Option<f64>,
}

/// The literature rows of Table II (everything except "This work", which is
/// computed from the device model by [`this_work_metrics`]).
pub const EMERGING_DEVICE_TABLE: &[DeviceMetrics] = &[
    DeviceMetrics {
        publication: "[19]",
        description: "SiNW NAND/NOR",
        functions: 2,
        energy: Some(0.075e-15),
        power: Some(1.45e-6),
        delay: Some(49e-12),
    },
    DeviceMetrics {
        publication: "[24, a]",
        description: "ASL NAND/NOR/AND/OR",
        functions: 4,
        energy: Some(0.58e-12),
        power: Some(351.52e-6),
        delay: Some(1.65e-9),
    },
    DeviceMetrics {
        publication: "[24, b]",
        description: "ASL XOR/XNOR",
        functions: 2,
        energy: Some(1.16e-12),
        power: Some(351.52e-6),
        delay: Some(3.3e-9),
    },
    DeviceMetrics {
        publication: "[24, c]",
        description: "ASL INV/BUF",
        functions: 2,
        energy: Some(0.13e-12),
        power: Some(342.11e-6),
        delay: Some(0.38e-9),
    },
    DeviceMetrics {
        publication: "[30]",
        description: "DWM AND/OR",
        functions: 2,
        energy: Some(67.72e-15),
        power: Some(60.46e-6),
        delay: Some(1.12e-9),
    },
    DeviceMetrics {
        publication: "[20]",
        description: "DWM NAND/NOR/XOR/XNOR/AND/OR/INV",
        functions: 7,
        energy: None,
        power: None,
        delay: None,
    },
    DeviceMetrics {
        publication: "[23]",
        description: "GSHE AND/OR/NAND/NOR",
        functions: 4,
        energy: None,
        power: None,
        delay: None,
    },
    DeviceMetrics {
        publication: "[25]",
        description: "STT NAND/NOR/XOR/XNOR/AND/OR",
        functions: 6,
        energy: None,
        power: None,
        delay: None,
    },
];

/// Nominal mean switching delay the paper adopts for the primitive, s
/// (Fig. 4, I_S = 20 µA).
pub const NOMINAL_DELAY: f64 = 1.55e-9;

/// Computes the "This work" row of Table II from the device model.
///
/// `measured_delay` should come from a Monte Carlo run (e.g.
/// [`measured_mean_delay`]); pass [`NOMINAL_DELAY`] to reproduce the
/// published row exactly.
pub fn this_work_metrics(params: &SwitchParams, measured_delay: f64) -> DeviceMetrics {
    let circuit = ReadoutCircuit::new(params);
    let pt = circuit.operating_point(20e-6);
    DeviceMetrics {
        publication: "This work",
        description: "GSHE, all 16 Boolean functions",
        functions: 16,
        energy: Some(pt.power * measured_delay),
        power: Some(pt.power),
        delay: Some(measured_delay),
    }
}

/// Monte Carlo estimate of the mean switching delay at `i_s`, s.
pub fn measured_mean_delay(params: &SwitchParams, i_s: f64, samples: usize, seed: u64) -> f64 {
    let mc = MonteCarlo::new(MonteCarloConfig {
        params: *params,
        samples,
        seed,
        threads: 0,
    });
    crate::montecarlo::mean_switched_delay(&mc.run(i_s))
}

/// Formats one row of Table II with engineering units, matching the paper's
/// layout (`# Functions | Energy | Power | Delay`).
pub fn format_metrics_row(m: &DeviceMetrics) -> String {
    fn eng(v: Option<f64>, unit: &str, scale: f64, digits: usize) -> String {
        match v {
            Some(x) => format!("{:.*} {unit}", digits, x / scale),
            None => "N/A".to_string(),
        }
    }
    format!(
        "{:<10} {:<36} {:>2}  {:>12}  {:>12}  {:>10}",
        m.publication,
        m.description,
        m.functions,
        eng(m.energy, "fJ", 1e-15, 2),
        eng(m.power, "uW", 1e-6, 4),
        eng(m.delay, "ns", 1e-9, 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_work_row_matches_table_ii() {
        let m = this_work_metrics(&SwitchParams::table_i(), NOMINAL_DELAY);
        assert_eq!(m.functions, 16);
        let e = m.energy.unwrap();
        let p = m.power.unwrap();
        assert!(
            (e - 0.33e-15).abs() / 0.33e-15 < 0.025,
            "E = {} fJ",
            e * 1e15
        );
        assert!(
            (p - 0.2125e-6).abs() / 0.2125e-6 < 0.025,
            "P = {} uW",
            p * 1e6
        );
    }

    #[test]
    fn this_work_cloaks_the_most_functions() {
        let ours = this_work_metrics(&SwitchParams::table_i(), NOMINAL_DELAY);
        for row in EMERGING_DEVICE_TABLE {
            assert!(
                ours.functions > row.functions,
                "{} not dominated",
                row.publication
            );
        }
    }

    #[test]
    fn this_work_has_lowest_power_among_reported() {
        let ours = this_work_metrics(&SwitchParams::table_i(), NOMINAL_DELAY);
        let p = ours.power.unwrap();
        for row in EMERGING_DEVICE_TABLE {
            if let Some(other) = row.power {
                assert!(p < other, "{} beats us on power", row.publication);
            }
        }
    }

    #[test]
    fn measured_delay_is_near_nominal() {
        // Small-sample check that the simulated mean is in the right
        // ballpark of the 1.55 ns the paper reports for 20 µA.
        let d = measured_mean_delay(&SwitchParams::table_i(), 20e-6, 48, 17);
        assert!(d.is_finite());
        assert!(d > 0.5e-9 && d < 3.5e-9, "mean delay {} ns", d * 1e9);
    }

    #[test]
    fn row_formatting_handles_na() {
        let row = &EMERGING_DEVICE_TABLE[6];
        let s = format_metrics_row(row);
        assert!(s.contains("N/A"));
        assert!(s.contains("[23]"));
    }
}
