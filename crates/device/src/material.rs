//! Material and geometry parameters of the GSHE switch (paper Table I).
//!
//! The switch stacks, bottom to top: a heavy-metal (HM) spin-Hall layer, the
//! write nanomagnet (W-NM), an insulating spacer, the read nanomagnet (R-NM),
//! a tunnel barrier and two fixed ferromagnets with anti-parallel
//! magnetizations. [`SwitchParams::table_i`] reproduces the exact Table I
//! device.

use crate::consts::{GAMMA_E, MU_0};
use crate::error::DeviceError;
use crate::fields::demag_factors;
use crate::vec3::Vec3;

/// Geometry and material parameters of a single in-plane nanomagnet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nanomagnet {
    /// Length along the easy axis (x), m. Table I: 28 nm.
    pub length: f64,
    /// Width (y), m. Table I: 15 nm.
    pub width: f64,
    /// Thickness (z, stacking direction), m. Table I: 2 nm.
    pub thickness: f64,
    /// Saturation magnetization M_s, A/m.
    pub ms: f64,
    /// Uniaxial anisotropy energy density K_u, J/m³ (easy axis along x).
    pub ku: f64,
    /// Gilbert damping constant α (dimensionless).
    pub alpha: f64,
}

impl Nanomagnet {
    /// The write nanomagnet of Table I
    /// (28 × 15 × 2 nm³, M_s = 10⁶ A/m, K_u = 2.5 × 10⁴ J/m³).
    pub fn write_nm() -> Self {
        Nanomagnet {
            length: 28e-9,
            width: 15e-9,
            thickness: 2e-9,
            ms: 1.0e6,
            ku: 2.5e4,
            alpha: 0.005,
        }
    }

    /// The read nanomagnet of Table I
    /// (28 × 15 × 2 nm³, M_s = 5 × 10⁵ A/m, K_u = 5 × 10³ J/m³).
    pub fn read_nm() -> Self {
        Nanomagnet {
            length: 28e-9,
            width: 15e-9,
            thickness: 2e-9,
            ms: 5.0e5,
            ku: 5.0e3,
            alpha: 0.01,
        }
    }

    /// Volume, m³.
    pub fn volume(&self) -> f64 {
        self.length * self.width * self.thickness
    }

    /// In-plane cross-sectional area (length × width), m². This is the
    /// tunnel-junction area entering G_P = A/RAP in the read-out model.
    pub fn area(&self) -> f64 {
        self.length * self.width
    }

    /// Uniaxial anisotropy field H_k = 2 K_u / (μ₀ M_s), A/m.
    pub fn anisotropy_field(&self) -> f64 {
        2.0 * self.ku / (MU_0 * self.ms)
    }

    /// Thermal stability factor Δ = K_u V / (k_B T).
    pub fn thermal_stability(&self, temperature: f64) -> f64 {
        self.ku * self.volume() / (crate::consts::K_B * temperature)
    }

    /// Demagnetization factors `(Nx, Ny, Nz)` of the prism via the analytic
    /// Aharoni expressions.
    pub fn demag(&self) -> Vec3 {
        demag_factors(self.length, self.width, self.thickness)
    }

    /// Total magnetic moment M_s V, A m².
    pub fn moment(&self) -> f64 {
        self.ms * self.volume()
    }

    /// Number of Bohr magnetons in the magnet (for sanity checks).
    pub fn spins(&self) -> f64 {
        self.moment() / crate::consts::MU_B
    }

    /// Characteristic precession frequency γ μ₀ H_k, rad/s.
    pub fn precession_rate(&self) -> f64 {
        GAMMA_E * MU_0 * self.anisotropy_field()
    }

    /// Validates that all parameters are positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), DeviceError> {
        let checks: [(&'static str, f64); 6] = [
            ("length", self.length),
            ("width", self.width),
            ("thickness", self.thickness),
            ("ms", self.ms),
            ("ku", self.ku),
            ("alpha", self.alpha),
        ];
        for (name, value) in checks {
            if !(value.is_finite() && value > 0.0) {
                return Err(DeviceError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

/// The heavy-metal spin-Hall layer under the write nanomagnet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyMetal {
    /// Resistivity ρ, Ω m. Table I: 5.6 × 10⁻⁷.
    pub resistivity: f64,
    /// Spin-Hall angle θ_SH. Table I: 0.4.
    pub spin_hall_angle: f64,
    /// Layer thickness t_HM, m. Table I: 1 nm.
    pub thickness: f64,
    /// Conduction length under the magnet (sets r together with ρ), m.
    pub length: f64,
    /// Conduction width, m.
    pub width: f64,
}

impl HeavyMetal {
    /// The Table I heavy metal: ρ = 5.6 × 10⁻⁷ Ω m, θ_SH = 0.4, t = 1 nm.
    /// Geometry chosen so the resistance r comes out at the paper's ≈ 1 kΩ.
    pub fn table_i() -> Self {
        // r = ρ L / (w t). With L = 50 nm, w = 28 nm, t = 1 nm:
        // r = 5.6e-7 × 50e-9 / (28e-9 × 1e-9) = 1000 Ω exactly.
        HeavyMetal {
            resistivity: 5.6e-7,
            spin_hall_angle: 0.4,
            thickness: 1e-9,
            length: 50e-9,
            width: 28e-9,
        }
    }

    /// Electrical resistance r = ρ L / (w t), Ω.
    pub fn resistance(&self) -> f64 {
        self.resistivity * self.length / (self.width * self.thickness)
    }

    /// Internal spin-gain β = θ_SH (w_NM / t_HM); Table I: 0.4 × 15 = 6.
    ///
    /// The geometric ratio uses the nanomagnet width as the paper does.
    pub fn internal_gain(&self, nm_width: f64) -> f64 {
        self.spin_hall_angle * nm_width / self.thickness
    }

    /// Spin current delivered for a charge current `i_c`:
    /// I_S = β I_C.
    pub fn spin_current(&self, i_c: f64, nm_width: f64) -> f64 {
        self.internal_gain(nm_width) * i_c
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), DeviceError> {
        let checks: [(&'static str, f64); 5] = [
            ("resistivity", self.resistivity),
            ("spin_hall_angle", self.spin_hall_angle),
            ("hm_thickness", self.thickness),
            ("hm_length", self.length),
            ("hm_width", self.width),
        ];
        for (name, value) in checks {
            if !(value.is_finite() && value > 0.0) {
                return Err(DeviceError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

/// Complete parameter set for one GSHE switch (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchParams {
    /// Write nanomagnet.
    pub write: Nanomagnet,
    /// Read nanomagnet.
    pub read: Nanomagnet,
    /// Heavy-metal spin-Hall layer.
    pub heavy_metal: HeavyMetal,
    /// Center-to-center stacking distance between W-NM and R-NM, m.
    /// The paper adopts "a stacked integration to maximize the dipolar
    /// coupling" (Fig. 1); 12 nm keeps the coupling field well above the
    /// R-NM anisotropy field so the read magnet follows deterministically.
    pub coupling_distance: f64,
    /// Lattice temperature, K.
    pub temperature: f64,
    /// Resistance–area product of the tunnel junction, Ω m².
    /// Table I: 1 Ω µm² = 10⁻¹² Ω m².
    pub rap: f64,
    /// Tunneling magnetoresistance ratio (G_P/G_AP = 1 + TMR). Table I: 1.7.
    pub tmr: f64,
    /// Integration time step, s.
    pub dt: f64,
    /// Simulation horizon for a single write attempt, s.
    pub horizon: f64,
}

impl SwitchParams {
    /// The exact Table I device at room temperature.
    pub fn table_i() -> Self {
        SwitchParams {
            write: Nanomagnet::write_nm(),
            read: Nanomagnet::read_nm(),
            heavy_metal: HeavyMetal::table_i(),
            coupling_distance: 12e-9,
            temperature: crate::consts::ROOM_TEMPERATURE,
            rap: 1e-12,
            tmr: 1.7,
            dt: 1e-12,
            horizon: 10e-9,
        }
    }

    /// Parallel-path conductance G_P = A / RAP, S. Table I: 420 µS.
    pub fn g_parallel(&self) -> f64 {
        self.read.area() / self.rap
    }

    /// Anti-parallel conductance G_AP = G_P / (1 + TMR), S. Table I: 155.6 µS.
    pub fn g_antiparallel(&self) -> f64 {
        self.g_parallel() / (1.0 + self.tmr)
    }

    /// Internal gain β = θ_SH (w_NM / t_HM) = 6 for Table I.
    pub fn beta(&self) -> f64 {
        self.heavy_metal.internal_gain(self.write.width)
    }

    /// Conceptual layout area of the switch, m².
    /// The paper estimates 0.0016 µm² from beyond-CMOS design rules
    /// (a 32 nm × 50 nm footprint in units of λ).
    pub fn layout_area(&self) -> f64 {
        32e-9 * 50e-9
    }

    /// Validates every sub-component.
    ///
    /// # Errors
    ///
    /// Returns the first [`DeviceError::InvalidParameter`] found.
    pub fn validate(&self) -> Result<(), DeviceError> {
        self.write.validate()?;
        self.read.validate()?;
        self.heavy_metal.validate()?;
        let checks: [(&'static str, f64); 6] = [
            ("coupling_distance", self.coupling_distance),
            ("temperature", self.temperature),
            ("rap", self.rap),
            ("tmr", self.tmr),
            ("dt", self.dt),
            ("horizon", self.horizon),
        ];
        for (name, value) in checks {
            if !(value.is_finite() && value > 0.0) {
                return Err(DeviceError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

impl Default for SwitchParams {
    fn default() -> Self {
        SwitchParams::table_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_conductances_match_paper() {
        let p = SwitchParams::table_i();
        // G_P = 420 µS exactly: (28e-9 × 15e-9)/1e-12 = 4.2e-4 S.
        assert!((p.g_parallel() - 420e-6).abs() < 1e-9);
        // G_AP = 420/2.7 = 155.555... µS; the paper rounds to 155.6 µS.
        assert!((p.g_antiparallel() - 155.6e-6).abs() < 0.1e-6);
    }

    #[test]
    fn table_i_beta_is_six() {
        let p = SwitchParams::table_i();
        assert!((p.beta() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn table_i_hm_resistance_is_1k() {
        let hm = HeavyMetal::table_i();
        assert!((hm.resistance() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn write_nm_anisotropy_field() {
        let w = Nanomagnet::write_nm();
        // H_k = 2×2.5e4/(μ0×1e6) ≈ 39.79 kA/m.
        let hk = w.anisotropy_field();
        assert!((hk - 39.79e3).abs() / 39.79e3 < 1e-3);
    }

    #[test]
    fn volumes_match_28_15_2() {
        let w = Nanomagnet::write_nm();
        assert!((w.volume() - 840e-27).abs() < 1e-30);
        assert!((w.area() - 420e-18).abs() < 1e-24);
    }

    #[test]
    fn thermal_stability_is_moderate() {
        // Δ = 2.5e4 × 8.4e-25 / (k_B 300) ≈ 5.07 — a deliberately
        // low-barrier magnet per the probabilistic-computing design [22].
        let w = Nanomagnet::write_nm();
        let delta = w.thermal_stability(300.0);
        assert!(delta > 4.0 && delta < 6.0, "delta = {delta}");
    }

    #[test]
    fn validation_rejects_nonpositive() {
        let mut w = Nanomagnet::write_nm();
        w.ms = 0.0;
        assert!(matches!(
            w.validate(),
            Err(DeviceError::InvalidParameter { name: "ms", .. })
        ));
        let mut p = SwitchParams::table_i();
        p.dt = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn layout_area_matches_paper_estimate() {
        let p = SwitchParams::table_i();
        // 0.0016 µm² = 1.6e-15 m².
        assert!((p.layout_area() - 1.6e-15).abs() < 1e-18);
    }

    #[test]
    fn default_is_table_i() {
        assert_eq!(SwitchParams::default(), SwitchParams::table_i());
    }
}
