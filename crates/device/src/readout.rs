//! Read-out equivalent circuit and power model (Fig. 3 inset, Sec. III-B).
//!
//! During read-out, voltages `+V_SUP` and `−V_SUP` are applied to the two
//! fixed ferromagnets. The path through the ferromagnet *parallel* to the
//! R-NM has conductance `G_P`, the anti-parallel path `G_AP`; the output
//! node sits above the heavy-metal resistance `r`. The output voltage and
//! the read power follow the paper's closed forms:
//!
//! ```text
//! V_SUP = (I_S/β) · (1 + r (G_P + G_AP)) / (G_P − G_AP)
//! V_OUT = I_S r / β
//! P     = V_OUT²/r + (V_SUP − V_OUT)² G_P + (V_OUT + V_SUP)² G_AP
//! ```
//!
//! For Table I at I_S = 20 µA these evaluate to P = 0.2125 µW and, with the
//! 1.55 ns mean delay, E = 0.33 fJ — the "This work" row of Table II.

use crate::material::SwitchParams;

/// Operating point of the read-out circuit at a given spin current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutPoint {
    /// Spin current the read-out is sized for, A.
    pub i_s: f64,
    /// Supply magnitude |V⁺| = |V⁻|, V.
    pub v_sup: f64,
    /// Output node voltage, V.
    pub v_out: f64,
    /// Output current magnitude `I_OUT = I_S/β`, A (direction encodes the
    /// logic value).
    pub i_out: f64,
    /// Static read power including leakage through the anti-parallel path, W.
    pub power: f64,
}

/// The read-out equivalent circuit of one GSHE switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutCircuit {
    /// Parallel-path conductance G_P, S.
    pub g_p: f64,
    /// Anti-parallel-path conductance G_AP, S.
    pub g_ap: f64,
    /// Heavy-metal resistance r, Ω.
    pub r: f64,
    /// Internal gain β.
    pub beta: f64,
}

impl ReadoutCircuit {
    /// Builds the circuit from switch parameters.
    pub fn new(params: &SwitchParams) -> Self {
        ReadoutCircuit {
            g_p: params.g_parallel(),
            g_ap: params.g_antiparallel(),
            r: params.heavy_metal.resistance(),
            beta: params.beta(),
        }
    }

    /// Solves the operating point for spin current `i_s` (A).
    pub fn operating_point(&self, i_s: f64) -> ReadoutPoint {
        let v_out = i_s * self.r / self.beta;
        let v_sup =
            (i_s / self.beta) * (1.0 + self.r * (self.g_p + self.g_ap)) / (self.g_p - self.g_ap);
        let power = v_out * v_out / self.r
            + (v_sup - v_out).powi(2) * self.g_p
            + (v_out + v_sup).powi(2) * self.g_ap;
        ReadoutPoint {
            i_s,
            v_sup,
            v_out,
            i_out: i_s / self.beta,
            power,
        }
    }

    /// Read energy for a read lasting `duration` seconds, J.
    pub fn energy(&self, i_s: f64, duration: f64) -> f64 {
        self.operating_point(i_s).power * duration
    }

    /// Verifies Kirchhoff consistency of an operating point: the current
    /// leaving through the heavy metal equals the net current injected by
    /// the two fixed-ferromagnet paths. Returns the relative error.
    pub fn kirchhoff_residual(&self, pt: &ReadoutPoint) -> f64 {
        let i_hm = pt.v_out / self.r;
        let i_p = (pt.v_sup - pt.v_out) * self.g_p;
        let i_ap = (-pt.v_sup - pt.v_out) * self.g_ap;
        let net_in = i_p + i_ap;
        (net_in - i_hm).abs() / i_hm.abs().max(1e-30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_i_circuit() -> ReadoutCircuit {
        ReadoutCircuit::new(&SwitchParams::table_i())
    }

    #[test]
    fn power_matches_paper_0_2125_uw() {
        let c = table_i_circuit();
        let pt = c.operating_point(20e-6);
        assert!(
            (pt.power - 0.2125e-6).abs() / 0.2125e-6 < 0.025,
            "P = {} uW",
            pt.power * 1e6
        );
    }

    #[test]
    fn energy_matches_paper_0_33_fj() {
        let c = table_i_circuit();
        let e = c.energy(20e-6, 1.55e-9);
        assert!(
            (e - 0.33e-15).abs() / 0.33e-15 < 0.025,
            "E = {} fJ",
            e * 1e15
        );
    }

    #[test]
    fn output_voltage_is_is_r_over_beta() {
        let c = table_i_circuit();
        let pt = c.operating_point(20e-6);
        // V_OUT = 20µA × 1kΩ / 6 ≈ 3.33 mV.
        assert!((pt.v_out - 3.333e-3).abs() < 1e-5);
        // I_OUT = I_S/β ≈ 3.33 µA.
        assert!((pt.i_out - 3.333e-6).abs() < 1e-8);
    }

    #[test]
    fn operating_point_satisfies_kirchhoff() {
        let c = table_i_circuit();
        let pt = c.operating_point(20e-6);
        assert!(
            c.kirchhoff_residual(&pt) < 1e-9,
            "residual {}",
            c.kirchhoff_residual(&pt)
        );
    }

    #[test]
    fn power_scales_quadratically_with_current() {
        let c = table_i_circuit();
        let p1 = c.operating_point(20e-6).power;
        let p2 = c.operating_point(40e-6).power;
        assert!((p2 / p1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn supply_voltage_is_about_20_mv() {
        let c = table_i_circuit();
        let pt = c.operating_point(20e-6);
        assert!(pt.v_sup > 15e-3 && pt.v_sup < 25e-3, "V_SUP = {}", pt.v_sup);
        assert!(pt.v_sup > pt.v_out);
    }
}
