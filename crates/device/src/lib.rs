//! # gshe-device
//!
//! Macrospin device physics for the **giant spin-Hall effect (GSHE) switch**
//! of Patnaik, Rangarajan et al., *Advancing Hardware Security Using
//! Polymorphic and Stochastic Spin-Hall Effect Devices* (DATE 2018).
//!
//! The crate implements, from scratch, everything the paper's Sec. III
//! depends on:
//!
//! * the stochastic Landau–Lifshitz–Gilbert–Slonczewski (sLLGS) equation of
//!   motion for the write (W) and read (R) nanomagnets, including uniaxial
//!   anisotropy, shape anisotropy via the analytic Aharoni demagnetization
//!   tensor, negative mutual dipolar coupling, Slonczewski spin-transfer
//!   torque from the spin-Hall layer, and Brownian thermal fields
//!   ([`llgs`], [`fields`]);
//! * the norm-preserving implicit **midpoint** integrator of d'Aquino et al.
//!   (the paper's ref. \[29\]) plus a stochastic Heun integrator for
//!   cross-checking ([`integrator`]);
//! * the coupled W/R switch model with charge-current write and resistive
//!   read-out ([`switch`], [`readout`]);
//! * Monte Carlo switching-delay characterization reproducing Fig. 4
//!   ([`montecarlo`]);
//! * the Table I / Table II characterization helpers ([`characterize`]).
//!
//! ## Quick start
//!
//! ```
//! use gshe_device::{GsheSwitch, SwitchParams};
//!
//! // The paper's Table I device, driven at the deterministic-switching
//! // threshold of 20 uA of spin current.
//! let params = SwitchParams::table_i();
//! let mut switch = GsheSwitch::new(params);
//! let outcome = switch.write_deterministic(20e-6, true);
//! assert!(outcome.switched);
//! ```
//!
//! All quantities are SI unless a name says otherwise (`*_nm`, `*_ns`, ...).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod consts;
pub mod error;
pub mod fields;
pub mod integrator;
pub mod llgs;
pub mod material;
pub mod montecarlo;
pub mod readout;
pub mod switch;
pub mod vec3;

pub use characterize::{DeviceMetrics, EMERGING_DEVICE_TABLE};
pub use error::DeviceError;
pub use fields::{demag_factors, DipolarCoupling, ThermalField, UniaxialAnisotropy};
pub use integrator::{Integrator, IntegratorKind, MidpointIntegrator, StochasticHeun};
pub use llgs::{LlgsSystem, Torque};
pub use material::{HeavyMetal, Nanomagnet, SwitchParams};
pub use montecarlo::{
    mean_switched_delay, DelayHistogram, DelaySample, MonteCarlo, MonteCarloConfig,
};
pub use readout::{ReadoutCircuit, ReadoutPoint};
pub use switch::{GsheSwitch, SwitchOutcome, WriteDrive};
pub use vec3::Vec3;
