//! The stochastic Landau–Lifshitz–Gilbert–Slonczewski equation of motion.
//!
//! In the explicit Landau–Lifshitz form used by the integrators, the
//! dynamics of the unit magnetization `m` of one macrospin is
//!
//! ```text
//! dm/dt = −γ′ [ m × H_eff + α m × (m × H_eff) ]
//!         − γ′ a_j [ m × (m × p) ]  +  γ′ α a_j (m × p)
//! ```
//!
//! with `γ′ = γ μ₀ / (1 + α²)` and the Slonczewski spin-torque field
//! `a_j = ħ I_S / (2 e μ₀ M_s V)` in A/m for a spin current `I_S`
//! polarized along the unit vector `p` (paper refs. \[27\], \[29\]).
//!
//! [`LlgsSystem`] assembles the coupled W/R pair of the GSHE switch:
//! spin-transfer torque acts on the write magnet only; the read magnet is
//! driven purely by the (negative) dipolar coupling plus its own thermal
//! bath.

use crate::consts::{GAMMA_E, H_BAR, MU_0, Q_E};
use crate::fields::{Demagnetization, DipolarCoupling, ThermalField, UniaxialAnisotropy};
use crate::material::{Nanomagnet, SwitchParams};
use crate::vec3::Vec3;

/// Decomposition of `dm/dt` into physical contributions, rad/s.
///
/// Useful for diagnostics and tests; [`Torque::total`] is what the
/// integrators consume.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Torque {
    /// Precession term −γ′ m × H.
    pub precession: Vec3,
    /// Gilbert damping term −γ′ α m × (m × H).
    pub damping: Vec3,
    /// Slonczewski anti-damping torque −γ′ a_j m × (m × p).
    pub stt: Vec3,
    /// Field-like torque γ′ α a_j (m × p).
    pub field_like: Vec3,
}

impl Torque {
    /// Sum of all contributions.
    pub fn total(&self) -> Vec3 {
        self.precession + self.damping + self.stt + self.field_like
    }
}

/// Per-magnet dynamical parameters derived from a [`Nanomagnet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagnetDynamics {
    /// The magnet's material/geometry record.
    pub nm: Nanomagnet,
    /// Uniaxial anisotropy (easy axis x).
    pub anisotropy: UniaxialAnisotropy,
    /// Shape anisotropy.
    pub demag: Demagnetization,
    /// γ′ = γ μ₀ / (1 + α²), (A/m)⁻¹ s⁻¹ scaling of field into rad/s.
    pub gamma_prime: f64,
}

impl MagnetDynamics {
    /// Builds the dynamics for a magnet with easy axis along +x.
    pub fn new(nm: Nanomagnet) -> Self {
        MagnetDynamics {
            nm,
            anisotropy: UniaxialAnisotropy::for_magnet(&nm, Vec3::X),
            demag: Demagnetization::for_magnet(&nm),
            gamma_prime: GAMMA_E * MU_0 / (1.0 + nm.alpha * nm.alpha),
        }
    }

    /// Spin-torque field a_j = ħ I_S / (2 e μ₀ M_s V), A/m.
    pub fn spin_torque_field(&self, i_s: f64) -> f64 {
        H_BAR * i_s / (2.0 * Q_E * MU_0 * self.nm.ms * self.nm.volume())
    }

    /// The deterministic part of the effective field (anisotropy + demag +
    /// `external`), A/m.
    pub fn field_deterministic(&self, m: Vec3, external: Vec3) -> Vec3 {
        self.anisotropy.field(m) + self.demag.field(m) + external
    }

    /// Evaluates the full torque decomposition at magnetization `m` under
    /// effective field `h_eff` and spin current `i_s` polarized along `p`.
    pub fn torque(&self, m: Vec3, h_eff: Vec3, i_s: f64, p: Vec3) -> Torque {
        let gp = self.gamma_prime;
        let alpha = self.nm.alpha;
        let m_x_h = m.cross(h_eff);
        let precession = -gp * m_x_h;
        let damping = -gp * alpha * m.cross(m_x_h);
        let (stt, field_like) = if i_s != 0.0 {
            let a_j = self.spin_torque_field(i_s);
            let m_x_p = m.cross(p);
            (-gp * a_j * m.cross(m_x_p), gp * alpha * a_j * m_x_p)
        } else {
            (Vec3::ZERO, Vec3::ZERO)
        };
        Torque {
            precession,
            damping,
            stt,
            field_like,
        }
    }

    /// `dm/dt` (rad/s) — the torque total.
    pub fn rhs(&self, m: Vec3, h_eff: Vec3, i_s: f64, p: Vec3) -> Vec3 {
        self.torque(m, h_eff, i_s, p).total()
    }

    /// Critical Slonczewski field for in-plane switching,
    /// `a_crit ≈ α (H_k + (N_y − N_x) M_s + (N_z − N_x) M_s / 2)`, A/m.
    ///
    /// This is the standard macrospin estimate; the paper's statement that
    /// I_S = 20 µA "guarantees deterministic switching" corresponds to the
    /// spin-torque field comfortably exceeding this threshold.
    pub fn critical_field(&self) -> f64 {
        let n = self.demag.n;
        let ms = self.nm.ms;
        self.nm.alpha * (self.anisotropy.h_k + (n.y - n.x) * ms + 0.5 * (n.z - n.x) * ms)
    }

    /// Critical spin current corresponding to [`Self::critical_field`], A.
    pub fn critical_current(&self) -> f64 {
        let a_crit = self.critical_field();
        a_crit * 2.0 * Q_E * MU_0 * self.nm.ms * self.nm.volume() / H_BAR
    }
}

/// The coupled write/read macrospin pair of one GSHE switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlgsSystem {
    /// Write-magnet dynamics (receives the spin-Hall STT).
    pub write: MagnetDynamics,
    /// Read-magnet dynamics (dipolar-coupled slave).
    pub read: MagnetDynamics,
    /// Field produced *at the read magnet* by the write magnet.
    pub coupling_w_to_r: DipolarCoupling,
    /// Field produced *at the write magnet* by the read magnet.
    pub coupling_r_to_w: DipolarCoupling,
}

/// Joint magnetization state `(m_w, m_r)` of the pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairState {
    /// Write-magnet direction (unit vector).
    pub m_w: Vec3,
    /// Read-magnet direction (unit vector).
    pub m_r: Vec3,
}

impl PairState {
    /// Both magnets on the easy axis: W along `w_sign`·x, R anti-parallel.
    pub fn settled(w_sign: f64) -> Self {
        PairState {
            m_w: Vec3::X * w_sign.signum(),
            m_r: Vec3::X * (-w_sign.signum()),
        }
    }

    /// Renormalizes both members to unit length.
    pub fn normalized(self) -> Self {
        PairState {
            m_w: self.m_w.normalized(),
            m_r: self.m_r.normalized(),
        }
    }
}

impl LlgsSystem {
    /// Builds the coupled system from the switch parameters; the W→R
    /// separation is `params.coupling_distance` along +z.
    pub fn new(params: &SwitchParams) -> Self {
        LlgsSystem {
            write: MagnetDynamics::new(params.write),
            read: MagnetDynamics::new(params.read),
            coupling_w_to_r: DipolarCoupling::new(&params.write, params.coupling_distance, Vec3::Z),
            coupling_r_to_w: DipolarCoupling::new(&params.read, params.coupling_distance, -Vec3::Z),
        }
    }

    /// Joint `d(m_w, m_r)/dt` under spin current `i_s` polarized along `p`,
    /// with thermal field realizations `h_th_w`, `h_th_r` (A/m).
    pub fn rhs(
        &self,
        state: PairState,
        i_s: f64,
        p: Vec3,
        h_th_w: Vec3,
        h_th_r: Vec3,
    ) -> (Vec3, Vec3) {
        let h_w = self
            .write
            .field_deterministic(state.m_w, self.coupling_r_to_w.field(state.m_r) + h_th_w);
        let h_r = self
            .read
            .field_deterministic(state.m_r, self.coupling_w_to_r.field(state.m_w) + h_th_r);
        let dw = self.write.rhs(state.m_w, h_w, i_s, p);
        let dr = self.read.rhs(state.m_r, h_r, 0.0, Vec3::ZERO);
        (dw, dr)
    }

    /// Thermal field generators for both magnets at `temperature` and step
    /// `dt`.
    pub fn thermal_fields(&self, temperature: f64, dt: f64) -> (ThermalField, ThermalField) {
        (
            ThermalField::new(&self.write.nm, temperature, dt),
            ThermalField::new(&self.read.nm, temperature, dt),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_i_system() -> LlgsSystem {
        LlgsSystem::new(&SwitchParams::table_i())
    }

    #[test]
    fn torque_is_orthogonal_to_m() {
        let sys = table_i_system();
        let m = Vec3::new(0.6, 0.64, 0.48).normalized();
        let h = Vec3::new(1e4, -2e4, 5e3);
        let t = sys.write.torque(m, h, 20e-6, Vec3::X);
        // Every contribution is a cross product with m on the left,
        // so dm/dt ⊥ m and |m| is conserved by the exact flow.
        assert!(t.total().dot(m).abs() < 1e-3 * t.total().norm().max(1.0));
    }

    #[test]
    fn damping_reduces_angle_to_field() {
        // Pure damping must rotate m toward H.
        let sys = table_i_system();
        let m = Vec3::new(0.0, 1.0, 0.0);
        let h = Vec3::new(1e5, 0.0, 0.0);
        let t = sys.write.torque(m, h, 0.0, Vec3::ZERO);
        // Damping component points from m toward h.
        assert!(t.damping.x > 0.0);
    }

    #[test]
    fn stt_pushes_toward_polarization() {
        let sys = table_i_system();
        // m slightly tilted away from −x; p = +x; positive spin current
        // must push m_x upward (anti-damping switching).
        let m = Vec3::new(-0.98, 0.199, 0.0).normalized();
        let t = sys.write.torque(m, Vec3::ZERO, 20e-6, Vec3::X);
        assert!(t.stt.x > 0.0, "stt = {:?}", t.stt);
    }

    #[test]
    fn stt_field_scale_matches_hand_calculation() {
        let sys = table_i_system();
        // a_j = ħ·20µA/(2e·μ0·1e6·8.4e-25) ≈ 6.24e3 A/m.
        let a_j = sys.write.spin_torque_field(20e-6);
        assert!((a_j - 6.24e3).abs() / 6.24e3 < 0.02, "a_j = {a_j}");
    }

    #[test]
    fn critical_current_is_below_20ua() {
        // The paper's deterministic threshold (20 µA) must exceed the
        // macrospin critical current for the Table I parameters.
        let sys = table_i_system();
        let ic = sys.write.critical_current();
        assert!(ic < 20e-6, "critical current {ic} A");
        assert!(ic > 1e-6, "critical current suspiciously small: {ic} A");
    }

    #[test]
    fn settled_state_is_stationary_without_drive() {
        let sys = table_i_system();
        let s = PairState::settled(1.0);
        let (dw, dr) = sys.rhs(s, 0.0, Vec3::X, Vec3::ZERO, Vec3::ZERO);
        // On-axis, anti-parallel pair: all torques vanish identically.
        assert!(dw.norm() < 1e-6, "dw = {dw:?}");
        assert!(dr.norm() < 1e-6, "dr = {dr:?}");
    }

    #[test]
    fn read_magnet_feels_restoring_coupling() {
        // W settled at +x, R *parallel* (wrong minimum): over time the
        // negative dipolar coupling must drive R away from +x and into the
        // anti-parallel ground state. (The instantaneous torque is dominated
        // by precession, so we check the time-evolved trajectory.)
        use crate::integrator::Integrator as _;
        let sys = table_i_system();
        let integ = crate::integrator::MidpointIntegrator::default();
        let mut s = PairState {
            m_w: Vec3::X,
            m_r: Vec3::new(0.98, 0.199, 0.0).normalized(),
        };
        for _ in 0..8_000 {
            s = integ
                .step(&sys, s, 0.0, Vec3::X, Vec3::ZERO, Vec3::ZERO, 1e-12)
                .unwrap();
        }
        assert!(s.m_r.x < -0.9, "m_r = {:?}", s.m_r);
        assert!(s.m_w.x > 0.9, "m_w = {:?}", s.m_w);
    }

    #[test]
    fn rhs_scales_linearly_in_thermal_field_direction() {
        let sys = table_i_system();
        let s = PairState {
            m_w: Vec3::new(0.6, 0.8, 0.0),
            m_r: -Vec3::X,
        };
        let (d0, _) = sys.rhs(s, 0.0, Vec3::X, Vec3::ZERO, Vec3::ZERO);
        let (d1, _) = sys.rhs(s, 0.0, Vec3::X, Vec3::new(0.0, 0.0, 1e3), Vec3::ZERO);
        assert!((d1 - d0).norm() > 0.0);
    }

    #[test]
    fn pair_state_settled_is_antiparallel_unit() {
        let s = PairState::settled(-1.0);
        assert_eq!(s.m_w, -Vec3::X);
        assert_eq!(s.m_r, Vec3::X);
        assert!((s.m_w.norm() - 1.0).abs() < 1e-12);
    }
}
