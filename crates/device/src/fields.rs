//! Effective-field contributions entering the LLGS equation.
//!
//! The total effective field acting on a nanomagnet is
//!
//! ```text
//! H_eff = H_anisotropy + H_demag + H_dipolar + H_thermal
//! ```
//!
//! with every term in A/m. The demagnetization tensor of the rectangular
//! prism uses Aharoni's analytic expressions (A. Aharoni, *J. Appl. Phys.*
//! 83, 3432 (1998)); the thermal field follows Brown's fluctuation–dissipation
//! result, and the mutual dipolar coupling between the stacked W and R
//! nanomagnets is evaluated in the point-dipole approximation — negative
//! (anti-parallel-favoring) for in-plane easy axes stacked along z, exactly
//! the configuration of Fig. 1.

use crate::consts::{GAMMA_E, K_B, MU_0};
use crate::material::Nanomagnet;
use crate::vec3::Vec3;
use rand::Rng;
use rand_distr_normal::StandardNormal;

/// A tiny vendored standard-normal sampler (Marsaglia polar method) so the
/// crate only depends on `rand`'s core traits.
mod rand_distr_normal {
    use rand::Rng;

    /// Distribution of a standard normal variate.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct StandardNormal;

    impl StandardNormal {
        /// Draws one N(0,1) sample using the Marsaglia polar method.
        pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            loop {
                let u: f64 = rng.gen_range(-1.0..1.0);
                let v: f64 = rng.gen_range(-1.0..1.0);
                let s = u * u + v * v;
                if s > 0.0 && s < 1.0 {
                    return u * (-2.0 * s.ln() / s).sqrt();
                }
            }
        }
    }
}

fn aharoni_nz(a: f64, b: f64, c: f64) -> f64 {
    // Aharoni's Nz for a prism with semi-axes a, b, c along x, y, z.
    let r_abc = (a * a + b * b + c * c).sqrt();
    let r_ab = (a * a + b * b).sqrt();
    let r_bc = (b * b + c * c).sqrt();
    let r_ac = (a * a + c * c).sqrt();

    let term1 = (b * b - c * c) / (2.0 * b * c) * ((r_abc - a) / (r_abc + a)).ln();
    let term2 = (a * a - c * c) / (2.0 * a * c) * ((r_abc - b) / (r_abc + b)).ln();
    let term3 = b / (2.0 * c) * ((r_ab + a) / (r_ab - a)).ln();
    let term4 = a / (2.0 * c) * ((r_ab + b) / (r_ab - b)).ln();
    let term5 = c / (2.0 * a) * ((r_bc - b) / (r_bc + b)).ln();
    let term6 = c / (2.0 * b) * ((r_ac - a) / (r_ac + a)).ln();
    let term7 = 2.0 * (a * b / (c * r_abc)).atan();
    let term8 = (a.powi(3) + b.powi(3) - 2.0 * c.powi(3)) / (3.0 * a * b * c);
    let term9 = (a * a + b * b - 2.0 * c * c) / (3.0 * a * b * c) * r_abc;
    let term10 = c / (a * b) * (r_ac + r_bc);
    let term11 = -(r_ab.powi(3) + r_bc.powi(3) + r_ac.powi(3)) / (3.0 * a * b * c);

    (term1 + term2 + term3 + term4 + term5 + term6 + term7 + term8 + term9 + term10 + term11)
        / std::f64::consts::PI
}

/// Demagnetization factors `(Nx, Ny, Nz)` of a rectangular prism with edge
/// lengths `lx`, `ly`, `lz` (Aharoni 1998). The factors satisfy
/// `Nx + Ny + Nz = 1`.
///
/// ```
/// use gshe_device::demag_factors;
///
/// let n = demag_factors(10e-9, 10e-9, 10e-9);
/// assert!((n.x - 1.0 / 3.0).abs() < 1e-9); // a cube is isotropic
/// ```
///
/// # Panics
///
/// Panics if any edge length is not strictly positive.
pub fn demag_factors(lx: f64, ly: f64, lz: f64) -> Vec3 {
    assert!(
        lx > 0.0 && ly > 0.0 && lz > 0.0,
        "edge lengths must be positive"
    );
    let (a, b, c) = (lx / 2.0, ly / 2.0, lz / 2.0);
    // Nz from (a, b, c); Nx and Ny by cyclic permutation of the semi-axes.
    let nz = aharoni_nz(a, b, c);
    let nx = aharoni_nz(b, c, a);
    let ny = aharoni_nz(c, a, b);
    Vec3::new(nx, ny, nz)
}

/// Uniaxial magnetocrystalline anisotropy with easy axis `axis`:
/// `H = H_k (m · ê) ê`, `H_k = 2 K_u / (μ₀ M_s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniaxialAnisotropy {
    /// Anisotropy field magnitude H_k, A/m.
    pub h_k: f64,
    /// Unit easy axis.
    pub axis: Vec3,
}

impl UniaxialAnisotropy {
    /// Builds the anisotropy for a nanomagnet with easy axis along `axis`.
    pub fn for_magnet(nm: &Nanomagnet, axis: Vec3) -> Self {
        UniaxialAnisotropy {
            h_k: nm.anisotropy_field(),
            axis: axis.normalized(),
        }
    }

    /// Field at magnetization `m`, A/m.
    pub fn field(&self, m: Vec3) -> Vec3 {
        self.axis * (self.h_k * m.dot(self.axis))
    }

    /// Energy density −μ₀ M_s H_k (m·ê)²/2 relative offset, J/m³ (for tests).
    pub fn energy_density(&self, m: Vec3, ms: f64) -> f64 {
        -0.5 * MU_0 * ms * self.h_k * m.dot(self.axis).powi(2)
    }
}

/// Demagnetizing (shape-anisotropy) field `H = −M_s N m` with the diagonal
/// demag tensor `N` from [`demag_factors`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demagnetization {
    /// Diagonal demag factors.
    pub n: Vec3,
    /// Saturation magnetization, A/m.
    pub ms: f64,
}

impl Demagnetization {
    /// Builds the demag field model for a nanomagnet.
    pub fn for_magnet(nm: &Nanomagnet) -> Self {
        Demagnetization {
            n: nm.demag(),
            ms: nm.ms,
        }
    }

    /// Field at magnetization `m`, A/m.
    pub fn field(&self, m: Vec3) -> Vec3 {
        -Vec3::new(self.n.x * m.x, self.n.y * m.y, self.n.z * m.z) * self.ms
    }
}

/// Mutual dipolar coupling between two stacked nanomagnets in the
/// point-dipole approximation.
///
/// The field at the *target* magnet produced by the *source* magnet with
/// magnetization direction `m_src` is
///
/// ```text
/// H = (M_s,src V_src / 4π d³) · (3 (m_src · r̂) r̂ − m_src)
/// ```
///
/// For the GSHE stack, `r̂ = ẑ` while both easy axes lie in-plane, so the
/// coupling reduces to `−(M_s V / 4π d³) m_src` — *negative* coupling that
/// favors anti-parallel alignment, which is what flips the R-NM opposite to
/// the W-NM (paper Sec. III-A, footnote 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DipolarCoupling {
    /// Moment of the source magnet M_s V, A m².
    pub source_moment: f64,
    /// Center-to-center distance, m.
    pub distance: f64,
    /// Unit vector from source to target.
    pub direction: Vec3,
}

impl DipolarCoupling {
    /// Coupling produced by `source` at a magnet `distance` away along
    /// `direction` (unit vector).
    pub fn new(source: &Nanomagnet, distance: f64, direction: Vec3) -> Self {
        DipolarCoupling {
            source_moment: source.moment(),
            distance,
            direction: direction.normalized(),
        }
    }

    /// Coupling strength prefactor M_s V / (4π d³), A/m.
    pub fn strength(&self) -> f64 {
        self.source_moment / (4.0 * std::f64::consts::PI * self.distance.powi(3))
    }

    /// Field at the target given the source magnetization direction, A/m.
    pub fn field(&self, m_src: Vec3) -> Vec3 {
        let r = self.direction;
        (r * (3.0 * m_src.dot(r)) - m_src) * self.strength()
    }
}

/// Brown's thermal fluctuation field.
///
/// Each Cartesian component is an independent Gaussian with standard
/// deviation `σ_H = sqrt(2 α k_B T / (μ₀² γ M_s V Δt))` per time step
/// (Stratonovich interpretation; the midpoint integrator evaluates the
/// deterministic drift at the half step, consistent with this choice).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalField {
    sigma: f64,
}

impl ThermalField {
    /// Builds the thermal field model for a magnet at `temperature` with
    /// integrator step `dt`.
    pub fn new(nm: &Nanomagnet, temperature: f64, dt: f64) -> Self {
        let variance =
            2.0 * nm.alpha * K_B * temperature / (MU_0 * MU_0 * GAMMA_E * nm.ms * nm.volume() * dt);
        ThermalField {
            sigma: variance.sqrt(),
        }
    }

    /// A zero-strength thermal field (for deterministic, T = 0 runs).
    pub fn zero() -> Self {
        ThermalField { sigma: 0.0 }
    }

    /// Per-component standard deviation, A/m.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Samples one realization of the fluctuating field, A/m.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec3 {
        if self.sigma == 0.0 {
            return Vec3::ZERO;
        }
        let n = StandardNormal;
        Vec3::new(
            self.sigma * n.sample(rng),
            self.sigma * n.sample(rng),
            self.sigma * n.sample(rng),
        )
    }
}

/// Equilibrium polar-angle standard deviation around the easy axis,
/// `σ_θ ≈ sqrt(k_B T / (2 K_u V))` — used to thermalize initial states.
pub fn equilibrium_angle_sigma(nm: &Nanomagnet, temperature: f64) -> f64 {
    (K_B * temperature / (2.0 * nm.ku * nm.volume())).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn demag_factors_sum_to_one() {
        for dims in [
            (28e-9, 15e-9, 2e-9),
            (10e-9, 10e-9, 10e-9),
            (100e-9, 5e-9, 1e-9),
            (1e-9, 2e-9, 3e-9),
        ] {
            let n = demag_factors(dims.0, dims.1, dims.2);
            assert!(
                (n.x + n.y + n.z - 1.0).abs() < 1e-9,
                "sum = {} for {dims:?}",
                n.x + n.y + n.z
            );
        }
    }

    #[test]
    fn demag_cube_is_one_third() {
        let n = demag_factors(7e-9, 7e-9, 7e-9);
        for c in [n.x, n.y, n.z] {
            assert!((c - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn demag_thin_film_limit() {
        // A very thin, wide film has Nz → 1, Nx, Ny → 0.
        let n = demag_factors(1e-6, 1e-6, 1e-9);
        assert!(n.z > 0.99, "Nz = {}", n.z);
        assert!(n.x < 0.01 && n.y < 0.01);
    }

    #[test]
    fn demag_ordering_follows_geometry() {
        // Longest axis has the smallest factor.
        let n = demag_factors(28e-9, 15e-9, 2e-9);
        assert!(n.x < n.y && n.y < n.z, "{n:?}");
        // Easy plane: z is strongly unfavorable for the W-NM.
        assert!(n.z > 0.6);
    }

    #[test]
    fn demag_permutation_consistency() {
        let n1 = demag_factors(28e-9, 15e-9, 2e-9);
        let n2 = demag_factors(15e-9, 2e-9, 28e-9);
        // Cyclic permutation of the geometry permutes the factors.
        assert!((n1.x - n2.z).abs() < 1e-12);
        assert!((n1.y - n2.x).abs() < 1e-12);
        assert!((n1.z - n2.y).abs() < 1e-12);
    }

    #[test]
    fn anisotropy_field_is_along_axis_and_even() {
        let w = Nanomagnet::write_nm();
        let ua = UniaxialAnisotropy::for_magnet(&w, Vec3::X);
        let h = ua.field(Vec3::new(0.8, 0.6, 0.0));
        assert!(h.y == 0.0 && h.z == 0.0);
        assert!(h.x > 0.0);
        // Reversing m reverses the field (even energy).
        let h2 = ua.field(Vec3::new(-0.8, 0.6, 0.0));
        assert!((h2.x + h.x).abs() < 1e-9);
    }

    #[test]
    fn dipolar_coupling_is_negative_for_in_plane_stack() {
        let w = Nanomagnet::write_nm();
        let c = DipolarCoupling::new(&w, 15e-9, Vec3::Z);
        let h = c.field(Vec3::X);
        // In-plane source magnetization → field anti-parallel to it.
        assert!(h.x < 0.0);
        assert!((h.y).abs() < 1e-12 && (h.z).abs() < 1e-12);
    }

    #[test]
    fn dipolar_coupling_beats_read_anisotropy_at_table_i_distance() {
        // The design requirement: the W-NM must be able to flip the R-NM.
        let w = Nanomagnet::write_nm();
        let r = Nanomagnet::read_nm();
        let c = DipolarCoupling::new(&w, 15e-9, Vec3::Z);
        assert!(
            c.strength() > r.anisotropy_field(),
            "coupling {} vs Hk {}",
            c.strength(),
            r.anisotropy_field()
        );
    }

    #[test]
    fn dipolar_field_decays_cubically() {
        let w = Nanomagnet::write_nm();
        let c1 = DipolarCoupling::new(&w, 10e-9, Vec3::Z);
        let c2 = DipolarCoupling::new(&w, 20e-9, Vec3::Z);
        assert!((c1.strength() / c2.strength() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_sigma_scales_with_sqrt_temperature_and_inverse_dt() {
        let w = Nanomagnet::write_nm();
        let t300 = ThermalField::new(&w, 300.0, 1e-12);
        let t75 = ThermalField::new(&w, 75.0, 1e-12);
        assert!((t300.sigma() / t75.sigma() - 2.0).abs() < 1e-9);
        let dt4 = ThermalField::new(&w, 300.0, 4e-12);
        assert!((t300.sigma() / dt4.sigma() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_zero_is_silent() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(ThermalField::zero().sample(&mut rng), Vec3::ZERO);
    }

    #[test]
    fn thermal_samples_have_expected_moments() {
        let w = Nanomagnet::write_nm();
        let tf = ThermalField::new(&w, 300.0, 1e-12);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let h = tf.sample(&mut rng);
            sum += h.x;
            sum_sq += h.x * h.x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 3.0 * tf.sigma() / (n as f64).sqrt() * 3.0);
        assert!((var / (tf.sigma() * tf.sigma()) - 1.0).abs() < 0.05);
    }

    #[test]
    fn equilibrium_angle_is_moderate_for_low_barrier_magnet() {
        let w = Nanomagnet::write_nm();
        let sigma = equilibrium_angle_sigma(&w, 300.0);
        // Δ ≈ 5 → σ_θ ≈ 0.31 rad.
        assert!(sigma > 0.2 && sigma < 0.4, "sigma = {sigma}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn demag_rejects_zero_edges() {
        let _ = demag_factors(0.0, 1e-9, 1e-9);
    }
}
