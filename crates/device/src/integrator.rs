//! Time integrators for the coupled sLLGS system.
//!
//! Two schemes are provided:
//!
//! * [`MidpointIntegrator`] — the implicit midpoint rule of d'Aquino et al.
//!   (*J. Appl. Phys.* 99, 08B905 (2006); the paper's ref. \[29\]). The
//!   update `m⁺ = m + Δt f((m + m⁺)/2)` is solved by fixed-point iteration.
//!   Because `f ⊥ m_mid`, the rule conserves `|m|` exactly in exact
//!   arithmetic; we renormalize once per step to remove the residual
//!   floating-point drift. The thermal field is evaluated once per step,
//!   consistent with the Stratonovich interpretation.
//! * [`StochasticHeun`] — the standard explicit predictor–corrector for
//!   Stratonovich SDEs, used as a cross-check (ablation bench
//!   `benches/device.rs` compares the two).

use crate::error::DeviceError;
use crate::llgs::{LlgsSystem, PairState};
use crate::vec3::Vec3;

/// One integration step for the coupled pair.
///
/// Implementations advance `state` by `dt` seconds under spin current `i_s`
/// polarized along `p`, with frozen thermal-field realizations `h_th_w`,
/// `h_th_r` for the step.
pub trait Integrator {
    /// Advances the joint state by one step.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::MidpointDiverged`] if an implicit solve fails
    /// to converge.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        sys: &LlgsSystem,
        state: PairState,
        i_s: f64,
        p: Vec3,
        h_th_w: Vec3,
        h_th_r: Vec3,
        dt: f64,
    ) -> Result<PairState, DeviceError>;

    /// Human-readable scheme name.
    fn name(&self) -> &'static str;
}

/// Which integrator a simulation should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegratorKind {
    /// Implicit midpoint (default, norm-preserving).
    #[default]
    Midpoint,
    /// Stochastic Heun predictor–corrector.
    Heun,
}

impl IntegratorKind {
    /// Instantiates the integrator with default settings.
    pub fn build(self) -> Box<dyn Integrator + Send + Sync> {
        match self {
            IntegratorKind::Midpoint => Box::new(MidpointIntegrator::default()),
            IntegratorKind::Heun => Box::new(StochasticHeun),
        }
    }
}

/// Implicit midpoint rule solved by fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MidpointIntegrator {
    /// Maximum fixed-point iterations per step.
    pub max_iterations: usize,
    /// Convergence tolerance on the joint update (infinity norm).
    pub tolerance: f64,
}

impl Default for MidpointIntegrator {
    fn default() -> Self {
        MidpointIntegrator {
            max_iterations: 16,
            tolerance: 1e-12,
        }
    }
}

impl Integrator for MidpointIntegrator {
    fn step(
        &self,
        sys: &LlgsSystem,
        state: PairState,
        i_s: f64,
        p: Vec3,
        h_th_w: Vec3,
        h_th_r: Vec3,
        dt: f64,
    ) -> Result<PairState, DeviceError> {
        // Fixed-point iteration on m⁺ = m + dt f((m + m⁺)/2).
        let mut next = state;
        // Warm start with an explicit Euler predictor.
        let (dw0, dr0) = sys.rhs(state, i_s, p, h_th_w, h_th_r);
        next.m_w = state.m_w + dw0 * dt;
        next.m_r = state.m_r + dr0 * dt;

        let mut residual = f64::INFINITY;
        for _ in 0..self.max_iterations {
            let mid = PairState {
                m_w: (state.m_w + next.m_w) * 0.5,
                m_r: (state.m_r + next.m_r) * 0.5,
            };
            let (dw, dr) = sys.rhs(mid, i_s, p, h_th_w, h_th_r);
            let cand = PairState {
                m_w: state.m_w + dw * dt,
                m_r: state.m_r + dr * dt,
            };
            residual = (cand.m_w - next.m_w)
                .max_abs()
                .max((cand.m_r - next.m_r).max_abs());
            next = cand;
            if residual < self.tolerance {
                break;
            }
        }
        if !(residual.is_finite()) || !next.m_w.is_finite() || !next.m_r.is_finite() {
            return Err(DeviceError::MidpointDiverged {
                time: 0.0,
                residual,
            });
        }
        Ok(next.normalized())
    }

    fn name(&self) -> &'static str {
        "implicit-midpoint"
    }
}

/// Stochastic Heun (explicit trapezoidal predictor–corrector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StochasticHeun;

impl Integrator for StochasticHeun {
    fn step(
        &self,
        sys: &LlgsSystem,
        state: PairState,
        i_s: f64,
        p: Vec3,
        h_th_w: Vec3,
        h_th_r: Vec3,
        dt: f64,
    ) -> Result<PairState, DeviceError> {
        let (dw0, dr0) = sys.rhs(state, i_s, p, h_th_w, h_th_r);
        let pred = PairState {
            m_w: state.m_w + dw0 * dt,
            m_r: state.m_r + dr0 * dt,
        };
        let (dw1, dr1) = sys.rhs(pred, i_s, p, h_th_w, h_th_r);
        let next = PairState {
            m_w: state.m_w + (dw0 + dw1) * (0.5 * dt),
            m_r: state.m_r + (dr0 + dr1) * (0.5 * dt),
        };
        if !next.m_w.is_finite() || !next.m_r.is_finite() {
            return Err(DeviceError::MidpointDiverged {
                time: 0.0,
                residual: f64::NAN,
            });
        }
        Ok(next.normalized())
    }

    fn name(&self) -> &'static str {
        "stochastic-heun"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::SwitchParams;

    fn sys() -> LlgsSystem {
        LlgsSystem::new(&SwitchParams::table_i())
    }

    fn tilted() -> PairState {
        PairState {
            m_w: Vec3::new(-0.98, 0.15, 0.1).normalized(),
            m_r: Vec3::new(0.99, -0.1, 0.05).normalized(),
        }
    }

    #[test]
    fn midpoint_preserves_norm() {
        let sys = sys();
        let integ = MidpointIntegrator::default();
        let mut s = tilted();
        for _ in 0..500 {
            s = integ
                .step(&sys, s, 20e-6, Vec3::X, Vec3::ZERO, Vec3::ZERO, 1e-12)
                .unwrap();
            assert!((s.m_w.norm() - 1.0).abs() < 1e-12);
            assert!((s.m_r.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn heun_preserves_norm_after_renormalization() {
        let sys = sys();
        let integ = StochasticHeun;
        let mut s = tilted();
        for _ in 0..500 {
            s = integ
                .step(&sys, s, 20e-6, Vec3::X, Vec3::ZERO, Vec3::ZERO, 1e-12)
                .unwrap();
            assert!((s.m_w.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn midpoint_and_heun_agree_over_short_horizon() {
        let sys = sys();
        let mid = MidpointIntegrator::default();
        let heun = StochasticHeun;
        let mut a = tilted();
        let mut b = tilted();
        for _ in 0..200 {
            a = mid
                .step(&sys, a, 20e-6, Vec3::X, Vec3::ZERO, Vec3::ZERO, 0.5e-12)
                .unwrap();
            b = heun
                .step(&sys, b, 20e-6, Vec3::X, Vec3::ZERO, Vec3::ZERO, 0.5e-12)
                .unwrap();
        }
        // Deterministic drive, same initial condition: trajectories must
        // track each other to within the schemes' O(dt²) differences.
        assert!(
            (a.m_w - b.m_w).norm() < 1e-2,
            "divergence {}",
            (a.m_w - b.m_w).norm()
        );
    }

    #[test]
    fn relaxation_damps_toward_easy_axis() {
        let sys = sys();
        let integ = MidpointIntegrator::default();
        let mut s = PairState {
            m_w: Vec3::new(0.7, 0.7, 0.14).normalized(),
            m_r: Vec3::new(-0.7, -0.7, 0.14).normalized(),
        };
        for _ in 0..20_000 {
            s = integ
                .step(&sys, s, 0.0, Vec3::X, Vec3::ZERO, Vec3::ZERO, 1e-12)
                .unwrap();
        }
        // 20 ns of free relaxation: W settles on +x, R anti-parallel.
        assert!(s.m_w.x > 0.95, "m_w = {:?}", s.m_w);
        assert!(s.m_r.x < -0.95, "m_r = {:?}", s.m_r);
    }

    #[test]
    fn builder_returns_named_schemes() {
        assert_eq!(IntegratorKind::Midpoint.build().name(), "implicit-midpoint");
        assert_eq!(IntegratorKind::Heun.build().name(), "stochastic-heun");
        assert_eq!(IntegratorKind::default(), IntegratorKind::Midpoint);
    }
}
