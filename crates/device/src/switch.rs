//! The GSHE switch: coupled W/R macrospin pair with charge-current write and
//! resistive read-out.
//!
//! A write drives the spin-Hall layer with the *sum* of up to three charge
//! currents (logic inputs A, B and tie-break X; Fig. 2). The sign of the sum
//! selects the spin polarization `±x`; the spin current magnitude is
//! `I_S = β |I_C,total|`. The write nanomagnet switches under Slonczewski
//! torque, and the read nanomagnet follows anti-parallel through the negative
//! dipolar coupling. The binary state is then read out as an output current
//! whose direction encodes logic 1/0 (see [`crate::readout`]).

use crate::error::DeviceError;
use crate::integrator::{Integrator, MidpointIntegrator};
use crate::llgs::{LlgsSystem, PairState};
use crate::material::SwitchParams;
use crate::vec3::Vec3;
use rand::Rng;

/// Drive condition for one write operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteDrive {
    /// Spin current magnitude delivered to the W-NM, A (I_S = β I_C).
    pub spin_current: f64,
    /// Target logic state of the *write* magnet: `true` → +x.
    pub target: bool,
}

impl WriteDrive {
    /// Drive from a *net charge current* through the heavy metal;
    /// the sign picks the target state, the gain β amplifies the magnitude.
    pub fn from_charge_current(i_c: f64, beta: f64) -> Self {
        WriteDrive {
            spin_current: beta * i_c.abs(),
            target: i_c > 0.0,
        }
    }

    /// Spin polarization unit vector for this drive.
    pub fn polarization(&self) -> Vec3 {
        if self.target {
            Vec3::X
        } else {
            -Vec3::X
        }
    }
}

/// Result of one write attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchOutcome {
    /// Whether both magnets reached the target configuration within the
    /// horizon (W at target, R anti-parallel).
    pub switched: bool,
    /// Time at which the configuration was first reached, s
    /// (equal to the horizon when `switched` is `false`).
    pub delay: f64,
    /// Final write-magnet state.
    pub final_state: PairState,
}

/// A single GSHE switch instance with persistent magnetization state.
#[derive(Debug, Clone)]
pub struct GsheSwitch {
    params: SwitchParams,
    system: LlgsSystem,
    integrator: MidpointIntegrator,
    state: PairState,
    /// |m·x| must exceed this for a magnet to count as settled.
    settle_threshold: f64,
}

impl GsheSwitch {
    /// Creates a switch in the `W = −x, R = +x` configuration (logic 0 in
    /// the W magnet).
    ///
    /// # Panics
    ///
    /// Panics if `params` fails validation; use [`SwitchParams::validate`]
    /// first when handling untrusted input.
    pub fn new(params: SwitchParams) -> Self {
        params.validate().expect("invalid switch parameters");
        GsheSwitch {
            system: LlgsSystem::new(&params),
            integrator: MidpointIntegrator::default(),
            state: PairState::settled(-1.0),
            settle_threshold: 0.7,
            params,
        }
    }

    /// The parameter set the switch was built with.
    pub fn params(&self) -> &SwitchParams {
        &self.params
    }

    /// The coupled LLGS system.
    pub fn system(&self) -> &LlgsSystem {
        &self.system
    }

    /// Current magnetization state.
    pub fn state(&self) -> PairState {
        self.state
    }

    /// Logic state stored in the write magnet (`true` = +x).
    pub fn write_state(&self) -> bool {
        self.state.m_w.x > 0.0
    }

    /// Logic state visible at the read magnet (anti-parallel to W when
    /// settled, i.e. `!write_state` for a healthy device).
    pub fn read_state(&self) -> bool {
        self.state.m_r.x > 0.0
    }

    /// Forces the magnetization to the settled configuration for `w_state`.
    pub fn set_state(&mut self, w_state: bool) {
        self.state = PairState::settled(if w_state { 1.0 } else { -1.0 });
    }

    /// Deterministic (T = 0) write from a reproducible small initial tilt.
    ///
    /// The tilt angle equals the room-temperature equilibrium angle so the
    /// deterministic run is representative of the thermal ensemble mean.
    pub fn write_deterministic(&mut self, spin_current: f64, target: bool) -> SwitchOutcome {
        let theta0 =
            crate::fields::equilibrium_angle_sigma(&self.params.write, self.params.temperature);
        let w_sign = if self.write_state() { 1.0 } else { -1.0 };
        self.state = PairState {
            m_w: Vec3::new(w_sign * theta0.cos(), theta0.sin(), 0.0).normalized(),
            m_r: Vec3::new(-w_sign * theta0.cos(), -theta0.sin(), 0.0).normalized(),
        };
        let drive = WriteDrive {
            spin_current,
            target,
        };
        self.evolve(drive, None::<&mut rand::rngs::ThreadRng>)
    }

    /// Thermal write: the initial state is thermalized around the current
    /// configuration and the trajectory includes the Brownian field.
    pub fn write_thermal<R: Rng + ?Sized>(
        &mut self,
        spin_current: f64,
        target: bool,
        rng: &mut R,
    ) -> SwitchOutcome {
        let w_sign = if self.write_state() { 1.0 } else { -1.0 };
        self.state = thermalized_state(&self.params, w_sign, rng);
        let drive = WriteDrive {
            spin_current,
            target,
        };
        self.evolve(drive, Some(rng))
    }

    /// Free evolution (no drive) for `duration` seconds with thermal noise.
    pub fn relax<R: Rng + ?Sized>(&mut self, duration: f64, rng: &mut R) {
        let dt = self.params.dt;
        let (tf_w, tf_r) = self.system.thermal_fields(self.params.temperature, dt);
        let steps = (duration / dt).ceil() as usize;
        for _ in 0..steps {
            let h_w = tf_w.sample(rng);
            let h_r = tf_r.sample(rng);
            if let Ok(next) =
                self.integrator
                    .step(&self.system, self.state, 0.0, Vec3::X, h_w, h_r, dt)
            {
                self.state = next;
            }
        }
    }

    fn evolve<R: Rng + ?Sized>(
        &mut self,
        drive: WriteDrive,
        mut rng: Option<&mut R>,
    ) -> SwitchOutcome {
        let dt = self.params.dt;
        let p = drive.polarization();
        let target_sign = if drive.target { 1.0 } else { -1.0 };
        let (tf_w, tf_r) = self.system.thermal_fields(self.params.temperature, dt);
        let steps = (self.params.horizon / dt).ceil() as usize;

        for step in 0..steps {
            let (h_w, h_r) = match rng.as_deref_mut() {
                Some(r) => (tf_w.sample(r), tf_r.sample(r)),
                None => (Vec3::ZERO, Vec3::ZERO),
            };
            match self.integrator.step(
                &self.system,
                self.state,
                drive.spin_current,
                p,
                h_w,
                h_r,
                dt,
            ) {
                Ok(next) => self.state = next,
                Err(_) => break,
            }
            let settled = self.state.m_w.x * target_sign > self.settle_threshold
                && self.state.m_r.x * target_sign < -self.settle_threshold;
            if settled {
                return SwitchOutcome {
                    switched: true,
                    delay: (step + 1) as f64 * dt,
                    final_state: self.state,
                };
            }
        }
        SwitchOutcome {
            switched: false,
            delay: self.params.horizon,
            final_state: self.state,
        }
    }

    /// Performs a write and reports an error on timeout.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::SwitchTimeout`] when the magnet fails to reach
    /// the target configuration within the horizon.
    pub fn try_write_deterministic(
        &mut self,
        spin_current: f64,
        target: bool,
    ) -> Result<SwitchOutcome, DeviceError> {
        let out = self.write_deterministic(spin_current, target);
        if out.switched {
            Ok(out)
        } else {
            Err(DeviceError::SwitchTimeout {
                horizon: self.params.horizon,
            })
        }
    }
}

/// Samples a thermalized initial state around the settled configuration with
/// write magnet along `w_sign`·x.
pub(crate) fn thermalized_state<R: Rng + ?Sized>(
    params: &SwitchParams,
    w_sign: f64,
    rng: &mut R,
) -> PairState {
    let sample_tilt = |nm: &crate::material::Nanomagnet, sign: f64, rng: &mut R| -> Vec3 {
        let sigma = crate::fields::equilibrium_angle_sigma(nm, params.temperature);
        // Folded-Gaussian polar angle, uniform azimuth about the easy axis.
        let u: f64 = rng.gen_range(-1.0f64..1.0);
        let v: f64 = rng.gen_range(-1.0f64..1.0);
        let s = u * u + v * v;
        let theta = if s > 0.0 && s < 1.0 {
            (u * (-2.0 * s.ln() / s).sqrt() * sigma).abs()
        } else {
            sigma
        };
        let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        Vec3::new(
            sign * theta.cos(),
            theta.sin() * phi.cos(),
            theta.sin() * phi.sin(),
        )
    };
    PairState {
        m_w: sample_tilt(&params.write, w_sign, rng),
        m_r: sample_tilt(&params.read, -w_sign, rng),
    }
    .normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_write_switches_at_20ua() {
        let mut sw = GsheSwitch::new(SwitchParams::table_i());
        assert!(!sw.write_state());
        let out = sw.write_deterministic(20e-6, true);
        assert!(out.switched, "did not switch: {out:?}");
        assert!(sw.write_state());
        // Read magnet is anti-parallel: logic inversion built into the pair.
        assert!(!sw.read_state());
        assert!(
            out.delay > 0.1e-9 && out.delay < 10e-9,
            "delay = {}",
            out.delay
        );
    }

    #[test]
    fn deterministic_write_switches_both_directions() {
        let mut sw = GsheSwitch::new(SwitchParams::table_i());
        let up = sw.write_deterministic(20e-6, true);
        assert!(up.switched && sw.write_state());
        let down = sw.write_deterministic(20e-6, false);
        assert!(down.switched && !sw.write_state());
        assert!(sw.read_state());
    }

    #[test]
    fn subcritical_current_does_not_switch() {
        let mut sw = GsheSwitch::new(SwitchParams::table_i());
        // Far below the critical current: no deterministic switching.
        let out = sw.write_deterministic(0.5e-6, true);
        assert!(!out.switched);
        assert!(!sw.write_state());
    }

    #[test]
    fn rewrite_to_same_state_is_fast() {
        let mut sw = GsheSwitch::new(SwitchParams::table_i());
        sw.write_deterministic(20e-6, true);
        let again = sw.write_deterministic(20e-6, true);
        assert!(again.switched);
        // No reversal needed: the "delay" is just settle detection.
        assert!(again.delay <= 1.0e-9, "delay = {}", again.delay);
    }

    #[test]
    fn higher_current_switches_faster() {
        let mut sw = GsheSwitch::new(SwitchParams::table_i());
        let d20 = sw.write_deterministic(20e-6, true).delay;
        sw.set_state(false);
        let d100 = sw.write_deterministic(100e-6, true).delay;
        assert!(d100 < d20, "d100 = {d100}, d20 = {d20}");
    }

    #[test]
    fn thermal_write_switches_reliably_at_20ua() {
        let mut sw = GsheSwitch::new(SwitchParams::table_i());
        let mut rng = StdRng::seed_from_u64(1);
        let mut ok = 0;
        let trials = 20;
        for i in 0..trials {
            sw.set_state(i % 2 == 0);
            let out = sw.write_thermal(20e-6, i % 2 != 0, &mut rng);
            ok += out.switched as usize;
        }
        // "Deterministic switching behavior" at I_S ≥ 20 µA.
        assert!(ok >= trials - 1, "only {ok}/{trials} switched");
    }

    #[test]
    fn write_drive_from_charge_current() {
        let d = WriteDrive::from_charge_current(-5e-6, 6.0);
        assert!(!d.target);
        assert!((d.spin_current - 30e-6).abs() < 1e-12);
        assert_eq!(d.polarization(), -Vec3::X);
    }

    #[test]
    fn try_write_reports_timeout() {
        let mut sw = GsheSwitch::new(SwitchParams::table_i());
        let err = sw.try_write_deterministic(0.1e-6, true).unwrap_err();
        assert!(matches!(err, DeviceError::SwitchTimeout { .. }));
    }

    #[test]
    fn relax_preserves_settled_state() {
        let mut sw = GsheSwitch::new(SwitchParams::table_i());
        sw.set_state(true);
        let mut rng = StdRng::seed_from_u64(3);
        sw.relax(1e-9, &mut rng);
        assert!(sw.write_state());
        assert!(!sw.read_state());
    }
}
