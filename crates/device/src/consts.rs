//! Physical constants (CODATA 2018 exact/recommended values), SI units.

/// Gyromagnetic ratio of the free electron, rad s⁻¹ T⁻¹.
pub const GAMMA_E: f64 = 1.760_859_630_23e11;

/// Vacuum permeability μ₀, T m A⁻¹ (≈ 4π × 10⁻⁷).
pub const MU_0: f64 = 1.256_637_062_12e-6;

/// Boltzmann constant k_B, J K⁻¹ (exact).
pub const K_B: f64 = 1.380_649e-23;

/// Reduced Planck constant ħ, J s (exact).
pub const H_BAR: f64 = 1.054_571_817e-34;

/// Elementary charge e, C (exact).
pub const Q_E: f64 = 1.602_176_634e-19;

/// Bohr magneton μ_B, J T⁻¹.
pub const MU_B: f64 = 9.274_010_078_3e-24;

/// Room temperature used throughout the paper's simulations, K.
pub const ROOM_TEMPERATURE: f64 = 300.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu0_is_close_to_4pi_e7() {
        let four_pi_e7 = 4.0 * std::f64::consts::PI * 1e-7;
        assert!((MU_0 - four_pi_e7).abs() / four_pi_e7 < 1e-9);
    }

    #[test]
    fn bohr_magneton_consistency() {
        // μ_B = e ħ / (2 m_e); check against m_e = 9.1093837015e-31 kg.
        let m_e = 9.109_383_701_5e-31;
        let mu_b = Q_E * H_BAR / (2.0 * m_e);
        assert!((mu_b - MU_B).abs() / MU_B < 1e-6);
    }

    #[test]
    fn gamma_from_g_factor() {
        // γ = g μ_B / ħ with g ≈ 2.002319.
        let g = 2.002_319_304_362_56;
        let gamma = g * MU_B / H_BAR;
        assert!((gamma - GAMMA_E).abs() / GAMMA_E < 1e-6);
    }
}
