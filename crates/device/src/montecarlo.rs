//! Monte Carlo characterization of switching delays (paper Fig. 4).
//!
//! The paper obtains three delay distributions from 100,000 sLLGS runs at
//! I_S ∈ {20, 60, 100} µA: the spread and the mean shrink as the current
//! grows. [`MonteCarlo`] reproduces that experiment: each sample thermalizes
//! the initial state, integrates the coupled pair under thermal noise, and
//! records the first time the W/R pair reaches the target configuration.
//! Sampling is parallelized with `std::thread::scope`; a seeded
//! per-sample RNG keeps runs reproducible regardless of thread count.

use crate::material::SwitchParams;
use crate::switch::GsheSwitch;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One switching-delay observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySample {
    /// Spin current of the run, A.
    pub i_s: f64,
    /// Observed delay, s (the horizon if the run timed out).
    pub delay: f64,
    /// Whether the magnet switched within the horizon.
    pub switched: bool,
}

/// Configuration for a Monte Carlo sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloConfig {
    /// Device parameters.
    pub params: SwitchParams,
    /// Number of samples per current.
    pub samples: usize,
    /// Master seed; each sample derives its own `StdRng`.
    pub seed: u64,
    /// Number of worker threads (0 → available parallelism).
    pub threads: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            params: SwitchParams::table_i(),
            samples: 1000,
            seed: 0xD47E,
            threads: 0,
        }
    }
}

/// Monte Carlo driver.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    config: MonteCarloConfig,
}

impl MonteCarlo {
    /// Creates a driver with the given configuration.
    pub fn new(config: MonteCarloConfig) -> Self {
        MonteCarlo { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// Runs `samples` thermal switching events at spin current `i_s` and
    /// returns the raw samples (in sample-index order, reproducibly).
    pub fn run(&self, i_s: f64) -> Vec<DelaySample> {
        let n = self.config.samples;
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        let chunk = n.div_ceil(threads.max(1));
        let mut results: Vec<Option<DelaySample>> = vec![None; n];

        std::thread::scope(|scope| {
            for (t, slot) in results.chunks_mut(chunk).enumerate() {
                let params = self.config.params;
                let seed = self.config.seed;
                scope.spawn(move || {
                    let base = t * chunk;
                    for (j, out) in slot.iter_mut().enumerate() {
                        *out = Some(sample_at(&params, seed, (base + j) as u64, i_s));
                    }
                });
            }
        });

        results
            .into_iter()
            .map(|s| s.expect("all samples filled"))
            .collect()
    }

    /// Runs the samples with global indices `[start, start + count)` on
    /// the calling thread — the exact per-sample streams of the
    /// corresponding slice of [`MonteCarlo::run`], so chunked callers
    /// (e.g. budget-checked campaign jobs) reproduce a full run's numbers.
    pub fn run_range(&self, i_s: f64, start: usize, count: usize) -> Vec<DelaySample> {
        (start..start + count)
            .map(|idx| sample_at(&self.config.params, self.config.seed, idx as u64, i_s))
            .collect()
    }

    /// Runs the full Fig. 4 sweep over the given currents.
    pub fn sweep(&self, currents: &[f64]) -> Vec<(f64, DelayHistogram)> {
        currents
            .iter()
            .map(|&i_s| {
                let samples = self.run(i_s);
                (i_s, DelayHistogram::from_samples(&samples, 60, 6e-9))
            })
            .collect()
    }

    /// Probability that a write at `i_s` completes within `t_clk` seconds —
    /// the accuracy knob of the stochastic primitive (Sec. V-B: "the error
    /// rate for any switch can be tuned individually").
    pub fn switching_probability(&self, i_s: f64, t_clk: f64) -> f64 {
        let samples = self.run(i_s);
        let hits = samples
            .iter()
            .filter(|s| s.switched && s.delay <= t_clk)
            .count();
        hits as f64 / samples.len() as f64
    }
}

/// One seeded thermal switching event, keyed by its global sample index:
/// reproducible regardless of threading or chunking.
fn sample_at(params: &SwitchParams, seed: u64, idx: u64, i_s: f64) -> DelaySample {
    let mut rng = StdRng::seed_from_u64(seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut sw = GsheSwitch::new(*params);
    // Alternate initial state so both polarities appear.
    let start = idx.is_multiple_of(2);
    sw.set_state(start);
    let o = sw.write_thermal(i_s, !start, &mut rng);
    DelaySample {
        i_s,
        delay: o.delay,
        switched: o.switched,
    }
}

/// Mean delay over the switched samples, or NaN when none switched — the
/// scalar that Table II's measured row and the campaign's device-delay
/// jobs both report.
pub fn mean_switched_delay(samples: &[DelaySample]) -> f64 {
    let switched: Vec<f64> = samples
        .iter()
        .filter(|s| s.switched)
        .map(|s| s.delay)
        .collect();
    if switched.is_empty() {
        f64::NAN
    } else {
        switched.iter().sum::<f64>() / switched.len() as f64
    }
}

/// Histogram of switching delays, the Fig. 4 artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayHistogram {
    /// Inclusive lower edge of each bin, s.
    pub bin_edges: Vec<f64>,
    /// Fraction of occurrences per bin (sums to ≤ 1; timeouts excluded).
    pub fractions: Vec<f64>,
    /// Mean delay over switched samples, s.
    pub mean: f64,
    /// Standard deviation over switched samples, s.
    pub std_dev: f64,
    /// Fraction of samples that failed to switch within the horizon.
    pub timeout_fraction: f64,
    /// Number of samples.
    pub count: usize,
}

impl DelayHistogram {
    /// Bins `samples` into `bins` equal-width bins over `[0, range)`.
    pub fn from_samples(samples: &[DelaySample], bins: usize, range: f64) -> Self {
        assert!(bins > 0 && range > 0.0, "bins and range must be positive");
        let mut counts = vec![0usize; bins];
        let width = range / bins as f64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut switched = 0usize;
        for s in samples {
            if !s.switched {
                continue;
            }
            switched += 1;
            sum += s.delay;
            sum_sq += s.delay * s.delay;
            let b = ((s.delay / width) as usize).min(bins - 1);
            counts[b] += 1;
        }
        let n = samples.len().max(1);
        let mean = if switched > 0 {
            sum / switched as f64
        } else {
            f64::NAN
        };
        let var = if switched > 1 {
            (sum_sq - sum * sum / switched as f64) / (switched as f64 - 1.0)
        } else {
            0.0
        };
        DelayHistogram {
            bin_edges: (0..bins).map(|i| i as f64 * width).collect(),
            fractions: counts.iter().map(|&c| c as f64 / n as f64).collect(),
            mean,
            std_dev: var.max(0.0).sqrt(),
            timeout_fraction: (samples.len() - switched) as f64 / n as f64,
            count: samples.len(),
        }
    }

    /// Delay below which `q` of the switched probability mass lies
    /// (bin-resolution quantile).
    pub fn quantile(&self, q: f64) -> f64 {
        let total: f64 = self.fractions.iter().sum();
        let mut acc = 0.0;
        for (edge, frac) in self.bin_edges.iter().zip(&self.fractions) {
            acc += frac;
            if acc >= q * total {
                return *edge;
            }
        }
        *self.bin_edges.last().unwrap_or(&0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(samples: usize) -> MonteCarloConfig {
        MonteCarloConfig {
            samples,
            seed: 11,
            ..MonteCarloConfig::default()
        }
    }

    #[test]
    fn delays_shrink_with_current() {
        // The headline property of Fig. 4.
        let mc = MonteCarlo::new(quick_config(60));
        let h20 = DelayHistogram::from_samples(&mc.run(20e-6), 60, 6e-9);
        let h100 = DelayHistogram::from_samples(&mc.run(100e-6), 60, 6e-9);
        assert!(
            h100.mean < h20.mean,
            "mean(100uA) = {} !< mean(20uA) = {}",
            h100.mean,
            h20.mean
        );
        assert!(
            h100.std_dev < h20.std_dev,
            "spread must shrink with current"
        );
    }

    #[test]
    fn run_is_reproducible_for_fixed_seed() {
        let mc = MonteCarlo::new(quick_config(16));
        let a = mc.run(60e-6);
        let b = mc.run(60e-6);
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_ranges_reproduce_a_full_run() {
        let mc = MonteCarlo::new(quick_config(16));
        let full = mc.run(60e-6);
        let mut chunked = mc.run_range(60e-6, 0, 5);
        chunked.extend(mc.run_range(60e-6, 5, 11));
        assert_eq!(full, chunked);
    }

    #[test]
    fn histogram_fractions_sum_to_switched_fraction() {
        let mc = MonteCarlo::new(quick_config(40));
        let samples = mc.run(60e-6);
        let h = DelayHistogram::from_samples(&samples, 30, 6e-9);
        let total: f64 = h.fractions.iter().sum();
        assert!((total + h.timeout_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn switching_probability_increases_with_clock_period() {
        let mc = MonteCarlo::new(quick_config(40));
        let p_short = mc.switching_probability(20e-6, 0.8e-9);
        let p_long = mc.switching_probability(20e-6, 6e-9);
        assert!(p_long >= p_short);
        assert!(p_long > 0.9, "p_long = {p_long}");
    }

    #[test]
    fn quantile_is_monotone() {
        let mc = MonteCarlo::new(quick_config(60));
        let h = DelayHistogram::from_samples(&mc.run(20e-6), 60, 6e-9);
        assert!(h.quantile(0.25) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn histogram_rejects_zero_bins() {
        let _ = DelayHistogram::from_samples(&[], 0, 1.0);
    }
}
