//! Error type for the device crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or simulating a GSHE device.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A geometric or material parameter was non-positive or non-finite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The implicit midpoint fixed-point iteration failed to converge.
    MidpointDiverged {
        /// Simulation time at which convergence failed, s.
        time: f64,
        /// Residual after the final iteration.
        residual: f64,
    },
    /// A simulation ran past its time horizon without the magnet switching.
    SwitchTimeout {
        /// The horizon that was exhausted, s.
        horizon: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter { name, value } => {
                write!(f, "invalid device parameter {name} = {value}")
            }
            DeviceError::MidpointDiverged { time, residual } => write!(
                f,
                "midpoint iteration diverged at t = {time:.3e} s (residual {residual:.3e})"
            ),
            DeviceError::SwitchTimeout { horizon } => {
                write!(f, "magnet did not switch within {horizon:.3e} s")
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DeviceError::InvalidParameter {
            name: "ms",
            value: -1.0,
        };
        let s = e.to_string();
        assert!(s.contains("ms"));
        assert!(s.starts_with("invalid"));

        let e = DeviceError::SwitchTimeout { horizon: 1e-8 };
        assert!(e.to_string().contains("switch"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
