//! Calibration diagnostic: prints the Fig. 4 summary statistics and one
//! deterministic write, for checking the device parameters against the
//! paper's 1.55 ns mean delay at I_S = 20 uA.
//!
//! Run with `cargo run --release -p gshe-device --example calib`.

use gshe_device::{DelayHistogram, GsheSwitch, MonteCarlo, MonteCarloConfig, SwitchParams};

fn main() {
    let mc = MonteCarlo::new(MonteCarloConfig {
        samples: 400,
        seed: 9,
        ..Default::default()
    });
    for i_s in [20e-6, 60e-6, 100e-6] {
        let s = mc.run(i_s);
        let h = DelayHistogram::from_samples(&s, 60, 6e-9);
        println!(
            "I_S={:>3.0} uA  mean={:.3} ns  std={:.3} ns  timeout={:.3}",
            i_s * 1e6,
            h.mean * 1e9,
            h.std_dev * 1e9,
            h.timeout_fraction
        );
    }
    let mut sw = GsheSwitch::new(SwitchParams::table_i());
    let o = sw.write_deterministic(20e-6, true);
    println!(
        "deterministic delay @20uA: {:.3} ns switched={}",
        o.delay * 1e9,
        o.switched
    );
}
