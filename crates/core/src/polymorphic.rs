//! Runtime polymorphism at the chip level (Sec. V-C).
//!
//! Two defensive mechanisms built on the truly polymorphic primitive:
//!
//! * **Function morphing** ([`morph_complement`], [`morph_random`]):
//!   complement the function of a GSHE gate and compensate by negating the
//!   corresponding input of every fanout gate (also GSHE-reconfigurable at
//!   runtime). The chip's function is preserved, but the layout-level
//!   function of each cell keeps changing — an RE attacker imaging the chip
//!   at two instants sees two different circuits ("it is virtually
//!   impossible to resolve all dynamic features on full-chip scale at
//!   once").
//! * **Key rotation** ([`RotatingOracle`]), after Koteshwara et al. \[40\]:
//!   the chip's key (and hence oracle behaviour) is altered dynamically,
//!   rendering runtime-intensive attacks — SAT attacks in particular —
//!   incapable.

use gshe_logic::{Bf1, LogicError, Netlist, NodeId, NodeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// The rotating chip is an attack-facing oracle, so the implementation
// lives with the other oracles in `gshe_attacks::oracle` (where the
// campaign engine can materialize it per job); re-exported here to keep
// the Sec. V-C defense surface together.
pub use gshe_attacks::RotatingOracle;

/// Complements the function of gate `node` and compensates every fanout by
/// negating the corresponding input, preserving the netlist's function.
///
/// # Errors
///
/// Returns [`LogicError::Validation`] if `node` is not a two-input gate, is
/// a primary output (its external value would flip), or feeds a node that
/// cannot absorb an input negation.
pub fn morph_complement(nl: &mut Netlist, node: NodeId) -> Result<(), LogicError> {
    let NodeKind::Gate2 { f, .. } = nl.node(node).kind else {
        return Err(LogicError::Validation(format!(
            "{node} is not a two-input gate"
        )));
    };
    if nl.outputs().contains(&node) {
        return Err(LogicError::Validation(format!(
            "{node} drives a primary output; morphing it would change the chip function"
        )));
    }
    // Pre-validate all fanouts, then apply (no partial morphs). A fanout
    // feeding both of its inputs from `node` appears twice in the adjacency
    // list but must be compensated exactly once (both inputs negated in one
    // update).
    let mut fanouts = nl.fanouts()[node.index()].clone();
    fanouts.dedup();
    for &fo in &fanouts {
        match nl.node(fo).kind {
            NodeKind::Gate1 { .. } | NodeKind::Gate2 { .. } => {}
            _ => {
                return Err(LogicError::Validation(format!(
                    "fanout {fo} cannot absorb an input negation"
                )))
            }
        }
    }
    nl.set_gate2_function(node, f.complement())?;
    for fo in fanouts {
        match nl.node(fo).kind {
            NodeKind::Gate1 { f: g, a } => {
                let g2 = match g {
                    Bf1::Buf => Bf1::Inv,
                    Bf1::Inv => Bf1::Buf,
                    other => other, // constants ignore their input
                };
                nl.set_gate1_function(fo, g2, a)?;
            }
            NodeKind::Gate2 { f: g, a, b } => {
                let mut g2 = g;
                if a == node {
                    g2 = g2.negate_a();
                }
                if b == node {
                    g2 = g2.negate_b();
                }
                nl.set_gate2_function(fo, g2)?;
            }
            _ => unreachable!("pre-validated"),
        }
    }
    Ok(())
}

/// Morphs a random subset of `candidates` (each attempted with probability
/// 1/2); returns the nodes actually morphed. Nodes whose morph would be
/// unsound (primary outputs, exotic fanouts) are skipped.
pub fn morph_random(nl: &mut Netlist, candidates: &[NodeId], seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x904B);
    let mut morphed = Vec::new();
    for &c in candidates {
        if rng.gen_bool(0.5) && morph_complement(nl, c).is_ok() {
            morphed.push(c);
        }
    }
    morphed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_attacks::{sat_attack, verify_key, AttackConfig, AttackStatus, Oracle};
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::sim::random_equivalence_check;
    use gshe_logic::{Bf2, GeneratorConfig, NetlistBuilder, NetlistGenerator};

    #[test]
    fn morph_preserves_function() {
        let original = NetlistGenerator::new(GeneratorConfig::new("t", 10, 5, 150).with_seed(3))
            .unwrap()
            .generate();
        let mut morphed = original.clone();
        let gates = morphed.gate_ids();
        let changed = morph_random(&mut morphed, &gates, 99);
        assert!(!changed.is_empty(), "some gates must morph");
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            random_equivalence_check(&original, &morphed, 8, &mut rng).unwrap(),
            None,
            "morphing must preserve the chip function"
        );
        // And the layout-visible functions actually changed.
        assert_ne!(original, morphed);
    }

    #[test]
    fn repeated_morphs_keep_preserving_function() {
        let original = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 80).with_seed(5))
            .unwrap()
            .generate();
        let mut morphed = original.clone();
        let gates = morphed.gate_ids();
        for epoch in 0..5 {
            morph_random(&mut morphed, &gates, epoch);
            let mut rng = StdRng::seed_from_u64(epoch);
            assert_eq!(
                random_equivalence_check(&original, &morphed, 4, &mut rng).unwrap(),
                None,
                "epoch {epoch}"
            );
        }
    }

    #[test]
    fn morphing_an_output_gate_is_rejected() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.gate2("g", Bf2::AND, x, y);
        b.output(g);
        let mut nl = b.finish().unwrap();
        assert!(morph_complement(&mut nl, g).is_err());
    }

    #[test]
    fn morph_handles_double_edges() {
        // node feeds both inputs of a downstream gate.
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.gate2("g", Bf2::NAND, x, y);
        let h = b.gate2("h", Bf2::AND, g, g);
        b.output(h);
        let mut nl = b.finish().unwrap();
        let orig = nl.clone();
        morph_complement(&mut nl, g).unwrap();
        for a in [false, true] {
            for bb in [false, true] {
                assert_eq!(nl.evaluate(&[a, bb]), orig.evaluate(&[a, bb]));
            }
        }
    }

    #[test]
    fn rotating_oracle_defeats_sat_attack() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 60).with_seed(7))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.5, 11);
        let mut rng = StdRng::seed_from_u64(11);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut broken = 0;
        let trials = 3;
        for seed in 0..trials {
            let mut oracle = RotatingOracle::new(&keyed, 3, seed);
            let out = sat_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(20));
            let failed = match out.status {
                AttackStatus::Inconsistent => true,
                AttackStatus::Success => {
                    !verify_key(&nl, &keyed, out.key.as_ref().unwrap())
                        .unwrap()
                        .functionally_equivalent
                }
                _ => true,
            };
            broken += failed as usize;
        }
        assert!(
            broken >= trials as usize - 1,
            "rotation failed to stop the attack"
        );
    }

    #[test]
    fn rotating_block_query_matches_scalar_loop() {
        // The engine-backed block path must reproduce the scalar loop
        // exactly — same per-pattern rotation points, same key stream,
        // same answers, same accounting — even when a block straddles
        // several epochs.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 6, 3, 40).with_seed(21))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.5, 17);
        let mut rng = StdRng::seed_from_u64(17);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();

        for period in [1u64, 5, 64, 1000] {
            let mut fast = RotatingOracle::new(&keyed, period, 3);
            let mut slow = RotatingOracle::new(&keyed, period, 3);
            let mut prng = StdRng::seed_from_u64(8);
            for _ in 0..3 {
                let block = gshe_logic::PatternBlock::random_n(6, 50, &mut prng);
                let lanes = fast.query_block(&block);
                for k in 0..block.count {
                    let y = slow.query(&block.pattern(k));
                    for (o, &bit) in y.iter().enumerate() {
                        assert_eq!(
                            bit,
                            (lanes[o] >> k) & 1 == 1,
                            "period {period} pattern {k} output {o}"
                        );
                    }
                }
                assert_eq!(fast.queries(), slow.queries(), "period {period}");
            }
        }
    }

    #[test]
    fn rotating_oracle_is_consistent_within_first_epoch() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 6, 3, 30).with_seed(9))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.5, 13);
        let mut rng = StdRng::seed_from_u64(13);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut oracle = RotatingOracle::new(&keyed, 1000, 1);
        let x = vec![true; 6];
        let y0 = oracle.query(&x);
        assert_eq!(y0, nl.evaluate(&x), "first epoch uses the correct key");
    }
}
