//! # gshe-core
//!
//! The paper's primary contribution: a **polymorphic, GSHE-based security
//! primitive** that cloaks all 16 two-input Boolean functions within a
//! single, layout-uniform instance — simultaneously enabling IC
//! camouflaging and logic locking (Patnaik, Rangarajan et al., DATE 2018).
//!
//! * [`config`] — the terminal-assignment model: three input charge
//!   currents (signals, their transducer-inverted forms, or ±I ties) plus
//!   the read-voltage mode; one canonical configuration per Boolean
//!   function (Fig. 5) and the current-centric truth tables of Fig. 2.
//! * [`primitive`] — [`GshePrimitive`]: evaluates a configuration through
//!   the *device*: current summation → sLLGS write of the W-NM → dipolar
//!   flip of the R-NM → resistive read-out current direction.
//! * [`stochastic`] — Sec. V-B: tunable per-device error rates derived
//!   from the switching-delay distribution vs. the clock period.
//! * [`polymorphic`] — Sec. V-C: runtime polymorphism (function morphing
//!   that preserves chip function) and key rotation against
//!   runtime-intensive attacks.
//! * [`flows`] — chip-level protection flows: plain/full camouflaging and
//!   the delay-aware hybrid CMOS–GSHE flow, with the Sec. IV provisioning
//!   options.
//!
//! All substrate crates are re-exported (`gshe_core::device`, `::logic`,
//! `::sat`, `::camo`, `::timing`, `::attacks`, `::campaign`), and
//! [`prelude`] pulls in the common types — including the campaign engine's
//! [`prelude::Campaign`] entry point for grid-scale experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod flows;
pub mod polymorphic;
pub mod primitive;
pub mod stochastic;

pub use config::{CurrentInput, GsheConfig, ReadMode};
pub use flows::{protect, protect_delay_aware, Protected, Provisioning};
pub use polymorphic::{morph_complement, morph_random, RotatingOracle};
pub use primitive::GshePrimitive;
pub use stochastic::{
    error_profile_for_drives, error_rate_for_clock, StochasticPrimitive, SwitchDrive,
};

pub use gshe_attacks as attacks;
pub use gshe_camo as camo;
pub use gshe_campaign as campaign;
pub use gshe_device as device;
pub use gshe_logic as logic;
pub use gshe_obs as obs;
pub use gshe_sat as sat;
pub use gshe_timing as timing;

/// Common imports for applications built on this crate.
pub mod prelude {
    pub use crate::config::{CurrentInput, GsheConfig, ReadMode};
    pub use crate::flows::{protect, protect_delay_aware, Protected, Provisioning};
    pub use crate::primitive::GshePrimitive;
    pub use crate::stochastic::{
        error_profile_for_drives, error_rate_for_clock, StochasticPrimitive, SwitchDrive,
    };
    pub use gshe_attacks::{
        appsat_attack, double_dip_attack, sat_attack, verify_key, AttackConfig, AttackKind,
        AttackRunner, AttackStatus, NetlistOracle, Oracle, OracleStack, RestartMode,
        StochasticOracle,
    };
    pub use gshe_camo::{camouflage, select_gates, CamoScheme, KeyedNetlist};
    pub use gshe_campaign::{
        Campaign, CampaignReport, CampaignSpec, EvalSession, JobStatus, NoiseShape, ProfileSearch,
        SearchReport, SearchSpec,
    };
    pub use gshe_device::{GsheSwitch, MonteCarlo, MonteCarloConfig, SwitchParams};
    pub use gshe_logic::{parse_bench, Bf1, Bf2, Netlist, NetlistBuilder, NodeId};
    pub use gshe_timing::{delay_aware_replace, DelayModel, TimingAnalysis};
}
