//! The device-backed GSHE primitive.
//!
//! [`GshePrimitive`] evaluates a [`GsheConfig`] through the *physics*: the
//! three input charge currents are summed in the heavy metal, the sLLGS
//! write switches the W-NM, the dipolar coupling flips the R-NM
//! anti-parallel, and the read-out circuit converts the R-NM state plus the
//! applied voltage polarity into an output current direction. The
//! behavioral model in [`GsheConfig::evaluate`] is the idealization this
//! module's tests validate against.

use crate::config::{GsheConfig, ReadMode};
use gshe_device::{GsheSwitch, ReadoutCircuit, SwitchParams};
use gshe_logic::Bf2;

/// One physical GSHE primitive instance with a loaded configuration.
#[derive(Debug, Clone)]
pub struct GshePrimitive {
    switch: GsheSwitch,
    readout: ReadoutCircuit,
    config: GsheConfig,
    /// Unit charge current per input wire, A. Chosen so a lone net current
    /// still delivers the deterministic-switching spin current
    /// (I_S = β·I_C ≥ 20 µA).
    unit_current: f64,
}

impl GshePrimitive {
    /// Builds a primitive with Table I device parameters.
    pub fn new(config: GsheConfig) -> Self {
        Self::with_params(config, SwitchParams::table_i())
    }

    /// Builds a primitive with explicit device parameters.
    pub fn with_params(config: GsheConfig, params: SwitchParams) -> Self {
        let beta = params.beta();
        GshePrimitive {
            readout: ReadoutCircuit::new(&params),
            switch: GsheSwitch::new(params),
            config,
            unit_current: 20e-6 / beta,
        }
    }

    /// The loaded configuration.
    pub fn config(&self) -> &GsheConfig {
        &self.config
    }

    /// Reconfigures the primitive at runtime (true polymorphism — the
    /// physical device is untouched; only terminal assignments change).
    pub fn reconfigure(&mut self, config: GsheConfig) {
        self.config = config;
    }

    /// Convenience: reconfigure to the canonical config of `f`.
    pub fn set_function(&mut self, f: Bf2) {
        self.config = GsheConfig::for_function(f);
    }

    /// Evaluates the primitive through the device physics (deterministic,
    /// T = 0 trajectory with the thermal-mean initial tilt).
    ///
    /// Returns the logic value encoded in the output current direction.
    pub fn evaluate_device(&mut self, a: bool, b: bool) -> bool {
        // Write phase: sum the charge currents, convert to spin current.
        let net = self.config.net_current(a, b);
        let i_c = net.abs() as f64 * self.unit_current;
        let beta = self.switch.params().beta();
        let outcome = self.switch.write_deterministic(beta * i_c, net > 0);
        debug_assert!(outcome.switched, "deterministic write must complete");
        // Read phase: R-NM state + polarity → output current direction.
        let r_state = self.switch.read_state();
        match self.config.read {
            ReadMode::Static { invert } => r_state ^ invert,
            ReadMode::DataDrivenB { invert } => (r_state ^ !b) ^ invert,
        }
    }

    /// Output current magnitude during read, A (I_OUT = I_S/β).
    pub fn output_current(&self) -> f64 {
        self.readout.operating_point(20e-6).i_out
    }

    /// Read power of this instance, W.
    pub fn read_power(&self) -> f64 {
        self.readout.operating_point(20e-6).power
    }

    /// The switching delay of the last write, s — or `None` before any
    /// write. (The paper's propagation delay is the 1.55 ns Fig. 4 mean.)
    pub fn behavioral(&self) -> Bf2 {
        self.config.function()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_level_gallery_matches_fig5() {
        // Every one of the 16 functions, evaluated through the physics on
        // all four input rows, must match its truth table — the full
        // device-level reproduction of Fig. 5.
        for f in Bf2::ALL {
            let mut prim = GshePrimitive::new(GsheConfig::for_function(f));
            for row in 0..4u8 {
                let a = row & 1 == 1;
                let b = row & 2 == 2;
                assert_eq!(
                    prim.evaluate_device(a, b),
                    f.eval(a, b),
                    "{f} at a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn runtime_reconfiguration_switches_functions() {
        let mut prim = GshePrimitive::new(GsheConfig::for_function(Bf2::NAND));
        assert!(!prim.evaluate_device(true, true));
        prim.set_function(Bf2::OR);
        assert!(prim.evaluate_device(true, true));
        assert_eq!(prim.behavioral(), Bf2::OR);
        prim.set_function(Bf2::XOR);
        assert!(!prim.evaluate_device(true, true));
        assert!(prim.evaluate_device(true, false));
    }

    #[test]
    fn output_current_is_microamp_scale() {
        let prim = GshePrimitive::new(GsheConfig::for_function(Bf2::AND));
        let i = prim.output_current();
        assert!(i > 1e-6 && i < 10e-6, "I_OUT = {i}");
    }

    #[test]
    fn read_power_matches_table_ii() {
        let prim = GshePrimitive::new(GsheConfig::for_function(Bf2::AND));
        assert!((prim.read_power() - 0.2125e-6).abs() / 0.2125e-6 < 0.025);
    }
}
