//! Terminal configurations of the GSHE primitive (Figs. 2 and 5).
//!
//! The primitive has **three input wires** feeding charge currents into the
//! heavy-metal layer (uniform for all 16 functions — that is what makes the
//! layout indistinguishable under optical RE), and two fixed-ferromagnet
//! terminals `V⁺`/`V⁻`. A configuration assigns:
//!
//! * each input wire a current source: a logic signal (`A`, `B`), its
//!   magneto-electrically transduced inverse (`¬A`, `¬B`), or a constant
//!   tie current (`+I`, `−I`);
//! * the read mode: a static voltage polarity, or voltages driven by a
//!   data signal (the XOR/XNOR trick of Sec. III-C).
//!
//! Logic 1/0 is the *direction* of a current (`+I`/`−I`) throughout.

use gshe_logic::Bf2;
use std::fmt;

/// Source of one of the three input charge currents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CurrentInput {
    /// Signal A as a charge current (+I for logic 1).
    A,
    /// Transduced inverse of A.
    NotA,
    /// Signal B.
    B,
    /// Transduced inverse of B.
    NotB,
    /// Constant +I tie (logic-1 bias).
    PlusI,
    /// Constant −I tie (logic-0 bias).
    MinusI,
}

impl CurrentInput {
    /// Signed current in units of the unit charge current.
    pub fn current(self, a: bool, b: bool) -> i32 {
        let sign = |v: bool| if v { 1 } else { -1 };
        match self {
            CurrentInput::A => sign(a),
            CurrentInput::NotA => sign(!a),
            CurrentInput::B => sign(b),
            CurrentInput::NotB => sign(!b),
            CurrentInput::PlusI => 1,
            CurrentInput::MinusI => -1,
        }
    }
}

impl fmt::Display for CurrentInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CurrentInput::A => "A",
            CurrentInput::NotA => "A'",
            CurrentInput::B => "B",
            CurrentInput::NotB => "B'",
            CurrentInput::PlusI => "+I",
            CurrentInput::MinusI => "-I",
        };
        f.write_str(s)
    }
}

/// Read-phase voltage assignment at the fixed ferromagnets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadMode {
    /// Static supply polarity. With `invert = false`, the output current
    /// direction reports the R-NM state; swapping `V⁺`/`V⁻`
    /// (`invert = true`) reports its complement.
    Static {
        /// Swap the supply polarity.
        invert: bool,
    },
    /// Voltages driven by signal `B` and its inverse (the XOR/XNOR mode):
    /// the output becomes `R ⊕ ¬B` (or its complement with `invert`).
    DataDrivenB {
        /// Swap which terminal receives `B`.
        invert: bool,
    },
}

/// A complete configuration of one GSHE primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GsheConfig {
    /// The three input-wire current assignments.
    pub currents: [CurrentInput; 3],
    /// The read mode.
    pub read: ReadMode,
}

impl GsheConfig {
    /// The canonical configuration for each of the 16 Boolean functions
    /// (the Fig. 5 gallery).
    pub fn for_function(f: Bf2) -> GsheConfig {
        use CurrentInput::*;
        let stat = |invert| ReadMode::Static { invert };
        match f {
            // maj(A, B, −I) = AND → R holds ¬AND; report R for NAND,
            // swap polarity for AND. maj(A, B, +I) = OR likewise.
            Bf2::NAND => GsheConfig {
                currents: [A, B, MinusI],
                read: stat(false),
            },
            Bf2::AND => GsheConfig {
                currents: [A, B, MinusI],
                read: stat(true),
            },
            Bf2::NOR => GsheConfig {
                currents: [A, B, PlusI],
                read: stat(false),
            },
            Bf2::OR => GsheConfig {
                currents: [A, B, PlusI],
                read: stat(true),
            },
            // Inhibitions / implications via transduced inverses.
            Bf2::A_AND_NOT_B => GsheConfig {
                currents: [A, NotB, MinusI],
                read: stat(true),
            },
            Bf2::NOT_A_OR_B => GsheConfig {
                currents: [A, NotB, MinusI],
                read: stat(false),
            },
            Bf2::NOT_A_AND_B => GsheConfig {
                currents: [NotA, B, MinusI],
                read: stat(true),
            },
            Bf2::A_OR_NOT_B => GsheConfig {
                currents: [NotA, B, MinusI],
                read: stat(false),
            },
            // Single-signal functions: all three wires carry the signal.
            Bf2::BUF_A => GsheConfig {
                currents: [A, A, A],
                read: stat(true),
            },
            Bf2::NOT_A => GsheConfig {
                currents: [A, A, A],
                read: stat(false),
            },
            Bf2::BUF_B => GsheConfig {
                currents: [B, B, B],
                read: stat(true),
            },
            Bf2::NOT_B => GsheConfig {
                currents: [B, B, B],
                read: stat(false),
            },
            // Constants.
            Bf2::TRUE => GsheConfig {
                currents: [PlusI, PlusI, PlusI],
                read: stat(true),
            },
            Bf2::FALSE => GsheConfig {
                currents: [PlusI, PlusI, PlusI],
                read: stat(false),
            },
            // XOR/XNOR: A writes the magnet, B drives the read voltages.
            Bf2::XOR => GsheConfig {
                currents: [A, A, A],
                read: ReadMode::DataDrivenB { invert: false },
            },
            _ => GsheConfig {
                currents: [A, A, A],
                read: ReadMode::DataDrivenB { invert: true },
            },
        }
    }

    /// Net write current in unit-current multiples (∈ {−3, −1, +1, +3}).
    pub fn net_current(&self, a: bool, b: bool) -> i32 {
        self.currents.iter().map(|c| c.current(a, b)).sum()
    }

    /// Behavioral evaluation: current summation (majority) → W-NM state →
    /// anti-parallel R-NM → read-out current direction.
    pub fn evaluate(&self, a: bool, b: bool) -> bool {
        let w_state = self.net_current(a, b) > 0;
        let r_state = !w_state;
        match self.read {
            ReadMode::Static { invert } => r_state ^ invert,
            ReadMode::DataDrivenB { invert } => (r_state ^ !b) ^ invert,
        }
    }

    /// The Boolean function this configuration implements.
    pub fn function(&self) -> Bf2 {
        let mut tt = 0u8;
        for row in 0..4u8 {
            let a = row & 1 == 1;
            let b = row & 2 == 2;
            if self.evaluate(a, b) {
                tt |= 1 << row;
            }
        }
        Bf2::from_truth_table(tt)
    }

    /// The current-centric truth table of Fig. 2: one row per input
    /// combination, with input/output currents rendered as `+I`/`-I`.
    pub fn current_truth_table(&self) -> Vec<String> {
        let fmt_i = |v: bool| if v { "+I" } else { "-I" };
        let mut rows = Vec::with_capacity(4);
        for row in 0..4u8 {
            let a = row & 1 == 1;
            let b = row & 2 == 2;
            let wires: Vec<String> = self
                .currents
                .iter()
                .map(|c| {
                    format!("{:+}I", c.current(a, b))
                        .replace("+1I", "+I")
                        .replace("-1I", "-I")
                })
                .collect();
            rows.push(format!(
                "A={} B={} | wires: {} | out: {}",
                fmt_i(a),
                fmt_i(b),
                wires.join(" "),
                fmt_i(self.evaluate(a, b))
            ));
        }
        rows
    }
}

impl fmt::Display for GsheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] read={:?} -> {}",
            self.currents[0],
            self.currents[1],
            self.currents[2],
            self.read,
            self.function()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sixteen_functions_have_a_configuration() {
        // The Fig. 5 claim: every 2-input Boolean function is realizable.
        for f in Bf2::ALL {
            let cfg = GsheConfig::for_function(f);
            assert_eq!(
                cfg.function(),
                f,
                "config for {f} computes {}",
                cfg.function()
            );
        }
    }

    #[test]
    fn all_configurations_use_exactly_three_wires() {
        // Layout uniformity (Sec. III-C): three input wires regardless of
        // function — dummy (tie) wires included.
        for f in Bf2::ALL {
            let cfg = GsheConfig::for_function(f);
            assert_eq!(cfg.currents.len(), 3);
        }
    }

    #[test]
    fn nand_nor_truth_tables_match_fig2() {
        // Fig. 2: NAND — X=−I tie; output +I except when A=B=+I.
        let nand = GsheConfig::for_function(Bf2::NAND);
        assert_eq!(nand.currents[2], CurrentInput::MinusI);
        assert!(nand.evaluate(false, false));
        assert!(nand.evaluate(true, false));
        assert!(nand.evaluate(false, true));
        assert!(!nand.evaluate(true, true));
        // NOR — X=+I tie; output −I except when A=B=−I.
        let nor = GsheConfig::for_function(Bf2::NOR);
        assert_eq!(nor.currents[2], CurrentInput::PlusI);
        assert!(nor.evaluate(false, false));
        assert!(!nor.evaluate(true, false));
    }

    #[test]
    fn net_current_is_odd_multiple_of_unit() {
        for f in Bf2::ALL {
            let cfg = GsheConfig::for_function(f);
            for a in [false, true] {
                for b in [false, true] {
                    let i = cfg.net_current(a, b);
                    assert!(i.abs() == 1 || i.abs() == 3, "{f}: net current {i}");
                }
            }
        }
    }

    #[test]
    fn swapping_polarity_complements_the_function() {
        for f in Bf2::ALL {
            let cfg = GsheConfig::for_function(f);
            let swapped = GsheConfig {
                currents: cfg.currents,
                read: match cfg.read {
                    ReadMode::Static { invert } => ReadMode::Static { invert: !invert },
                    ReadMode::DataDrivenB { invert } => ReadMode::DataDrivenB { invert: !invert },
                },
            };
            assert_eq!(swapped.function(), f.complement(), "{f}");
        }
    }

    #[test]
    fn fig2_rows_render_currents() {
        let rows = GsheConfig::for_function(Bf2::NAND).current_truth_table();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.contains("+I") || r.contains("-I"));
        }
        // The tie wire is −I in every row.
        assert!(rows.iter().all(|r| r.contains("-I")));
    }

    #[test]
    fn display_names_the_function() {
        let s = GsheConfig::for_function(Bf2::XOR).to_string();
        assert!(s.contains("XOR"), "{s}");
    }
}
