//! Chip-level protection flows (Secs. IV and V-A).

use gshe_camo::{
    camouflage_with_report, select_gates, CamoError, CamoReport, CamoScheme, KeyedNetlist,
};
use gshe_logic::{Netlist, NodeId};
use gshe_timing::{delay_aware_replace, DelayModel, HybridResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the secret configuration is provisioned against an untrusted fab
/// (Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Provisioning {
    /// Option (a): split manufacturing — control/ferromagnet wires routed
    /// (at least partially) in a BEOL made by a separate, trusted fab \[32\].
    SplitManufacturing,
    /// Option (b): a tamper-proof memory holds the key; the IP holder loads
    /// it only after fabrication.
    #[default]
    TamperProofMemory,
}

impl Provisioning {
    /// Human-readable summary of the trust assumption.
    pub const fn description(self) -> &'static str {
        match self {
            Provisioning::SplitManufacturing => {
                "control wires routed through a trusted BEOL fab (split manufacturing)"
            }
            Provisioning::TamperProofMemory => {
                "key loaded post-fabrication into tamper-proof memory"
            }
        }
    }
}

/// A protected design: the keyed netlist plus flow metadata.
#[derive(Debug, Clone)]
pub struct Protected {
    /// The camouflaged/locked design.
    pub keyed: KeyedNetlist,
    /// Transform statistics.
    pub report: CamoReport,
    /// The memorized gate selection.
    pub selection: Vec<NodeId>,
    /// Provisioning option.
    pub provisioning: Provisioning,
}

/// Protects `fraction` of all gates with the GSHE all-16 primitive
/// (the paper's headline flow; Table IV "Our" column).
///
/// # Errors
///
/// Propagates [`CamoError`]s from the transform (cannot occur for the
/// all-16 scheme on gate picks, but the signature stays honest).
pub fn protect(netlist: &Netlist, fraction: f64, seed: u64) -> Result<Protected, CamoError> {
    let selection = select_gates(netlist, fraction, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let (keyed, report) =
        camouflage_with_report(netlist, &selection, CamoScheme::GsheAll16, &mut rng)?;
    Ok(Protected {
        keyed,
        report,
        selection,
        provisioning: Provisioning::default(),
    })
}

/// The delay-aware hybrid flow (Sec. V-A): replace CMOS gates on
/// non-critical paths with GSHE primitives at **zero delay overhead**, then
/// camouflage exactly those gates.
///
/// # Errors
///
/// Propagates [`CamoError`]s from the transform.
pub fn protect_delay_aware(
    netlist: &Netlist,
    model: &DelayModel,
    seed: u64,
) -> Result<(Protected, HybridResult), CamoError> {
    let hybrid = delay_aware_replace(netlist, model, 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let (keyed, report) =
        camouflage_with_report(netlist, &hybrid.gshe_gates, CamoScheme::GsheAll16, &mut rng)?;
    let protected = Protected {
        keyed,
        report,
        selection: hybrid.gshe_gates.clone(),
        provisioning: Provisioning::SplitManufacturing,
    };
    Ok((protected, hybrid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_logic::sim::random_equivalence_check;
    use gshe_logic::{GeneratorConfig, NetlistGenerator};

    fn sample(gates: usize, bias: f64) -> Netlist {
        NetlistGenerator::new(
            GeneratorConfig::new("t", 16, 8, gates)
                .with_seed(5)
                .with_chain_bias(bias),
        )
        .unwrap()
        .generate()
    }

    #[test]
    fn protect_preserves_function_under_correct_key() {
        let nl = sample(200, 0.1);
        let p = protect(&nl, 0.3, 42).unwrap();
        assert_eq!(p.report.protected(), p.selection.len());
        assert_eq!(p.keyed.key_len(), 4 * p.selection.len());
        let resolved = p.keyed.resolve(&p.keyed.correct_key()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            random_equivalence_check(&nl, &resolved, 6, &mut rng).unwrap(),
            None
        );
    }

    #[test]
    fn all16_flow_never_adds_gates() {
        // The all-16 set absorbs every function in place: layout-neutral.
        let nl = sample(150, 0.1);
        let p = protect(&nl, 0.5, 7).unwrap();
        assert_eq!(p.report.extra_gates, 0);
        assert_eq!(p.keyed.netlist().gate_count(), nl.gate_count());
    }

    #[test]
    fn delay_aware_flow_is_zero_overhead_and_protects_gates() {
        let nl = sample(1500, 0.35);
        let model = DelayModel::cmos_45nm();
        let (p, hybrid) = protect_delay_aware(&nl, &model, 9).unwrap();
        assert!(hybrid.hybrid_critical <= hybrid.baseline_critical + 1e-15);
        assert_eq!(p.selection.len(), hybrid.gshe_gates.len());
        assert!(p.report.protected() > 0, "hybrid flow protected nothing");
        assert_eq!(p.provisioning, Provisioning::SplitManufacturing);
        // Function preserved.
        let resolved = p.keyed.resolve(&p.keyed.correct_key()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            random_equivalence_check(&nl, &resolved, 4, &mut rng).unwrap(),
            None
        );
    }

    #[test]
    fn provisioning_descriptions_are_distinct() {
        assert_ne!(
            Provisioning::SplitManufacturing.description(),
            Provisioning::TamperProofMemory.description()
        );
    }
}
