//! Stochastic operation of the primitive (Sec. V-B).
//!
//! The GSHE switch's switching delay is a random variable (Fig. 4). Clock
//! the primitive faster than the delay distribution's tail and evaluations
//! occasionally miss the deadline — the output error rate becomes a *knob*
//! set by the clock period and the spin current: "the error rate for any
//! switch can be tuned individually". [`error_rate_for_clock`] derives the
//! rate from the device Monte Carlo; [`StochasticPrimitive`] applies it at
//! the logic level.

use crate::config::GsheConfig;
use gshe_logic::Bf2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// The device-Monte-Carlo rate derivations moved down into
// `gshe_campaign::physical` so the campaign engine can sweep *physical*
// clock periods (`clock_periods_ns`) without a dependency cycle;
// re-exported here to keep the historical Sec. V-B surface together.
pub use gshe_campaign::physical::{error_profile_for_drives, error_rate_for_clock, SwitchDrive};

/// A GSHE primitive operated in the stochastic regime.
#[derive(Debug, Clone)]
pub struct StochasticPrimitive {
    config: GsheConfig,
    error_rate: f64,
    rng: StdRng,
    evaluations: u64,
    errors: u64,
}

impl StochasticPrimitive {
    /// Creates a stochastic primitive with the given per-evaluation error
    /// rate (e.g. from [`error_rate_for_clock`]).
    ///
    /// # Panics
    ///
    /// Panics if `error_rate` is outside `[0, 1]`.
    pub fn new(config: GsheConfig, error_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&error_rate),
            "error rate must be in [0, 1]"
        );
        StochasticPrimitive {
            config,
            error_rate,
            rng: StdRng::seed_from_u64(seed ^ 0x6A7E_57CC),
            evaluations: 0,
            errors: 0,
        }
    }

    /// The configured error rate.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }

    /// The nominal (error-free) function.
    pub fn function(&self) -> Bf2 {
        self.config.function()
    }

    /// Evaluates once; with probability `error_rate` the output is flipped
    /// (missed deadline leaves the magnet in the stale/metastable state and
    /// the read-out reports the wrong direction).
    pub fn evaluate(&mut self, a: bool, b: bool) -> bool {
        self.evaluations += 1;
        let ideal = self.config.evaluate(a, b);
        if self.error_rate > 0.0 && self.rng.gen_bool(self.error_rate) {
            self.errors += 1;
            !ideal
        } else {
            ideal
        }
    }

    /// `(evaluations, errors)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.evaluations, self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_device::SwitchParams;
    use gshe_logic::NodeId;

    #[test]
    fn error_rate_decreases_with_longer_clock() {
        let params = SwitchParams::table_i();
        let fast = error_rate_for_clock(&params, 20e-6, 0.8e-9, 64, 3);
        let slow = error_rate_for_clock(&params, 20e-6, 6e-9, 64, 3);
        assert!(slow <= fast, "slow clock {slow} vs fast clock {fast}");
        assert!(
            slow < 0.05,
            "6 ns clock should be near-deterministic: {slow}"
        );
        assert!(fast > 0.2, "0.8 ns clock should err often: {fast}");
    }

    #[test]
    fn error_rate_decreases_with_higher_current() {
        // Fig. 4: higher I_S → faster, tighter distribution → fewer misses
        // at a fixed (aggressive) clock.
        let params = SwitchParams::table_i();
        let low = error_rate_for_clock(&params, 20e-6, 1.2e-9, 64, 5);
        let high = error_rate_for_clock(&params, 100e-6, 1.2e-9, 64, 5);
        assert!(high < low, "I_S=100uA err {high} vs 20uA err {low}");
    }

    #[test]
    fn zero_error_rate_is_exact() {
        let mut p = StochasticPrimitive::new(GsheConfig::for_function(Bf2::NAND), 0.0, 1);
        for _ in 0..100 {
            assert!(!p.evaluate(true, true));
            assert!(p.evaluate(false, true));
        }
        assert_eq!(p.stats().1, 0);
    }

    #[test]
    fn observed_error_rate_matches_configuration() {
        let mut p = StochasticPrimitive::new(GsheConfig::for_function(Bf2::AND), 0.05, 7);
        let n = 20_000;
        for _ in 0..n {
            let _ = p.evaluate(true, true);
        }
        let (evals, errs) = p.stats();
        assert_eq!(evals, n);
        let rate = errs as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "observed {rate}");
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn error_rate_bounds_checked() {
        let _ = StochasticPrimitive::new(GsheConfig::for_function(Bf2::AND), -0.1, 0);
    }

    #[test]
    fn drive_profile_orders_rates_by_clock() {
        // Two switches at the same current: the aggressively-clocked one
        // must be at least as noisy as the relaxed one, and unlisted nodes
        // stay deterministic. Duplicate drive points share one Monte Carlo
        // measurement (identical rates).
        let params = SwitchParams::table_i();
        let drives = [
            SwitchDrive {
                node: NodeId(1),
                i_s: 20e-6,
                t_clk: 0.8e-9,
            },
            SwitchDrive {
                node: NodeId(3),
                i_s: 20e-6,
                t_clk: 6e-9,
            },
            SwitchDrive {
                node: NodeId(4),
                i_s: 20e-6,
                t_clk: 0.8e-9,
            },
        ];
        let profile = error_profile_for_drives(&params, 6, &drives, 64, 3);
        assert_eq!(profile.len(), 6);
        assert_eq!(profile.rate(NodeId(0)), 0.0);
        assert_eq!(profile.rate(NodeId(2)), 0.0);
        assert!(profile.rate(NodeId(1)) >= profile.rate(NodeId(3)));
        assert!(profile.rate(NodeId(1)) > 0.2, "0.8 ns clock should err");
        assert_eq!(profile.rate(NodeId(1)), profile.rate(NodeId(4)));
    }
}
