//! Stochastic operation of the primitive (Sec. V-B).
//!
//! The GSHE switch's switching delay is a random variable (Fig. 4). Clock
//! the primitive faster than the delay distribution's tail and evaluations
//! occasionally miss the deadline — the output error rate becomes a *knob*
//! set by the clock period and the spin current: "the error rate for any
//! switch can be tuned individually". [`error_rate_for_clock`] derives the
//! rate from the device Monte Carlo; [`StochasticPrimitive`] applies it at
//! the logic level.

use crate::config::GsheConfig;
use gshe_device::{MonteCarlo, MonteCarloConfig, SwitchParams};
use gshe_logic::{Bf2, ErrorProfile, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Estimates the per-evaluation error rate of a switch driven at spin
/// current `i_s` and clocked with period `t_clk`: the probability that a
/// thermal switching event misses the clock deadline.
pub fn error_rate_for_clock(
    params: &SwitchParams,
    i_s: f64,
    t_clk: f64,
    samples: usize,
    seed: u64,
) -> f64 {
    let mc = MonteCarlo::new(MonteCarloConfig {
        params: *params,
        samples,
        seed,
        threads: 0,
    });
    1.0 - mc.switching_probability(i_s, t_clk)
}

/// One switch's drive point: which netlist node it implements and how it
/// is driven (spin current and clock period — the two per-switch knobs of
/// Sec. V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchDrive {
    /// The netlist node the switch realizes.
    pub node: NodeId,
    /// Spin current, A.
    pub i_s: f64,
    /// Clock period, s.
    pub t_clk: f64,
}

/// Derives a dense per-node [`ErrorProfile`] from per-switch drive points:
/// each listed switch's flip rate comes from the device Monte Carlo
/// ([`error_rate_for_clock`]); unlisted nodes are deterministic.
///
/// Distinct `(i_s, t_clk)` pairs are measured once and shared — a fabric
/// with thousands of switches at a handful of operating points costs a
/// handful of Monte Carlo sweeps.
///
/// # Panics
///
/// Panics if a drive's node index is outside `0..len`.
pub fn error_profile_for_drives(
    params: &SwitchParams,
    len: usize,
    drives: &[SwitchDrive],
    samples: usize,
    seed: u64,
) -> ErrorProfile {
    let mut rates = vec![0.0; len];
    let mut measured: Vec<(u64, u64, f64)> = Vec::new();
    for drive in drives {
        let key = (drive.i_s.to_bits(), drive.t_clk.to_bits());
        let rate = match measured.iter().find(|(i, t, _)| (*i, *t) == key) {
            Some(&(_, _, r)) => r,
            None => {
                let r = error_rate_for_clock(params, drive.i_s, drive.t_clk, samples, seed);
                measured.push((key.0, key.1, r));
                r
            }
        };
        rates[drive.node.index()] = rate;
    }
    ErrorProfile::from_rates(rates)
}

/// A GSHE primitive operated in the stochastic regime.
#[derive(Debug, Clone)]
pub struct StochasticPrimitive {
    config: GsheConfig,
    error_rate: f64,
    rng: StdRng,
    evaluations: u64,
    errors: u64,
}

impl StochasticPrimitive {
    /// Creates a stochastic primitive with the given per-evaluation error
    /// rate (e.g. from [`error_rate_for_clock`]).
    ///
    /// # Panics
    ///
    /// Panics if `error_rate` is outside `[0, 1]`.
    pub fn new(config: GsheConfig, error_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&error_rate),
            "error rate must be in [0, 1]"
        );
        StochasticPrimitive {
            config,
            error_rate,
            rng: StdRng::seed_from_u64(seed ^ 0x6A7E_57CC),
            evaluations: 0,
            errors: 0,
        }
    }

    /// The configured error rate.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }

    /// The nominal (error-free) function.
    pub fn function(&self) -> Bf2 {
        self.config.function()
    }

    /// Evaluates once; with probability `error_rate` the output is flipped
    /// (missed deadline leaves the magnet in the stale/metastable state and
    /// the read-out reports the wrong direction).
    pub fn evaluate(&mut self, a: bool, b: bool) -> bool {
        self.evaluations += 1;
        let ideal = self.config.evaluate(a, b);
        if self.error_rate > 0.0 && self.rng.gen_bool(self.error_rate) {
            self.errors += 1;
            !ideal
        } else {
            ideal
        }
    }

    /// `(evaluations, errors)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.evaluations, self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rate_decreases_with_longer_clock() {
        let params = SwitchParams::table_i();
        let fast = error_rate_for_clock(&params, 20e-6, 0.8e-9, 64, 3);
        let slow = error_rate_for_clock(&params, 20e-6, 6e-9, 64, 3);
        assert!(slow <= fast, "slow clock {slow} vs fast clock {fast}");
        assert!(
            slow < 0.05,
            "6 ns clock should be near-deterministic: {slow}"
        );
        assert!(fast > 0.2, "0.8 ns clock should err often: {fast}");
    }

    #[test]
    fn error_rate_decreases_with_higher_current() {
        // Fig. 4: higher I_S → faster, tighter distribution → fewer misses
        // at a fixed (aggressive) clock.
        let params = SwitchParams::table_i();
        let low = error_rate_for_clock(&params, 20e-6, 1.2e-9, 64, 5);
        let high = error_rate_for_clock(&params, 100e-6, 1.2e-9, 64, 5);
        assert!(high < low, "I_S=100uA err {high} vs 20uA err {low}");
    }

    #[test]
    fn zero_error_rate_is_exact() {
        let mut p = StochasticPrimitive::new(GsheConfig::for_function(Bf2::NAND), 0.0, 1);
        for _ in 0..100 {
            assert!(!p.evaluate(true, true));
            assert!(p.evaluate(false, true));
        }
        assert_eq!(p.stats().1, 0);
    }

    #[test]
    fn observed_error_rate_matches_configuration() {
        let mut p = StochasticPrimitive::new(GsheConfig::for_function(Bf2::AND), 0.05, 7);
        let n = 20_000;
        for _ in 0..n {
            let _ = p.evaluate(true, true);
        }
        let (evals, errs) = p.stats();
        assert_eq!(evals, n);
        let rate = errs as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "observed {rate}");
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn error_rate_bounds_checked() {
        let _ = StochasticPrimitive::new(GsheConfig::for_function(Bf2::AND), -0.1, 0);
    }

    #[test]
    fn drive_profile_orders_rates_by_clock() {
        // Two switches at the same current: the aggressively-clocked one
        // must be at least as noisy as the relaxed one, and unlisted nodes
        // stay deterministic. Duplicate drive points share one Monte Carlo
        // measurement (identical rates).
        let params = SwitchParams::table_i();
        let drives = [
            SwitchDrive {
                node: NodeId(1),
                i_s: 20e-6,
                t_clk: 0.8e-9,
            },
            SwitchDrive {
                node: NodeId(3),
                i_s: 20e-6,
                t_clk: 6e-9,
            },
            SwitchDrive {
                node: NodeId(4),
                i_s: 20e-6,
                t_clk: 0.8e-9,
            },
        ];
        let profile = error_profile_for_drives(&params, 6, &drives, 64, 3);
        assert_eq!(profile.len(), 6);
        assert_eq!(profile.rate(NodeId(0)), 0.0);
        assert_eq!(profile.rate(NodeId(2)), 0.0);
        assert!(profile.rate(NodeId(1)) >= profile.rate(NodeId(3)));
        assert!(profile.rate(NodeId(1)) > 0.2, "0.8 ns clock should err");
        assert_eq!(profile.rate(NodeId(1)), profile.rate(NodeId(4)));
    }
}
