//! Zero-dependency instrumentation: spans, counters, histograms, traces.
//!
//! The campaign engine needs to answer "where did the time go?" — how much
//! of an attack cell was SAT solving vs. oracle queries vs. scheme
//! materialization, whether the worker pool starves, whether the session
//! cache pays for itself. The build environment has no external registry,
//! so this crate hand-rolls the usual tracing/metrics stack from `std`
//! alone:
//!
//! - **Counters** ([`count`]) — lock-free [`AtomicU64`]s registered by
//!   name, monotonically increasing event totals.
//! - **Histograms** ([`record`]) — log2-bucketed value distributions
//!   (65 buckets: one for zero, one per power of two up to `u64::MAX`),
//!   each bucket a relaxed atomic. Used for latencies in nanoseconds and
//!   size distributions such as DIPs-per-batch.
//! - **Spans** ([`span`]) — RAII guards timing a scoped region on a
//!   monotonic clock. Every span records its duration into a histogram of
//!   the same name, and, when tracing is on, appends a complete
//!   (`"ph":"X"`) Chrome trace event to a per-thread buffer. Nesting depth
//!   is tracked per thread so traces reconstruct the hierarchy.
//!
//! Everything sits behind a **global runtime switch**: the disabled fast
//! path is a single relaxed atomic load ([`enabled`]) and no allocation,
//! no lock, no clock read happens until the switch is flipped with
//! [`enable`]. Tracing (event buffering) is a second, independent switch
//! ([`enable_tracing`]) because traces cost memory proportional to event
//! count while counters and histograms are O(1) space.
//!
//! Instrumentation never perturbs workloads: it only reads clocks and
//! increments atomics, so RNG streams, oracle query counts, and campaign
//! reports' deterministic JSON are byte-identical whether the switch is on
//! or off (pinned by the `obs_determinism` integration test).
//!
//! # Event schema
//!
//! [`trace_json`] emits the Chrome trace-event format, loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev):
//!
//! ```json
//! {"traceEvents":[
//!   {"name":"pool.task","cat":"obs","ph":"X","pid":1,"tid":3,
//!    "ts":1520.4,"dur":318.7,"args":{"depth":0}}
//! ],"displayTimeUnit":"ms"}
//! ```
//!
//! - `name` — the span name passed to [`span`] (e.g. `attack.solve`,
//!   `attack.oracle`, `pool.task`, `job.materialize`).
//! - `ph:"X"` — complete event; `ts`/`dur` are microseconds (fractional)
//!   relative to the process-wide trace epoch.
//! - `tid` — a small sequential id assigned per OS thread on first event.
//! - `args.depth` — span nesting depth on that thread at open time.
//!
//! [`metrics_json`] emits a machine-readable snapshot:
//!
//! ```json
//! {"counters":{"cache.hits":42},
//!  "histograms":{"attack.dip_batch_fill":
//!    {"count":7,"sum":98,"buckets":[[1,1],[8,3],[16,3]]}}}
//! ```
//!
//! Histogram `buckets` are `[lower_bound, count]` pairs for non-empty
//! buckets only; a value `v` lands in the bucket whose lower bound is the
//! largest power of two `<= v` (zero has its own bucket with bound 0).
//!
//! # Span names used across the workspace
//!
//! | span | layer | wraps |
//! |------|-------|-------|
//! | `pool.task` | `campaign::pool` | one erased task on a worker |
//! | `job.attack` / `job.device` | `campaign::job` | one campaign job |
//! | `job.materialize` | `campaign::job` | camouflaged-netlist materialization |
//! | `session.materialize` | `campaign` | benchmark netlist generation |
//! | `attack.solve` | `attacks::dip_engine` | one conflict-sliced solver call |
//! | `attack.oracle` | `attacks::dip_engine` | one oracle `query`/`query_block` |
//! | `search.trial` | `campaign::search` | one candidate-scoring attack trial |
//!
//! The SAT layer itself is dependency-free; its simplification work
//! surfaces through `attacks::dip_engine` as counters
//! (`sat.elim_vars`, `sat.subsumed`, `sat.strengthened`) and histograms
//! (`sat.simplify_ns` — nanoseconds per attack spent in pre/inprocessing,
//! `sat.lbd` — final learnt-clause LBD distribution, `sat.solve.*` —
//! per-solve conflict/decision/propagation deltas).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Global metrics switch. Off by default; the disabled fast path of every
/// instrumentation call is this one relaxed load.
static METRICS_ON: AtomicBool = AtomicBool::new(false);
/// Global tracing switch (event buffering); implies nothing about
/// [`METRICS_ON`] — binaries enable both for `--trace-out`.
static TRACING_ON: AtomicBool = AtomicBool::new(false);

/// Turns metrics (counters, histograms, span timing) on.
pub fn enable() {
    METRICS_ON.store(true, Ordering::Relaxed);
}

/// Turns metrics off. In-flight spans finish as no-ops on drop.
pub fn disable() {
    METRICS_ON.store(false, Ordering::Relaxed);
    TRACING_ON.store(false, Ordering::Relaxed);
}

/// Whether metrics collection is on. A single relaxed atomic load — this
/// is the entire disabled-path cost of every instrumentation point.
#[inline]
pub fn enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Turns trace-event buffering on (and metrics with it — spans feed both).
pub fn enable_tracing() {
    METRICS_ON.store(true, Ordering::Relaxed);
    TRACING_ON.store(true, Ordering::Relaxed);
    let _ = epoch(); // pin the trace epoch before the first event
}

/// Whether trace-event buffering is on.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING_ON.load(Ordering::Relaxed)
}

/// A named monotonically-increasing event counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current counter value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Counter name as registered.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Number of log2 buckets: index 0 holds zero, index `k >= 1` holds
/// values in `[2^(k-1), 2^k)`, so index 64 holds `[2^63, u64::MAX]`.
const BUCKETS: usize = 65;

/// A named log2-bucketed histogram of `u64` samples.
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Log2 bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Lower bound of bucket `index` (inverse of [`bucket_index`]).
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (saturating only at `u64` wraparound).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Count in the bucket holding `value`-sized samples.
    pub fn bucket_count(&self, value: u64) -> u64 {
        self.buckets[bucket_index(value)].load(Ordering::Relaxed)
    }

    /// Histogram name as registered.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// One buffered trace event (complete span).
struct TraceEvent {
    name: &'static str,
    tid: u64,
    /// Nanoseconds since the trace epoch at span open.
    ts_ns: u64,
    /// Span duration in nanoseconds.
    dur_ns: u64,
    /// Span nesting depth on its thread at open time.
    depth: usize,
}

/// Registry of every named instrument plus all per-thread trace buffers.
/// Instruments are leaked (`&'static`) so hot paths can hold references
/// across [`reset`]; reset zeroes values instead of dropping entries.
struct Registry {
    counters: Vec<&'static Counter>,
    histograms: Vec<&'static Histogram>,
    buffers: Vec<Arc<Mutex<Vec<TraceEvent>>>>,
    next_tid: u64,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            counters: Vec::new(),
            histograms: Vec::new(),
            buffers: Vec::new(),
            next_tid: 1,
        })
    })
}

/// Monotonic epoch all trace timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Looks up (registering on first use) the counter named `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().unwrap();
    if let Some(c) = reg.counters.iter().find(|c| c.name == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter {
        name,
        value: AtomicU64::new(0),
    }));
    reg.counters.push(c);
    c
}

/// Looks up (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().unwrap();
    if let Some(h) = reg.histograms.iter().find(|h| h.name == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram {
        name,
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
    }));
    reg.histograms.push(h);
    h
}

/// Adds `n` to counter `name`; no-op (one atomic load) when disabled.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() {
        counter(name).add(n);
    }
}

/// Records `value` into histogram `name`; no-op when disabled.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if enabled() {
        histogram(name).record(value);
    }
}

/// A thread's trace registration: its sequential tid plus the shared
/// event buffer also reachable from the global registry.
type LocalBuffer = (u64, Arc<Mutex<Vec<TraceEvent>>>);

std::thread_local! {
    /// This thread's span nesting depth.
    static DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    /// This thread's (tid, shared trace buffer), registered lazily.
    static LOCAL_BUFFER: std::cell::RefCell<Option<LocalBuffer>> =
        const { std::cell::RefCell::new(None) };
}

/// Appends a finished span to this thread's trace buffer.
fn push_event(name: &'static str, start: Instant, dur_ns: u64, depth: usize) {
    let ts_ns = start.saturating_duration_since(epoch()).as_nanos() as u64;
    LOCAL_BUFFER.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (tid, buffer) = slot.get_or_insert_with(|| {
            let buffer = Arc::new(Mutex::new(Vec::new()));
            let mut reg = registry().lock().unwrap();
            let tid = reg.next_tid;
            reg.next_tid += 1;
            reg.buffers.push(Arc::clone(&buffer));
            (tid, buffer)
        });
        buffer.lock().unwrap().push(TraceEvent {
            name,
            tid: *tid,
            ts_ns,
            dur_ns,
            depth,
        });
    });
}

/// RAII guard for a timed span; created by [`span`]. On drop it records
/// the elapsed nanoseconds into the histogram of the same name and, when
/// tracing is on, buffers a Chrome trace event.
pub struct SpanGuard {
    name: &'static str,
    /// `None` when instrumentation was disabled at open — drop is free.
    start: Option<Instant>,
    depth: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        DEPTH.with(|d| d.set(self.depth));
        let dur_ns = start.elapsed().as_nanos() as u64;
        if enabled() {
            histogram(self.name).record(dur_ns);
        }
        if tracing_enabled() {
            push_event(self.name, start, dur_ns, self.depth);
        }
    }
}

/// Opens a timed span named `name`. When instrumentation is disabled this
/// costs one relaxed atomic load and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start: None,
            depth: 0,
        };
    }
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard {
        name,
        start: Some(Instant::now()),
        depth,
    }
}

/// Zeroes every counter and histogram and clears all trace buffers.
/// Registered instruments stay valid (references held by hot paths keep
/// working), and thread ids are preserved.
pub fn reset() {
    let reg = registry().lock().unwrap();
    for c in &reg.counters {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in &reg.histograms {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
    for buffer in &reg.buffers {
        buffer.lock().unwrap().clear();
    }
}

/// Serializes all buffered trace events as Chrome trace-event JSON
/// (see the module doc for the schema). Stable ordering: events sort by
/// `(tid, ts)` so output does not depend on buffer registration order.
pub fn trace_json() -> String {
    let reg = registry().lock().unwrap();
    let mut events: Vec<(u64, u64, u64, &'static str, usize)> = Vec::new();
    for buffer in &reg.buffers {
        for e in buffer.lock().unwrap().iter() {
            events.push((e.tid, e.ts_ns, e.dur_ns, e.name, e.depth));
        }
    }
    drop(reg);
    events.sort_unstable();
    let mut out = String::from("{\"traceEvents\":[");
    for (i, (tid, ts_ns, dur_ns, name, depth)) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"depth\":{}}}}}",
            name,
            tid,
            *ts_ns as f64 / 1e3,
            *dur_ns as f64 / 1e3,
            depth
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Serializes every counter and histogram as a JSON metrics snapshot
/// (see the module doc for the schema). Instruments sort by name.
pub fn metrics_json() -> String {
    let reg = registry().lock().unwrap();
    let mut counters: Vec<(&'static str, u64)> =
        reg.counters.iter().map(|c| (c.name, c.get())).collect();
    // (name, count, sum, non-empty [lower_bound, count] buckets)
    type HistogramRow = (&'static str, u64, u64, Vec<(u64, u64)>);
    let mut histograms: Vec<HistogramRow> = reg
        .histograms
        .iter()
        .map(|h| {
            let buckets = (0..BUCKETS)
                .filter_map(|i| {
                    let n = h.buckets[i].load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_lower_bound(i), n))
                })
                .collect();
            (h.name, h.count(), h.sum(), buckets)
        })
        .collect();
    drop(reg);
    counters.sort_unstable();
    histograms.sort_unstable();

    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, count, sum, buckets)) in histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"count\":{count},\"sum\":{sum},\"buckets\":["
        ));
        for (j, (lo, n)) in buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{lo},{n}]"));
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Obs state is global; tests that flip the switch share this lock so
    /// `cargo test` threads don't interleave enable/reset.
    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Minimal recursive-descent JSON well-formedness checker: consumes
    /// one value and returns the rest, panicking on malformed input.
    fn check_json(s: &str) {
        fn skip_ws(s: &str) -> &str {
            s.trim_start()
        }
        fn value(s: &str) -> &str {
            let s = skip_ws(s);
            match s.as_bytes().first() {
                Some(b'{') => object(&s[1..]),
                Some(b'[') => array(&s[1..]),
                Some(b'"') => string(&s[1..]),
                _ => scalar(s),
            }
        }
        fn object(mut s: &str) -> &str {
            s = skip_ws(s);
            if let Some(rest) = s.strip_prefix('}') {
                return rest;
            }
            loop {
                s = skip_ws(s);
                s = string(s.strip_prefix('"').expect("object key"));
                s = skip_ws(s);
                s = s.strip_prefix(':').expect("colon");
                s = value(s);
                s = skip_ws(s);
                if let Some(rest) = s.strip_prefix(',') {
                    s = rest;
                } else {
                    return s.strip_prefix('}').expect("object close");
                }
            }
        }
        fn array(mut s: &str) -> &str {
            s = skip_ws(s);
            if let Some(rest) = s.strip_prefix(']') {
                return rest;
            }
            loop {
                s = value(s);
                s = skip_ws(s);
                if let Some(rest) = s.strip_prefix(',') {
                    s = rest;
                } else {
                    return s.strip_prefix(']').expect("array close");
                }
            }
        }
        fn string(s: &str) -> &str {
            let mut chars = s.char_indices();
            while let Some((i, c)) = chars.next() {
                match c {
                    '"' => return &s[i + 1..],
                    '\\' => {
                        chars.next();
                    }
                    _ => {}
                }
            }
            panic!("unterminated string");
        }
        fn scalar(s: &str) -> &str {
            let end = s
                .find(|c: char| ",]}".contains(c) || c.is_whitespace())
                .unwrap_or(s.len());
            let token = &s[..end];
            assert!(
                token == "true"
                    || token == "false"
                    || token == "null"
                    || token.parse::<f64>().is_ok(),
                "bad scalar: {token:?}"
            );
            &s[end..]
        }
        let rest = value(s);
        assert!(skip_ws(rest).is_empty(), "trailing garbage: {rest:?}");
    }

    #[test]
    fn bucket_index_is_log2_with_zero_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            if i > 0 {
                assert_eq!(bucket_index(lo - 1), i - 1);
            }
        }
    }

    #[test]
    fn histogram_records_into_matching_buckets() {
        let _guard = obs_lock();
        enable();
        reset();
        let h = histogram("test.histogram_buckets");
        for v in [0, 1, 5, 5, 700] {
            h.record(v);
        }
        disable();
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 711);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(5), 2); // [4, 8)
        assert_eq!(h.bucket_count(700), 1); // [512, 1024)
        assert_eq!(h.bucket_count(2), 0);
    }

    #[test]
    fn disabled_instrumentation_is_inert() {
        let _guard = obs_lock();
        disable();
        reset();
        count("test.disabled_counter", 3);
        record("test.disabled_histogram", 9);
        drop(span("test.disabled_span"));
        assert_eq!(counter("test.disabled_counter").get(), 0);
        assert_eq!(histogram("test.disabled_histogram").count(), 0);
    }

    #[test]
    fn nested_spans_time_hierarchically() {
        let _guard = obs_lock();
        enable_tracing();
        reset();
        {
            let _outer = span("test.outer_span");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("test.inner_span");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        disable();
        let outer = histogram("test.outer_span");
        let inner = histogram("test.inner_span");
        assert_eq!(outer.count(), 1);
        assert_eq!(inner.count(), 1);
        // The outer span strictly contains the inner one.
        assert!(
            outer.sum() >= inner.sum() + 1_000_000,
            "outer {} ns vs inner {} ns",
            outer.sum(),
            inner.sum()
        );
        // Depth recorded in the trace reflects nesting.
        let trace = trace_json();
        assert!(trace.contains("\"name\":\"test.outer_span\",\"cat\":\"obs\""));
        assert!(trace.contains("\"args\":{\"depth\":1}"), "{trace}");
    }

    #[test]
    fn span_depth_recovers_after_drop() {
        let _guard = obs_lock();
        enable();
        reset();
        drop(span("test.depth_a"));
        let s = span("test.depth_b");
        assert_eq!(DEPTH.with(|d| d.get()), 1);
        drop(s);
        assert_eq!(DEPTH.with(|d| d.get()), 0);
        disable();
    }

    #[test]
    fn trace_and_metrics_json_are_well_formed() {
        let _guard = obs_lock();
        enable_tracing();
        reset();
        count("test.json_counter", 2);
        record("test.json_histogram", 77);
        {
            let _s = span("test.json_span");
        }
        let worker = std::thread::spawn(|| {
            let _s = span("test.json_span_other_thread");
        });
        worker.join().unwrap();
        disable();
        let trace = trace_json();
        check_json(&trace);
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"test.json_span\""));
        assert!(trace.contains("\"name\":\"test.json_span_other_thread\""));
        let metrics = metrics_json();
        check_json(&metrics);
        assert!(metrics.contains("\"test.json_counter\":2"));
        assert!(metrics
            .contains("\"test.json_histogram\":{\"count\":1,\"sum\":77,\"buckets\":[[64,1]]}"));
    }

    #[test]
    fn reset_zeroes_but_keeps_references_valid() {
        let _guard = obs_lock();
        enable();
        let c = counter("test.reset_counter");
        c.add(5);
        reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        assert_eq!(counter("test.reset_counter").get(), 2);
        disable();
    }
}
