//! Key verification and attack-quality metrics.

use crate::encode::encode_keyed;
use gshe_camo::{CamoError, KeyedNetlist};
use gshe_logic::{Netlist, PatternBlock, Simulator};
use gshe_sat::{CircuitEncoder, Lit, SolveResult, Solver};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Verdict on a recovered key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyVerification {
    /// The key selects the defender's exact candidate at every cell.
    pub structurally_correct: bool,
    /// The resolved netlist is **provably** (SAT-checked) equivalent to the
    /// original — the attacker's actual success criterion.
    pub functionally_equivalent: bool,
    /// Fraction of 4096 random patterns on which the resolved netlist
    /// disagrees with the original (0.0 when equivalent).
    pub sampled_error_rate: f64,
}

/// Verifies a recovered key against the original design: exact SAT
/// equivalence of the resolved netlist plus a sampled error rate.
///
/// # Errors
///
/// Returns [`CamoError::KeyLengthMismatch`] if the key has the wrong width.
pub fn verify_key(
    original: &Netlist,
    keyed: &KeyedNetlist,
    key: &[bool],
) -> Result<KeyVerification, CamoError> {
    let resolved = keyed.resolve(key)?;
    let functionally_equivalent = sat_equivalent(original, &resolved);
    let sampled_error_rate = if functionally_equivalent {
        0.0
    } else {
        sampled_error(original, &resolved, 64)
    };
    Ok(KeyVerification {
        structurally_correct: keyed.key_is_structurally_correct(key),
        functionally_equivalent,
        sampled_error_rate,
    })
}

/// Exact combinational equivalence via a SAT miter (both netlists must have
/// identical interfaces).
pub fn sat_equivalent(a: &Netlist, b: &Netlist) -> bool {
    assert_eq!(a.inputs().len(), b.inputs().len(), "interface mismatch");
    assert_eq!(a.outputs().len(), b.outputs().len(), "interface mismatch");
    let mut solver = Solver::new();
    let diff = {
        let mut enc = CircuitEncoder::new(&mut solver);
        let ca = encode_plain(&mut enc, a);
        let cb = encode_plain(&mut enc, b);
        for (x, y) in ca.0.iter().zip(&cb.0) {
            enc.equal(*x, *y);
        }
        enc.miter(&ca.1, &cb.1)
    };
    solver.add_clause(&[diff]);
    solver.solve() == SolveResult::Unsat
}

/// Encodes an ordinary netlist; returns (input lits, output lits).
fn encode_plain(enc: &mut CircuitEncoder<'_, Solver>, nl: &Netlist) -> (Vec<Lit>, Vec<Lit>) {
    // Reuse the keyed encoder with an empty key by wrapping the netlist in
    // a keyless KeyedNetlist.
    let keyed = KeyedNetlist::new(nl.clone(), Vec::new(), 0);
    let copy = encode_keyed(enc, &keyed, &[]);
    (copy.inputs, copy.outputs)
}

/// Fraction of `blocks`×64 random patterns where the two netlists disagree
/// on at least one output.
pub fn sampled_error(a: &Netlist, b: &Netlist, blocks: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(0xE44);
    let mut sim_a = Simulator::new(a);
    let mut sim_b = Simulator::new(b);
    let mut wrong = 0u64;
    let mut total = 0u64;
    for _ in 0..blocks {
        let block = PatternBlock::random(a.inputs().len(), &mut rng);
        let ya = sim_a.run(&block).expect("interface checked");
        let yb = sim_b.run(&block).expect("interface checked");
        let mut any_diff = 0u64;
        for (p, q) in ya.iter().zip(&yb) {
            any_diff |= p ^ q;
        }
        wrong += (any_diff & block.valid_mask()).count_ones() as u64;
        total += block.count as u64;
    }
    wrong as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use gshe_logic::Bf2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_netlists_are_equivalent() {
        let a = parse_bench(C17_BENCH).unwrap();
        let b = parse_bench(C17_BENCH).unwrap();
        assert!(sat_equivalent(&a, &b));
        assert_eq!(sampled_error(&a, &b, 4), 0.0);
    }

    #[test]
    fn mutated_netlist_is_not_equivalent() {
        let a = parse_bench(C17_BENCH).unwrap();
        let mut b = parse_bench(C17_BENCH).unwrap();
        let g = b.find("22").unwrap();
        b.set_gate2_function(g, Bf2::NOR).unwrap();
        assert!(!sat_equivalent(&a, &b));
        assert!(sampled_error(&a, &b, 4) > 0.0);
    }

    #[test]
    fn correct_key_verifies() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let v = verify_key(&nl, &keyed, &keyed.correct_key()).unwrap();
        assert!(v.structurally_correct);
        assert!(v.functionally_equivalent);
        assert_eq!(v.sampled_error_rate, 0.0);
    }

    #[test]
    fn wrong_key_fails_verification() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut key = keyed.correct_key();
        for b in key.iter_mut() {
            *b = !*b;
        }
        let v = verify_key(&nl, &keyed, &key).unwrap();
        assert!(!v.structurally_correct);
        assert!(!v.functionally_equivalent);
        assert!(v.sampled_error_rate > 0.0);
    }

    #[test]
    fn key_width_is_checked() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        assert!(verify_key(&nl, &keyed, &[true]).is_err());
    }
}
